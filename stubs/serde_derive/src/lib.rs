//! Offline no-op replacement for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! marker (nothing is ever serialized through serde in-tree), so the
//! derives expand to nothing. This keeps the workspace building in
//! hermetic environments with no crates.io access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
