//! Offline stand-in for `serde` — just enough surface for
//! `use serde::{Deserialize, Serialize};` plus the derive markers.
//!
//! The workspace derives `Serialize`/`Deserialize` on value types for
//! forward compatibility but never serializes through serde in-tree, so
//! the traits are empty markers and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods used in-tree).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods used in-tree).
pub trait Deserialize<'de> {}
