//! Offline mini-`proptest`: the subset of the proptest 1.x API this
//! workspace's property tests use, with deterministic pseudo-random case
//! generation and failing-input reporting (no shrinking).
//!
//! Supported surface:
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * strategies: integer/float `Range`s, `&str` character-class regexes
//!   (`"[a-z]{0,12}"`), tuples, `Just`, `any::<T>()`,
//!   `prop::collection::vec(elem, size)`, `.prop_map`, `.prop_flat_map`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!
//! Cases are generated from a fixed per-test seed (hash of the test
//! name), so runs are reproducible; `PROPTEST_CASES` overrides the case
//! count (default 256).

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Cases after applying the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xoshiro256** RNG seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Use a generated value to pick a follow-up strategy.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// `&str` character-class regexes: a sequence of `[class]` atoms (or
    /// literal characters) each with an optional `{n}` / `{m,n}` counted
    /// repetition, e.g. `"[ -~]{0,64}"` or `"[a-z]{0,12}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: character class or literal.
            let class: Vec<(char, char)> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                ranges
            } else if chars[i] == '\\' {
                i += 2;
                vec![(chars[i - 1], chars[i - 1])]
            } else {
                i += 1;
                vec![(chars[i - 1], chars[i - 1])]
            };

            // Optional counted repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse::<usize>().expect("repetition lower bound"),
                        b.parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };

            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            let total: u64 = class.iter().map(|&(a, b)| b as u64 - a as u64 + 1).sum();
            for _ in 0..n {
                let mut k = rng.below(total);
                for &(a, b) in &class {
                    let w = b as u64 - a as u64 + 1;
                    if k < w {
                        out.push(char::from_u32(a as u32 + k as u32).expect("valid char"));
                        break;
                    }
                    k -= w;
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for collection strategies: an exact length or a
    /// half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cases {
                let mut __desc: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
                $(
                    let $pat = {
                        let __v = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                        __desc.push(::std::format!(
                            "  {} = {:?}", stringify!($pat), &__v
                        ));
                        __v
                    };
                )*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body)
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs:\n{}",
                        __case + 1,
                        __cases,
                        stringify!($name),
                        __desc.join("\n")
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 1u32..10,
            v in prop::collection::vec(0u32..5, 0..20),
            s in "[a-z]{0,8}",
            b in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(s.len() <= 8 && s.chars().all(|c| c.is_ascii_lowercase()));
            let _ = b;
        }

        #[test]
        fn combinators(n in (2usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..4, n))) ) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn mapped(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 99);
        }
    }

    #[test]
    fn pattern_space_to_tilde() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("t");
        for _ in 0..100 {
            let s = "[ -~]{0,64}".generate(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }
}
