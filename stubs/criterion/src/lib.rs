//! Offline stand-in for `criterion` 0.5 — the subset this workspace's
//! benches use, backed by a plain wall-clock harness.
//!
//! Each benchmark is warmed up briefly, then timed over a fixed number of
//! samples; mean time per iteration (and derived throughput, when set) is
//! printed to stdout. No statistics beyond the mean, no plots, no
//! baseline comparison — just enough to run `cargo bench` offline and get
//! stable relative numbers.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group, mirroring
/// `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stub treats all
/// variants the same (one setup per measured iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per batch of iterations.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time per iteration, filled in by `iter*`.
    mean: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            mean: Duration::ZERO,
            iters_per_sample: 1,
        }
    }

    /// Time `routine` repeatedly and record the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick an iteration count targeting ~2ms per sample.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            total += t.elapsed();
        }
        self.iters_per_sample = iters;
        self.mean = total / (self.samples as u32 * iters as u32);
    }

    /// Time `routine` over fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
        }
        self.iters_per_sample = 1;
        self.mean = total / self.samples as u32;
    }
}

/// Benchmark registry and configuration, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &format!("{}/{}", self.name, id),
            samples,
            self.throughput,
            f,
        );
        self
    }

    /// Finish the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher::new(samples.max(1));
    f(&mut b);
    let mean_ns = b.mean.as_nanos().max(1) as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean_ns),
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>9.3} MiB/s",
                n as f64 * 1e9 / mean_ns / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "bench: {:<44} {:>12} ns/iter ({} samples x {} iters){}",
        id,
        format_ns(mean_ns),
        samples,
        b.iters_per_sample,
        rate
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Define a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_mean() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.mean > Duration::ZERO);
    }

    #[test]
    fn iter_batched_records_mean() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.mean > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(8));
        let mut ran = false;
        g.bench_function("t", |b| {
            ran = true;
            b.iter(|| 2 + 2)
        });
        g.finish();
        assert!(ran);
    }
}
