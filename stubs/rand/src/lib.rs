//! Offline stand-in for `rand` 0.8 — the subset the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` (half-open and
//! inclusive integer/float ranges) and `Rng::gen_bool`.
//!
//! The generator is xoshiro256**, seeded via splitmix64. Streams are
//! deterministic for a given seed (which is all the workspace relies on)
//! but are NOT the same streams as the real `rand` crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types drawable uniformly from a bounded range via [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[low, high)` (`inclusive` widens to `[low, high]`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                let span = (hi - lo) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                ((rng.next_u64() >> 11) as $t) * (1.0 / (1u64 << 53) as $t)
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = ((rng.next_u64() >> 11) as $t) * (1.0 / (1u64 << 53) as $t);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for the
    /// real `StdRng`; same API, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
