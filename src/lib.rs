//! # rhythm
//!
//! Facade crate for the Rhythm workspace — a from-scratch Rust
//! reproduction of *"Rhythm: Harnessing Data Parallel Hardware for Server
//! Workloads"* (ASPLOS 2014). It re-exports the member crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`simt`] | kernel IR, scalar + warp-lockstep executors, device model |
//! | [`http`] | HTTP substrate (parser, responses, padding, sessions) |
//! | [`core`] | the cohort-scheduling pipeline |
//! | [`banking`] | the SPECWeb2009 Banking workload (native + kernels) |
//! | [`platform`] | platform/power/PCIe/network models |
//! | [`trace`] | basic-block trace merging (Myers diff) |
//! | [`obs`] | tracing recorder, streaming histograms, Perfetto export |
//! | [`verify`] | pre-launch static analysis: divergence, races, bounds |
//!
//! See the repository README for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use rhythm::banking::prelude::*;
//! use rhythm::simt::gpu::{Gpu, GpuConfig};
//!
//! let workload = Workload::build();
//! let store = BankStore::generate(32, 1);
//! let mut sessions = SessionArrayHost::new(256, 0xBEEF);
//! let mut generator = RequestGenerator::new(32, 2);
//! let cohort = generator.uniform(RequestType::Login, 32, &mut sessions);
//! let gpu = Gpu::new(GpuConfig::gtx_titan());
//! let opts = CohortOptions { session_capacity: 256, session_salt: 0xBEEF, ..Default::default() };
//! let out = run_cohort(&workload, &store, &mut sessions, &cohort, &gpu, &opts)?;
//! assert_eq!(out.responses.len(), 32);
//! # Ok::<(), rhythm::simt::ExecError>(())
//! ```

#![warn(missing_docs)]

pub use rhythm_banking as banking;
pub use rhythm_core as core;
pub use rhythm_http as http;
pub use rhythm_obs as obs;
pub use rhythm_platform as platform;
pub use rhythm_simt as simt;
pub use rhythm_trace as trace;
pub use rhythm_verify as verify;
