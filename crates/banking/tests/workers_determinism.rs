//! The warp worker pool is a simulation-speed knob only: a banking
//! cohort must produce bit-identical responses, launch results (stats
//! and modelled times), and session state at every worker count.

use rhythm_banking::prelude::*;
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;

fn run_with(workers: Option<u32>) -> (Vec<Vec<u8>>, String, Vec<u8>) {
    let workload = Workload::build();
    let store = BankStore::generate(256, 1);
    let opts = CohortOptions {
        session_capacity: 1024,
        session_salt: SALT,
        workers,
        ..Default::default()
    };
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 2);
    let reqs = generator.uniform(RequestType::AccountSummary, 96, &mut sessions);
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(1));
    let result = run_cohort(&workload, &store, &mut sessions, &reqs, &gpu, &opts).unwrap();
    (
        result.responses,
        format!("{:?}", result.launches),
        sessions.to_device_bytes(),
    )
}

#[test]
fn cohort_identical_across_worker_counts() {
    let base = run_with(Some(1));
    assert!(base.0[0].starts_with(b"HTTP/1.1 200 OK"));
    for workers in [Some(2), Some(4), Some(0), None] {
        let run = run_with(workers);
        assert_eq!(run.0, base.0, "responses differ at workers={workers:?}");
        assert_eq!(run.1, base.1, "launch stats differ at workers={workers:?}");
        assert_eq!(run.2, base.2, "sessions differ at workers={workers:?}");
    }
}

#[test]
fn parser_only_identical_across_worker_counts() {
    let workload = Workload::build();
    let run_with = |workers: Option<u32>| {
        let opts = CohortOptions {
            session_capacity: 1024,
            session_salt: SALT,
            workers,
            ..Default::default()
        };
        let mut sessions = SessionArrayHost::new(1024, SALT);
        let mut generator = RequestGenerator::new(64, 5);
        let reqs = generator.mixed(128, &mut sessions);
        let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(1));
        let (res, parsed) = run_parser_only(&workload, &reqs, &gpu, &opts).unwrap();
        (format!("{res:?}"), parsed)
    };
    let base = run_with(Some(1));
    for workers in [Some(2), Some(4)] {
        assert_eq!(run_with(workers), base, "workers={workers:?}");
    }
}
