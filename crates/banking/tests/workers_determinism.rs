//! The warp worker pool is a simulation-speed knob only: a banking
//! cohort must produce bit-identical responses, launch results (stats
//! and modelled times), and session state at every worker count.

use rhythm_banking::prelude::*;
use rhythm_obs::{Recorder, TraceRecorder};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;

fn run_with(workers: Option<u32>) -> (Vec<Vec<u8>>, String, Vec<u8>) {
    run_traced_with(workers, &rhythm_obs::NoopRecorder)
}

fn run_traced_with<R: Recorder + ?Sized>(
    workers: Option<u32>,
    rec: &R,
) -> (Vec<Vec<u8>>, String, Vec<u8>) {
    let workload = Workload::build();
    let store = BankStore::generate(256, 1);
    let opts = CohortOptions {
        session_capacity: 1024,
        session_salt: SALT,
        workers,
        ..Default::default()
    };
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 2);
    let reqs = generator.uniform(RequestType::AccountSummary, 96, &mut sessions);
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(1));
    let result =
        run_cohort_traced(&workload, &store, &mut sessions, &reqs, &gpu, &opts, rec).unwrap();
    (
        result.responses,
        format!("{:?}", result.launches),
        sessions.to_device_bytes(),
    )
}

#[test]
fn cohort_identical_across_worker_counts() {
    let base = run_with(Some(1));
    assert!(base.0[0].starts_with(b"HTTP/1.1 200 OK"));
    for workers in [Some(2), Some(4), Some(0), None] {
        let run = run_with(workers);
        assert_eq!(run.0, base.0, "responses differ at workers={workers:?}");
        assert_eq!(run.1, base.1, "launch stats differ at workers={workers:?}");
        assert_eq!(run.2, base.2, "sessions differ at workers={workers:?}");
    }
}

/// Attaching the recorder is purely observational: responses, launch
/// stats, and session bytes stay bit-identical to the untraced run at
/// every worker count, and the exported Chrome trace is valid JSON with
/// non-decreasing per-track timestamps.
#[test]
fn traced_cohort_identical_and_trace_valid() {
    let untraced = run_with(Some(1));
    for workers in [Some(1), Some(2), Some(4)] {
        let rec = TraceRecorder::new();
        let traced = run_traced_with(workers, &rec);
        assert_eq!(
            traced, untraced,
            "tracing changed results at workers={workers:?}"
        );
        assert!(!rec.is_empty(), "recorder captured nothing");

        let json = rec.chrome_json();
        let check = rhythm_obs::validate_chrome_trace(&json)
            .expect("exported trace must be valid Chrome JSON with monotone tracks");
        assert!(check.events > 0);
        assert!(
            check.names.iter().any(|n| n.contains("warp")),
            "per-warp SIMT spans missing from trace"
        );
        assert!(rec.histogram("warp_cycles").is_some());
    }
}

#[test]
fn parser_only_identical_across_worker_counts() {
    let workload = Workload::build();
    let run_with = |workers: Option<u32>| {
        let opts = CohortOptions {
            session_capacity: 1024,
            session_salt: SALT,
            workers,
            ..Default::default()
        };
        let mut sessions = SessionArrayHost::new(1024, SALT);
        let mut generator = RequestGenerator::new(64, 5);
        let reqs = generator.mixed(128, &mut sessions);
        let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(1));
        let (res, parsed) = run_parser_only(&workload, &reqs, &gpu, &opts).unwrap();
        (format!("{res:?}"), parsed)
    };
    let base = run_with(Some(1));
    for workers in [Some(2), Some(4)] {
        assert_eq!(run_with(workers), base, "workers={workers:?}");
    }
}
