//! Differential tests: the SIMT kernels and the native handlers interpret
//! the same page specs and must agree — byte-for-byte modulo
//! warp-alignment whitespace (paper: the CUDA server is validated against
//! the SPECWeb client validator; here the native implementation plays the
//! validator).

use rhythm_banking::prelude::*;
use rhythm_http::padding::eq_modulo_padding;
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;

fn harness() -> (Workload, BankStore, Gpu) {
    (
        Workload::build(),
        BankStore::generate(128, 77),
        Gpu::new(GpuConfig::gtx_titan()),
    )
}

fn opts(transposed: bool) -> CohortOptions {
    CohortOptions {
        transposed,
        backend: BackendMode::Device,
        session_capacity: 1024,
        session_salt: SALT,
        skip_parser: false,
        workers: None,
        verify: true,
        plan_cache: true,
        pack: true,
        sanitize: false,
    }
}

/// Mask the Content-Length digits: the kernel's body includes alignment
/// padding, so its (self-consistent) length legitimately differs from the
/// native (unpadded) length.
fn mask_content_length(resp: &[u8]) -> Vec<u8> {
    let text = String::from_utf8_lossy(resp);
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.split('\n').enumerate() {
        if i > 0 {
            out.push('\n');
        }
        if line.starts_with("Content-Length:") {
            out.push_str("Content-Length: <masked>");
        } else {
            out.push_str(line);
        }
    }
    out.into_bytes()
}

/// Strip trailing spaces per line (padding), mask Content-Length, compare.
fn assert_equivalent(kernel: &[u8], native: &[u8], ctx: &str) {
    let (kernel_m, native_m) = (mask_content_length(kernel), mask_content_length(native));
    assert!(
        eq_modulo_padding(&kernel_m, &native_m),
        "{ctx}: kernel and native responses differ\n--- kernel ---\n{}\n--- native ---\n{}",
        String::from_utf8_lossy(&kernel[..kernel.len().min(2000)]),
        String::from_utf8_lossy(&native[..native.len().min(2000)]),
    );
}

/// Kernel Content-Length must equal the kernel's own (padded) body size.
fn assert_clen_consistent(resp: &[u8], ctx: &str) {
    let text = String::from_utf8_lossy(resp);
    let body_start = text.find("\n\n").map(|p| p + 2).unwrap_or(0);
    let clen: usize = text
        .lines()
        .find(|l| l.starts_with("Content-Length:"))
        .and_then(|l| l["Content-Length:".len()..].trim().parse().ok())
        .unwrap_or(usize::MAX);
    assert_eq!(clen, resp.len() - body_start, "{ctx}: content-length");
}

#[test]
fn every_type_matches_native_device_backend() {
    let (workload, store, gpu) = harness();
    for ty in RequestType::ALL {
        let mut sessions = SessionArrayHost::new(1024, SALT);
        let mut generator = RequestGenerator::new(128, ty.id() as u64 + 1);
        let cohort = generator.uniform(ty, 48, &mut sessions);

        // Native side runs against a snapshot of the same session state.
        let mut native_sessions = sessions.clone();
        let native: Vec<Vec<u8>> = cohort
            .iter()
            .map(|r| handle_native(&r.banking_request(), &store, &mut native_sessions))
            .collect();

        let mut device_sessions = sessions.clone();
        let result = run_cohort(
            &workload,
            &store,
            &mut device_sessions,
            &cohort,
            &gpu,
            &opts(true),
        )
        .expect("cohort runs");

        for (lane, (k, n)) in result.responses.iter().zip(&native).enumerate() {
            assert_equivalent(k, n, &format!("{ty} lane {lane}"));
            assert_clen_consistent(k, &format!("{ty} lane {lane}"));
        }

        // Session state evolves identically.
        assert_eq!(
            device_sessions.len(),
            native_sessions.len(),
            "{ty}: live session count"
        );
    }
}

#[test]
fn row_major_and_transposed_produce_identical_responses() {
    let (workload, store, gpu) = harness();
    let ty = RequestType::AccountSummary;
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(128, 5);
    let cohort = generator.uniform(ty, 64, &mut sessions);

    let mut s1 = sessions.clone();
    let row = run_cohort(&workload, &store, &mut s1, &cohort, &gpu, &opts(false)).unwrap();
    let mut s2 = sessions.clone();
    let col = run_cohort(&workload, &store, &mut s2, &cohort, &gpu, &opts(true)).unwrap();

    assert_eq!(row.responses, col.responses, "layout must not affect bytes");

    // ...but it radically affects the memory system: the transposed layout
    // must need far fewer transactions per access in the response stage.
    let tx = |r: &rhythm_banking::runner::CohortResult| {
        let (_, l) = r
            .launches
            .iter()
            .find(|(n, _)| n.ends_with("_response"))
            .expect("response launch");
        l.stats.transactions_per_access()
    };
    let (tx_row, tx_col) = (tx(&row), tx(&col));
    assert!(
        tx_row > 4.0 * tx_col,
        "row-major {tx_row:.2} vs transposed {tx_col:.2} transactions/access"
    );
}

#[test]
fn host_and_device_backends_agree() {
    let (workload, store, gpu) = harness();
    let ty = RequestType::BillPay;
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(128, 9);
    let cohort = generator.uniform(ty, 32, &mut sessions);

    let mut s1 = sessions.clone();
    let dev = run_cohort(&workload, &store, &mut s1, &cohort, &gpu, &opts(true)).unwrap();

    let mut s2 = sessions.clone();
    let mut host_opts = opts(true);
    host_opts.backend = BackendMode::Host;
    let host = run_cohort(&workload, &store, &mut s2, &cohort, &gpu, &host_opts).unwrap();

    assert_eq!(dev.responses, host.responses);
}

#[test]
fn parser_kernel_extracts_fields_from_mixed_cohort() {
    let (workload, _store, gpu) = harness();
    let mut sessions = SessionArrayHost::new(4096, SALT);
    let mut generator = RequestGenerator::new(512, 11);
    let cohort = generator.mixed(128, &mut sessions);

    let o = CohortOptions {
        session_capacity: 4096,
        ..opts(true)
    };
    let (res, parsed) = run_parser_only(&workload, &cohort, &gpu, &o).unwrap();
    for (lane, (r, (ty_id, token, p0, p1))) in cohort.iter().zip(&parsed).enumerate() {
        assert_eq!(*ty_id, r.ty.id(), "lane {lane} type");
        assert_eq!(*token, r.token, "lane {lane} token");
        assert_eq!(*p0, r.params[0], "lane {lane} p0");
        assert_eq!(*p1, r.params[1], "lane {lane} p1");
    }
    // A mixed cohort must diverge in the type-match chain.
    assert!(res.stats.divergence.divergent_branches > 0);
}

#[test]
fn invalid_session_gets_forbidden_from_kernels() {
    let (workload, store, gpu) = harness();
    let ty = RequestType::Transfer;
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(128, 13);
    let mut cohort = generator.uniform(ty, 32, &mut sessions);

    // Corrupt one lane's token (in both raw text and parsed form).
    let bad = 7usize;
    let bad_token = cohort[bad].token ^ 0xFFFF;
    cohort[bad].token = bad_token;
    cohort[bad].raw = rhythm_banking::genreq::raw_http(ty, bad_token, &cohort[bad].params);

    let mut s = sessions.clone();
    let result = run_cohort(&workload, &store, &mut s, &cohort, &gpu, &opts(true)).unwrap();
    let text = String::from_utf8_lossy(&result.responses[bad]);
    assert!(text.starts_with("HTTP/1.1 403 Forbidden"), "got: {text}");
    // Neighbours are unaffected.
    assert!(result.responses[6].starts_with(b"HTTP/1.1 200 OK"));
    assert!(result.responses[8].starts_with(b"HTTP/1.1 200 OK"));
}

#[test]
fn login_cohort_creates_sessions_on_device() {
    let (workload, store, gpu) = harness();
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(128, 17);
    let cohort = generator.uniform(RequestType::Login, 64, &mut sessions);
    assert!(sessions.is_empty());

    let mut s = sessions.clone();
    let result = run_cohort(&workload, &store, &mut s, &cohort, &gpu, &opts(true)).unwrap();
    assert_eq!(s.len(), 64, "one session per login");
    for (lane, r) in cohort.iter().enumerate() {
        let text = String::from_utf8_lossy(&result.responses[lane]);
        let tok_line = text
            .lines()
            .find(|l| l.starts_with("Set-Cookie: SID="))
            .unwrap_or_else(|| panic!("lane {lane}: no cookie in {text}"));
        let tok: u32 = tok_line["Set-Cookie: SID=".len()..].trim().parse().unwrap();
        assert_eq!(s.lookup(tok), Some(r.params[0]), "lane {lane}");
    }
}

#[test]
fn logout_cohort_destroys_sessions_on_device() {
    let (workload, store, gpu) = harness();
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(128, 19);
    let cohort = generator.uniform(RequestType::Logout, 32, &mut sessions);
    assert_eq!(sessions.len(), 32);

    let mut s = sessions.clone();
    run_cohort(&workload, &store, &mut s, &cohort, &gpu, &opts(true)).unwrap();
    assert_eq!(s.len(), 0, "all sessions destroyed");
}

#[test]
fn packed_cohorts_are_bit_identical_to_unpacked() {
    // Sub-warp packing is selected per kernel by the verifier's legality
    // analysis and fuses up to four warps; it must never change a byte of
    // any response, the session evolution, or a single stats counter on
    // any launch, for any request type.
    let (workload, store, gpu) = harness();
    for ty in RequestType::ALL {
        let mut sessions = SessionArrayHost::new(1024, SALT);
        let mut generator = RequestGenerator::new(128, 100 + ty.id() as u64);
        let cohort = generator.uniform(ty, 96, &mut sessions);

        let mut s_off = sessions.clone();
        let mut o = opts(true);
        o.pack = false;
        let unpacked = run_cohort(&workload, &store, &mut s_off, &cohort, &gpu, &o).unwrap();

        let mut s_on = sessions.clone();
        let packed = run_cohort(&workload, &store, &mut s_on, &cohort, &gpu, &opts(true)).unwrap();

        assert_eq!(
            packed.responses, unpacked.responses,
            "{ty}: packing changed response bytes"
        );
        assert_eq!(
            s_on.to_device_bytes(),
            s_off.to_device_bytes(),
            "{ty}: packing changed session state"
        );
        assert_eq!(
            packed.launches.len(),
            unpacked.launches.len(),
            "{ty}: launch count"
        );
        for ((n_p, l_p), (n_u, l_u)) in packed.launches.iter().zip(&unpacked.launches) {
            assert_eq!(n_p, n_u, "{ty}: launch order");
            assert_eq!(l_p.stats, l_u.stats, "{ty}/{n_p}: packing changed stats");
        }
    }
}

#[test]
fn divergence_appears_in_variable_row_counts() {
    // Account summaries over users with 2–4 accounts: the row loop
    // diverges, SIMD efficiency drops below 1 but stays high.
    let (workload, store, gpu) = harness();
    let ty = RequestType::AccountSummary;
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(128, 23);
    let cohort = generator.uniform(ty, 64, &mut sessions);

    let mut s = sessions.clone();
    let result = run_cohort(&workload, &store, &mut s, &cohort, &gpu, &opts(true)).unwrap();
    let (_, resp_launch) = result
        .launches
        .iter()
        .find(|(n, _)| n.ends_with("_response"))
        .unwrap();
    let eff = resp_launch.stats.simd_efficiency(32);
    assert!(eff < 1.0, "variable rows must diverge (eff {eff})");
    assert!(
        eff > 0.5,
        "cohorts of one type stay mostly converged ({eff})"
    );
}

/// Footprint sanitizer differential: every request type, in both memory
/// layouts, runs its full cohort pipeline with every kernel launch
/// checked against its inferred static footprint — zero escapes, and
/// responses, launch stats, and session state bit-identical to the
/// unsanitized run (the sanitizer is a checking mode, never a semantic
/// one).
#[test]
fn sanitized_cohorts_match_unsanitized_for_every_type() {
    let (workload, store, gpu) = harness();
    for transposed in [true, false] {
        for ty in RequestType::ALL {
            let mut sessions = SessionArrayHost::new(1024, SALT);
            let mut generator = RequestGenerator::new(128, 29);
            let cohort = generator.uniform(ty, 48, &mut sessions);

            let mut plain_sessions = sessions.clone();
            let plain = run_cohort(
                &workload,
                &store,
                &mut plain_sessions,
                &cohort,
                &gpu,
                &opts(transposed),
            )
            .unwrap();

            let sanitized_opts = CohortOptions {
                sanitize: true,
                ..opts(transposed)
            };
            let mut sanitized_sessions = sessions.clone();
            let sanitized = run_cohort(
                &workload,
                &store,
                &mut sanitized_sessions,
                &cohort,
                &gpu,
                &sanitized_opts,
            )
            .unwrap_or_else(|e| panic!("{ty:?} transposed={transposed}: footprint escape: {e}"));

            assert_eq!(
                plain.responses, sanitized.responses,
                "{ty:?} transposed={transposed} responses"
            );
            assert_eq!(
                format!("{:?}", plain.launches),
                format!("{:?}", sanitized.launches),
                "{ty:?} transposed={transposed} launch stats"
            );
            assert_eq!(
                plain_sessions.to_device_bytes(),
                sanitized_sessions.to_device_bytes(),
                "{ty:?} transposed={transposed} sessions"
            );
        }
    }
}
