//! Effect-summary proofs over the real banking workload: every kernel
//! gets a non-⊤ footprint under its production launch environment, the
//! session-writer oracle classifies exactly Login/Logout, the shared
//! stream planner groups from those proofs, and the HyperQ path stays
//! bit-identical to serial execution with the footprint sanitizer
//! checking every global access (zero escapes).

use rhythm_banking::prelude::*;
use rhythm_banking::runner::CohortResult;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_verify::effects::infer_effects;
use rhythm_verify::LaunchSpec;

const SALT: u32 = 0x5EED_0001;
const SESSION_CAPACITY: u32 = 1024;

fn harness() -> (Workload, BankStore, Gpu) {
    (
        Workload::build(),
        BankStore::generate(128, 77),
        Gpu::new(GpuConfig::gtx_titan()),
    )
}

fn opts() -> CohortOptions {
    CohortOptions {
        session_capacity: SESSION_CAPACITY,
        session_salt: SALT,
        ..CohortOptions::default()
    }
}

/// Every banking kernel — parser, backend, image, and all per-type
/// stages — must infer a bounded (non-⊤) global footprint under the same
/// launch environment the cohort runner uses. A ⊤ kernel would turn the
/// sanitizer into a no-op and the HyperQ planner maximally conservative.
#[test]
fn all_banking_kernels_infer_bounded_footprints() {
    let workload = Workload::build();
    let store_bytes = BankStore::generate(128, 77).serialize_device().len() as u32;
    let mut seen = std::collections::BTreeSet::new();
    for ty in RequestType::ALL {
        let layout = CohortLayout::new(
            256,
            ty.response_buffer_bytes(),
            SESSION_CAPACITY,
            SALT,
            store_bytes,
            true,
        );
        let spec = LaunchSpec {
            lanes: 256,
            params: Some(layout.params()),
            global_bytes: Some(layout.total_bytes as u64),
            shared_bytes: Some(1024),
            local_bytes: Some(64),
            const_bytes: Some(workload.pool.len() as u64),
        };
        let regions = layout.regions();
        let programs = [&workload.parser, &workload.backend, &workload.image]
            .into_iter()
            .chain(workload.stages_of(ty).iter());
        for program in programs {
            let fx = infer_effects(program, &spec, &regions);
            assert!(
                !fx.is_top_anywhere(),
                "{} infers a ⊤ footprint for {ty:?}",
                program.name()
            );
            seen.insert(program.name().to_string());
        }
    }
    assert_eq!(seen.len(), 30, "expected the full 30-kernel workload");
}

/// The effect oracle classifies exactly the nominal session writers:
/// Login and Logout mutate the device session array, nothing else does.
/// This is the proof `plan_stream_groups` schedules from, so both
/// directions matter — a missed writer is a race, a spurious writer
/// serializes the batch.
#[test]
fn session_writer_oracle_matches_login_logout_exactly() {
    let workload = Workload::build();
    let store_bytes = BankStore::generate(128, 77).serialize_device().len() as u32;
    let opts = opts();
    for ty in RequestType::ALL {
        let writer = cohort_writes_sessions(&workload, store_bytes, ty, 64, &opts);
        assert_eq!(
            writer,
            ty.is_login() || ty.is_logout(),
            "session-writer verdict for {ty:?}"
        );
    }
}

/// The shared planner coalesces proven-read-only neighbours into maximal
/// concurrent groups, isolates proven writers as singleton barriers, and
/// degrades every cohort to serial when the options can't stream.
#[test]
fn stream_planner_groups_from_proofs() {
    let workload = Workload::build();
    let store_bytes = BankStore::generate(128, 77).serialize_device().len() as u32;
    let opts = opts();
    let shapes = [
        (RequestType::Login, 16),
        (RequestType::Transfer, 32),
        (RequestType::AccountSummary, 16),
        (RequestType::Logout, 8),
        (RequestType::Transfer, 8),
        (RequestType::BillPay, 8),
    ];
    let groups = plan_stream_groups(&workload, store_bytes, &shapes, &opts);
    let expect = |start, end, concurrent| StreamGroup {
        start,
        end,
        concurrent,
    };
    assert_eq!(
        groups,
        vec![
            expect(0, 1, false),
            expect(1, 3, true),
            expect(3, 4, false),
            expect(4, 6, true),
        ]
    );

    // Host-backend runs interleave host work between kernels, which
    // streams cannot express: everything becomes a serial singleton.
    let host_opts = CohortOptions {
        backend: BackendMode::Host,
        ..opts
    };
    let host_groups = plan_stream_groups(&workload, store_bytes, &shapes, &host_opts);
    assert_eq!(host_groups.len(), shapes.len());
    assert!(host_groups.iter().all(|g| !g.concurrent && g.len() == 1));
}

/// End to end: a mixed batch through the proof-scheduled HyperQ path,
/// with the footprint sanitizer checking every global access of every
/// kernel launch, is bit-identical to serial `run_cohort` execution —
/// same responses, same final session state, zero footprint escapes.
#[test]
fn hyperq_with_sanitizer_matches_serial_bit_for_bit() {
    let (workload, store, gpu) = harness();
    let mut sessions = SessionArrayHost::new(SESSION_CAPACITY, SALT);
    let mut generator = RequestGenerator::new(128, 23);
    let cohorts: Vec<Vec<GeneratedRequest>> = vec![
        generator.uniform(RequestType::Transfer, 32, &mut sessions),
        generator.uniform(RequestType::AccountSummary, 16, &mut sessions),
        generator.uniform(RequestType::Login, 16, &mut sessions),
        generator.uniform(RequestType::BillPay, 16, &mut sessions),
        generator.uniform(RequestType::Transfer, 16, &mut sessions),
        generator.uniform(RequestType::Logout, 8, &mut sessions),
        generator.uniform(RequestType::AccountSummary, 8, &mut sessions),
    ];

    let base = opts();
    let mut serial_sessions = sessions.clone();
    let serial: Vec<CohortResult> = cohorts
        .iter()
        .map(|c| run_cohort(&workload, &store, &mut serial_sessions, c, &gpu, &base).unwrap())
        .collect();

    let sanitized = CohortOptions {
        sanitize: true,
        ..base
    };
    let mut hyperq_sessions = sessions.clone();
    let results = run_cohorts_hyperq(
        &workload,
        &store,
        &mut hyperq_sessions,
        &cohorts,
        &gpu,
        &sanitized,
    );
    for (i, (reference, result)) in serial.iter().zip(&results).enumerate() {
        let result = result
            .as_ref()
            .unwrap_or_else(|e| panic!("cohort {i}: sanitized HyperQ run failed: {e}"));
        assert_eq!(
            reference.responses, result.responses,
            "cohort {i} responses"
        );
    }
    assert_eq!(
        serial_sessions.to_device_bytes(),
        hyperq_sessions.to_device_bytes(),
        "final session state"
    );
}
