//! Tests for the scalar (CPU-model) single-request runner.

use rhythm_banking::prelude::*;
use rhythm_http::padding::eq_modulo_padding;

const SALT: u32 = 0x5EED_0001;

#[test]
fn scalar_matches_native_exactly() {
    let workload = Workload::build();
    let store = BankStore::generate(64, 3);
    for ty in RequestType::ALL {
        let mut sessions = SessionArrayHost::new(256, SALT);
        let mut generator = RequestGenerator::new(64, ty.id() as u64 + 40);
        let req = generator.one(ty, &mut sessions);

        let mut native_sessions = sessions.clone();
        let native = handle_native(&req.banking_request(), &store, &mut native_sessions);

        let mut scalar_sessions = sessions.clone();
        let result =
            run_request_scalar(&workload, &store, &mut scalar_sessions, &req, false).unwrap();

        // A cohort of one gets no padding, so equality is exact.
        assert_eq!(
            result.response,
            native,
            "{ty}: scalar vs native\n--scalar--\n{}\n--native--\n{}",
            String::from_utf8_lossy(&result.response[..result.response.len().min(400)]),
            String::from_utf8_lossy(&native[..native.len().min(400)])
        );
        assert_eq!(scalar_sessions.len(), native_sessions.len());
        assert!(result.stats.instructions > 1000, "{ty}: counted work");
    }
}

#[test]
fn instruction_counts_track_response_size() {
    let workload = Workload::build();
    let store = BankStore::generate(64, 3);
    let count = |ty: RequestType| -> f64 {
        let mut sessions = SessionArrayHost::new(256, SALT);
        let mut generator = RequestGenerator::new(64, 99);
        let mut total = 0u64;
        let n = 5;
        for _ in 0..n {
            let req = generator.one(ty, &mut sessions);
            let r = run_request_scalar(&workload, &store, &mut sessions, &req, false).unwrap();
            total += r.stats.instructions;
        }
        total as f64 / n as f64
    };
    let login = count(RequestType::Login); // 4 KB page
    let logout = count(RequestType::Logout); // 46 KB page
    assert!(
        logout > 5.0 * login,
        "logout ({logout}) should dwarf login ({login}), roughly with page size"
    );
}

#[test]
fn traces_are_captured_and_similar_across_requests() {
    let workload = Workload::build();
    let store = BankStore::generate(64, 3);
    let mut sessions = SessionArrayHost::new(256, SALT);
    let mut generator = RequestGenerator::new(64, 7);
    let mut traces = Vec::new();
    for _ in 0..3 {
        let req = generator.one(RequestType::Transfer, &mut sessions);
        let r = run_request_scalar(&workload, &store, &mut sessions, &req, true).unwrap();
        let t = r.trace.expect("trace requested");
        assert_eq!(t.len() as u64, r.stats.blocks, "trace length = blocks");
        traces.push(t);
    }
    let (merged, rep) = rhythm_trace::merge_traces(&traces, 20_000);
    assert!(rep.exact);
    assert!(merged.len() >= traces.iter().map(Vec::len).max().unwrap());
    assert!(
        rep.relative_to_ideal() > 0.7,
        "same-type requests are highly similar: {}",
        rep.relative_to_ideal()
    );
}

#[test]
fn scalar_equals_cohort_modulo_padding() {
    use rhythm_simt::gpu::{Gpu, GpuConfig};
    let workload = Workload::build();
    let store = BankStore::generate(64, 3);
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let ty = RequestType::Profile;

    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 21);
    let cohort = generator.uniform(ty, 32, &mut sessions);

    let mut s1 = sessions.clone();
    let opts = CohortOptions {
        session_capacity: 1024,
        ..Default::default()
    };
    let simt = run_cohort(&workload, &store, &mut s1, &cohort, &gpu, &opts).unwrap();

    let mut s2 = sessions.clone();
    let scalar = run_request_scalar(&workload, &store, &mut s2, &cohort[0], false).unwrap();

    // Mask the content-length digits (padding changes the kernel's) and
    // compare lane 0.
    let strip = |b: &[u8]| {
        String::from_utf8_lossy(b)
            .lines()
            .filter(|l| !l.starts_with("Content-Length:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(eq_modulo_padding(
        strip(&simt.responses[0]).as_bytes(),
        strip(&scalar.response).as_bytes()
    ));
}
