//! End-to-end proof-driven HyperQ over real sockets: a full banking
//! conversation (login → mixed read-only pages → logout → re-login)
//! against the sharded SIMT server, with the footprint sanitizer checking
//! every kernel launch, must produce a byte-identical transcript at
//! shard counts 1, 2, and 4. The pipelined page burst forms a
//! multi-cohort batch, so the effect-proof stream planner (not the old
//! name heuristic) decides which cohorts launch concurrently.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_banking::genreq::raw_http;
use rhythm_banking::prelude::*;
use rhythm_net::{read_response, send_request, NetConfig, ShardedServer};
use rhythm_simt::gpu::{Gpu, GpuConfig};

const SALT: u32 = 0x5EED_0001;
const SESSION_CAPACITY: u32 = 256;

fn handler() -> SimtHandler {
    let opts = CohortOptions {
        session_capacity: SESSION_CAPACITY,
        session_salt: SALT,
        sanitize: true,
        ..CohortOptions::default()
    };
    SimtHandler::new(
        Workload::build(),
        BankStore::generate(64, 7),
        SessionArrayHost::new(SESSION_CAPACITY, SALT),
        Gpu::new(GpuConfig::gtx_titan()),
        opts,
    )
}

struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<rhythm_net::ShardedRun<SimtHandler>>>,
}

impl Server {
    fn start(shards: usize) -> Self {
        let handlers: Vec<_> = (0..shards).map(|_| handler()).collect();
        let config = NetConfig {
            cohort_size: 4,
            fill_timeout: Duration::from_millis(5),
            ..NetConfig::default()
        };
        let server = ShardedServer::bind("127.0.0.1:0", config, handlers).expect("bind");
        let addr = server.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || server.run(&flag));
        Server {
            addr,
            stop,
            join: Some(join),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn sid_of(resp: &[u8]) -> u32 {
    let text = String::from_utf8_lossy(resp);
    text.lines()
        .find_map(|l| l.strip_prefix("Set-Cookie: SID="))
        .unwrap_or_else(|| panic!("no session cookie in:\n{text}"))
        .trim()
        .parse()
        .expect("numeric SID")
}

/// Run the scripted conversation against one server and return the full
/// response transcript (status + raw bytes per request, in order).
fn conversation(addr: SocketAddr) -> Vec<(u16, Vec<u8>)> {
    let userid = 3u32;
    let mut conn = connect(addr);
    let mut carry = Vec::new();
    let mut transcript: Vec<(u16, Vec<u8>)> = Vec::new();
    fn round_trip(
        transcript: &mut Vec<(u16, Vec<u8>)>,
        conn: &mut TcpStream,
        carry: &mut Vec<u8>,
        raw: &[u8],
    ) -> Vec<u8> {
        send_request(conn, raw).unwrap();
        let resp = read_response(conn, carry).unwrap();
        transcript.push((resp.status, resp.bytes.clone()));
        resp.bytes
    }

    // Login, establishing the session the pages ride on.
    let login = raw_http(RequestType::Login, 0, &[userid, 0, 0, 0]);
    let resp = round_trip(&mut transcript, &mut conn, &mut carry, &login);
    let token = sid_of(&resp);

    // A pipelined burst of read-only pages of three different types: they
    // split into per-type cohorts that flush as one batch, which the
    // effect proofs must launch as one concurrent stream group.
    let burst: Vec<Vec<u8>> = vec![
        raw_http(RequestType::AccountSummary, token, &[userid, 0, 0, 0]),
        raw_http(RequestType::Transfer, token, &[userid, 120, 0, 0]),
        raw_http(RequestType::AccountSummary, token, &[userid, 0, 0, 0]),
        raw_http(RequestType::BillPay, token, &[userid, 45, 0, 0]),
        raw_http(RequestType::Transfer, token, &[userid, 60, 0, 0]),
    ];
    let mut bytes = Vec::new();
    for r in &burst {
        bytes.extend_from_slice(r);
    }
    send_request(&mut conn, &bytes).unwrap();
    for _ in &burst {
        let resp = read_response(&mut conn, &mut carry).unwrap();
        transcript.push((resp.status, resp.bytes.clone()));
    }

    // Logout (a proven write barrier), then a fresh login and one more
    // page through the new session.
    let logout = raw_http(RequestType::Logout, token, &[userid, 0, 0, 0]);
    round_trip(&mut transcript, &mut conn, &mut carry, &logout);
    let resp = round_trip(&mut transcript, &mut conn, &mut carry, &login);
    let token2 = sid_of(&resp);
    let summary = raw_http(RequestType::AccountSummary, token2, &[userid, 0, 0, 0]);
    round_trip(&mut transcript, &mut conn, &mut carry, &summary);
    let logout2 = raw_http(RequestType::Logout, token2, &[userid, 0, 0, 0]);
    round_trip(&mut transcript, &mut conn, &mut carry, &logout2);

    transcript
}

#[test]
fn conversation_transcript_is_bit_identical_across_shard_counts() {
    let mut reference: Option<Vec<(u16, Vec<u8>)>> = None;
    for shards in [1usize, 2, 4] {
        let server = Server::start(shards);
        let transcript = conversation(server.addr);
        drop(server);

        for (i, (status, raw)) in transcript.iter().enumerate() {
            assert_eq!(
                *status,
                200,
                "shards={shards} request {i} failed:\n{}",
                String::from_utf8_lossy(raw)
            );
        }
        match &reference {
            None => reference = Some(transcript),
            Some(reference) => {
                assert_eq!(
                    reference, &transcript,
                    "transcript differs at shards={shards}"
                );
            }
        }
    }
}
