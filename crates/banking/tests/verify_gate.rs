//! The default-on static-verification gate: every banking kernel must be
//! admitted (zero `Error` findings against real cohort launch
//! environments), gating must not perturb results, and an explicitly
//! gated device must reject a defective kernel before it runs.

use std::sync::Arc;

use rhythm_banking::prelude::*;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::ir::ProgramBuilder;
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::ExecError;
use rhythm_verify::Verifier;

const SALT: u32 = 0x5EED_0001;

fn run_with(verify: bool, ty: RequestType) -> (Vec<Vec<u8>>, Vec<u8>) {
    let workload = Workload::build();
    let store = BankStore::generate(256, 1);
    let opts = CohortOptions {
        session_capacity: 1024,
        session_salt: SALT,
        verify,
        ..Default::default()
    };
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 2);
    let reqs = generator.uniform(ty, 64, &mut sessions);
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(1));
    let result = run_cohort(&workload, &store, &mut sessions, &reqs, &gpu, &opts).unwrap();
    (result.responses, sessions.to_device_bytes())
}

#[test]
fn gated_cohorts_run_and_match_ungated_results() {
    for ty in [RequestType::Login, RequestType::AccountSummary] {
        let gated = run_with(true, ty);
        assert!(
            gated.0[0].starts_with(b"HTTP/1.1 200 OK"),
            "gated {ty:?} cohort must still serve"
        );
        let ungated = run_with(false, ty);
        assert_eq!(gated, ungated, "verification changed {ty:?} results");
    }
}

#[test]
fn default_options_enable_verification() {
    assert!(CohortOptions::default().verify);
}

#[test]
fn gated_device_rejects_a_defective_kernel_but_admits_banking() {
    // The same Verifier instance that admits every banking kernel must
    // reject a lost-update kernel, with no lane having run.
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(1)).with_gate(Arc::new(Verifier::new()));

    let workload = Workload::build();
    let store = BankStore::generate(256, 1);
    let opts = CohortOptions {
        session_capacity: 1024,
        session_salt: SALT,
        verify: true,
        ..Default::default()
    };
    let mut sessions = SessionArrayHost::new(1024, SALT);
    let mut generator = RequestGenerator::new(64, 2);
    let reqs = generator.uniform(RequestType::Login, 32, &mut sessions);
    run_cohort(&workload, &store, &mut sessions, &reqs, &gpu, &opts)
        .expect("banking kernels must pass the gate");

    let mut b = ProgramBuilder::new("lost_update");
    let lane = b.lane_id();
    let addr = b.imm(0);
    b.st_global_word(addr, 0, lane);
    b.halt();
    let bad = b.build().unwrap();
    let mut mem = DeviceMemory::new(64);
    let err = gpu
        .launch(
            &bad,
            &LaunchConfig::new(32, []),
            &mut mem,
            &ConstPool::new(),
        )
        .unwrap_err();
    let ExecError::Rejected(r) = err else {
        panic!("expected rejection, got {err:?}");
    };
    assert_eq!(r.rule, "race-uniform-store");
    assert!(
        mem.as_bytes().iter().all(|&x| x == 0),
        "no lane may have run"
    );
}
