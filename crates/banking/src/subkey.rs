//! Similarity sub-keys: split each request type's cohort key by branchy
//! parser features so cohorts diverge less.
//!
//! The paper's Figure 2 premise is that cohorts of *similar* requests
//! keep SIMD efficiency high. Keying cohorts by request type alone
//! leaves measurable divergence on the table: within one type, requests
//! differ in the lengths of their variable fields (user ids, amounts,
//! session tokens) and in which optional fields are present, and the
//! parser/stage0 kernels scan those fields in data-dependent loops —
//! lanes with different field lengths run different trip counts, so a
//! warp of mixed shapes serializes on the length tail.
//!
//! This module sub-divides the type key by three cheap wire-visible
//! features of exactly those loops:
//!
//! * **variable-text length bucket** — total bytes of query/form
//!   parameters and cookies (the data-dependent scan lengths),
//! * **query-parameter count** — how many `key=value` pairs the parser
//!   loop iterates over,
//! * **cookie presence** — whether the session-cookie scan runs at all.
//!
//! The 32 feature combinations are collapsed to at most
//! [`SUBKEY_SPACE`] sub-keys by a small static table derived offline:
//! the `subkey_table` bench bin traces one representative request per
//! (type, combination) on the scalar executor, Myers-merges the traces
//! pairwise (`rhythm-trace`, the Figure 2 similarity metric), and
//! greedily clusters combinations whose traces merge with the least
//! divergence. [`SubkeyTable::BUILTIN`] is that tool's output, checked
//! in; re-derive with `cargo run --release --bin subkey_table -- --derive`.
//!
//! Sub-keying is purely a cohort-formation hint: execution decodes each
//! request independently, so responses are byte-identical with sub-keys
//! on or off. Only grouping (and with it SIMD efficiency) changes.

use rhythm_http::HttpRequest;

use crate::types::RequestType;

/// Sub-keys per request type: composite cohort key =
/// `type_id × SUBKEY_SPACE + subkey`.
pub const SUBKEY_SPACE: u32 = 8;

/// Distinct [`ParserFeatures`] combinations (4 length buckets × 4
/// capped parameter counts × cookie presence).
pub const FEATURE_COMBOS: usize = 32;

/// The wire-visible features of the parser's data-dependent loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParserFeatures {
    /// Bucketed total length of variable request text (parameter and
    /// cookie `key=value` bytes): 0 ≤ 9, 1 ≤ 23, 2 ≤ 30, 3 beyond.
    /// The edges sit *inside* each request population's length range
    /// (uncookied logins span 8–11 bytes, cookied single-parameter
    /// requests 22–26, amount-carrying requests 26–33), so every type is
    /// split by at least one edge — a bucket edge in a gap between
    /// populations would only restate the type key.
    pub len_bucket: u8,
    /// Query/form parameter count, capped at 3.
    pub param_count: u8,
    /// Whether a cookie header is present (the session-token scan).
    pub has_cookie: bool,
}

impl ParserFeatures {
    /// Extract the features from a parsed wire request.
    pub fn of(req: &HttpRequest) -> Self {
        let var_len: usize = req
            .params
            .iter()
            .map(|(k, v)| k.len() + v.len() + 1)
            .chain(req.cookies.iter().map(|(k, v)| k.len() + v.len() + 1))
            .sum();
        let len_bucket = match var_len {
            0..=9 => 0,
            10..=23 => 1,
            24..=30 => 2,
            _ => 3,
        };
        ParserFeatures {
            len_bucket,
            param_count: req.params.len().min(3) as u8,
            has_cookie: !req.cookies.is_empty(),
        }
    }

    /// Dense index of this combination in `[0, FEATURE_COMBOS)`.
    pub fn index(&self) -> usize {
        (self.len_bucket.min(3) as usize) * 8
            + (self.param_count.min(3) as usize) * 2
            + usize::from(self.has_cookie)
    }

    /// The combination for a dense index (inverse of
    /// [`ParserFeatures::index`]).
    pub fn from_index(i: usize) -> Self {
        ParserFeatures {
            len_bucket: ((i / 8) % 4) as u8,
            param_count: ((i / 2) % 4) as u8,
            has_cookie: i % 2 == 1,
        }
    }
}

/// The static feature-combination → sub-key table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubkeyTable {
    map: [u8; FEATURE_COMBOS],
}

impl SubkeyTable {
    /// The checked-in table derived by the `subkey_table` bench tool
    /// (`cargo run --release -p rhythm-bench --bin subkey_table -- --derive`)
    /// from Myers-merge divergence clustering over the generated corpus.
    /// Five clusters survive: short and long logins split (their userid
    /// digit loop diverges most), cookied single-parameter requests
    /// split at the length-bucket edge inside their population, and the
    /// amount-carrying requests collapse into one sub-key (their traces
    /// merge with divergence below the tool's 0.001 epsilon — splitting
    /// them would fragment fill for no SIMD-efficiency gain). Absent
    /// feature combinations map to the nearest present one.
    pub const BUILTIN: SubkeyTable = SubkeyTable {
        map: [
            0, 0, 0, 0, 0, 0, 0, 0, // len bucket 0: short logins
            1, 2, 1, 2, 1, 2, 1, 2, // bucket 1: long logins | short cookied
            3, 3, 3, 3, 4, 4, 4, 4, // bucket 2: long cookied | amounts
            4, 4, 4, 4, 4, 4, 4, 4, // bucket 3: amounts
        ],
    };

    /// A table from an explicit map.
    ///
    /// # Panics
    ///
    /// Panics if any entry is outside `[0, SUBKEY_SPACE)`.
    pub fn from_map(map: [u8; FEATURE_COMBOS]) -> Self {
        assert!(
            map.iter().all(|&s| (s as u32) < SUBKEY_SPACE),
            "sub-key out of range"
        );
        SubkeyTable { map }
    }

    /// The raw map (feature index → sub-key).
    pub fn map(&self) -> &[u8; FEATURE_COMBOS] {
        &self.map
    }

    /// Sub-key for a feature combination.
    pub fn subkey(&self, f: &ParserFeatures) -> u32 {
        self.map[f.index()] as u32
    }

    /// Composite cohort key for a typed request with features `f`.
    pub fn composite_key(&self, ty: RequestType, f: &ParserFeatures) -> u32 {
        ty.id() * SUBKEY_SPACE + self.subkey(f)
    }
}

/// Split a composite key back into `(type_id, subkey)`.
pub fn split_key(key: u32) -> (u32, u32) {
    (key / SUBKEY_SPACE, key % SUBKEY_SPACE)
}

/// Label for a composite key: the type's page name with a `#s<n>`
/// sub-key suffix (used on latency/launch metrics).
pub fn key_label(key: u32) -> String {
    let (ty, sub) = split_key(key);
    match RequestType::from_id(ty) {
        Some(t) => format!("{}#s{sub}", t.file_name()),
        None => format!("key_{key}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genreq::RequestGenerator;
    use crate::session_array::SessionArrayHost;

    #[test]
    fn builtin_table_is_total_and_in_range() {
        for i in 0..FEATURE_COMBOS {
            let f = ParserFeatures::from_index(i);
            assert_eq!(f.index(), i, "index round-trips");
            let s = SubkeyTable::BUILTIN.subkey(&f);
            assert!(s < SUBKEY_SPACE);
        }
    }

    #[test]
    fn composite_keys_split_back() {
        let t = &SubkeyTable::BUILTIN;
        for ty in RequestType::ALL {
            for i in 0..FEATURE_COMBOS {
                let f = ParserFeatures::from_index(i);
                let key = t.composite_key(ty, &f);
                let (tid, sub) = split_key(key);
                assert_eq!(tid, ty.id());
                assert_eq!(sub, t.subkey(&f));
            }
        }
        assert_eq!(key_label(RequestType::Login.id() * SUBKEY_SPACE + 3), {
            format!("{}#s3", RequestType::Login.file_name())
        });
        assert_eq!(key_label(14 * SUBKEY_SPACE), "key_112");
    }

    #[test]
    fn corpus_spreads_over_multiple_subkeys() {
        // The generated corpus must actually exercise the split: a
        // table that maps everything to one sub-key would be a no-op.
        let mut sessions = SessionArrayHost::new(4096, 7);
        let corpus = RequestGenerator::new(1024, 11).mixed(512, &mut sessions);
        let mut seen = std::collections::BTreeSet::new();
        for r in &corpus {
            let req = rhythm_http::HttpRequest::parse(&r.raw).expect("generated parses");
            let f = ParserFeatures::of(&req);
            seen.insert(SubkeyTable::BUILTIN.composite_key(r.ty, &f));
        }
        let types: std::collections::BTreeSet<u32> = seen.iter().map(|k| split_key(*k).0).collect();
        assert!(
            seen.len() > types.len(),
            "sub-keys must split at least one type: {} keys over {} types",
            seen.len(),
            types.len()
        );
    }
}
