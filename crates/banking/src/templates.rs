//! Page specifications: the single source of truth for the 14 Banking
//! pages.
//!
//! Each request type is described by a [`PageSpec`]: the backend commands
//! its process stages issue, and an ordered list of [`Action`]s that emit
//! the HTML response. Two interpreters consume the same spec:
//!
//! * `crate::native` executes it directly in Rust against the
//!   [`crate::backend::BankStore`] (the paper's standalone C version), and
//! * `crate::kernels` compiles it to IR for the SIMT engine (the paper's
//!   C+CUDA version).
//!
//! Differential tests assert the two agree modulo warp-alignment padding.
//!
//! Conventions shared by both interpreters:
//!
//! * response lines use bare `\n` so that alignment padding is always
//!   line-trailing (the paper pads "after newline characters");
//! * every dynamic fragment emits `value ⧺ padding ⧺ '\n'`, where the
//!   padding is computed by a warp max-reduction on the device and is
//!   empty on the scalar/native path;
//! * the `Content-Length` value is a reserved run of
//!   [`rhythm_http::RESERVED_CONTENT_LENGTH`] spaces, backpatched after
//!   body generation.

use crate::backend::BackendCmd;
use crate::types::RequestType;

/// Where a backend request argument comes from.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ArgSrc {
    /// Request parameter `p<index>` from the parsed request struct.
    Param(u8),
}

/// One backend access performed by a process stage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BackendAccess {
    /// The command to issue.
    pub cmd: BackendCmd,
    /// Arguments appended to the request line.
    pub args: Vec<ArgSrc>,
}

/// A response-emission action. "Padded" actions emit
/// `value ⧺ warp-padding ⧺ '\n'`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Literal HTML (may span many lines).
    Static(String),
    /// Request parameter `p<index>` as decimal.
    PaddedParam(u8),
    /// Request parameter `p<index>` in cents, rendered `dollars.cc`.
    PaddedParamMoney(u8),
    /// The session token as decimal (used in page footers).
    PaddedToken,
    /// Field `field` of backend response `req`, copied verbatim.
    PaddedField {
        /// Backend access index (0-based).
        req: u8,
        /// Pipe-separated field index (0-based).
        field: u8,
    },
    /// Field `field` of backend response `req` (cents) as `dollars.cc`.
    PaddedMoney {
        /// Backend access index.
        req: u8,
        /// Field index.
        field: u8,
    },
    /// Repeat `body` once per row; the row count is field 0 of backend
    /// response `req`, and row `r`'s field `offset` is the flat field
    /// `1 + r * stride + offset`.
    Rows {
        /// Backend access index.
        req: u8,
        /// Fields per row.
        stride: u8,
        /// Actions per row.
        body: Vec<RowAction>,
    },
}

/// Actions allowed inside a [`Action::Rows`] body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RowAction {
    /// Literal HTML.
    Static(String),
    /// Row field `offset`, copied verbatim + padded + `'\n'`.
    PaddedRowField(u8),
    /// Row field `offset` (cents) as money + padded + `'\n'`.
    PaddedRowMoney(u8),
    /// The 1-based row number as decimal + padded + `'\n'`.
    PaddedRowIndex,
}

/// Complete description of one Banking page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PageSpec {
    /// The request type this page serves.
    pub ty: RequestType,
    /// Backend accesses, one per backend stage (may be empty).
    pub backend: Vec<BackendAccess>,
    /// Body-emission actions.
    pub actions: Vec<Action>,
    /// Login creates a session and emits a `Set-Cookie` header.
    pub creates_session: bool,
    /// Logout destroys the request's session.
    pub destroys_session: bool,
}

/// The cookie name carrying the session token.
pub const SESSION_COOKIE: &str = "SID";

/// Response header prefix shared by every page (bare-LF framing; see
/// module docs). After this prefix come, in order: the optional
/// `Set-Cookie: SID=<token><pad>\n`, then
/// `Content-Length: <10 spaces>\n`, a blank line, and the body.
pub const HEADER_PREFIX: &str = "HTTP/1.1 200 OK\nServer: Rhythm/0.1\nContent-Type: text/html\n";

/// The 403 page sent when session validation fails (uniform across types
/// so the error path is short and rarely-divergent, paper §4.4).
pub const FORBIDDEN: &str =
    "HTTP/1.1 403 Forbidden\nServer: Rhythm/0.1\nContent-Type: text/html\nContent-Length: 35\n\n<html><body>Forbidden</body></html>";

impl PageSpec {
    /// Process-stage count (= backend accesses + 1).
    pub fn stages(&self) -> u32 {
        self.backend.len() as u32 + 1
    }

    /// Estimated static bytes emitted by the actions (used for sizing).
    pub fn static_bytes(&self) -> usize {
        self.actions
            .iter()
            .map(|a| match a {
                Action::Static(s) => s.len(),
                Action::Rows { body, .. } => {
                    // estimate four rows
                    4 * body
                        .iter()
                        .map(|r| match r {
                            RowAction::Static(s) => s.len(),
                            _ => 12,
                        })
                        .sum::<usize>()
                }
                _ => 12,
            })
            .sum()
    }
}

/// Deterministic HTML filler: realistic-looking static markup of
/// approximately `bytes` bytes (within one line), tagged with the page
/// name so every page's template is distinct.
pub fn html_filler(tag: &str, bytes: usize) -> String {
    const SNIPPETS: [&str; 6] = [
        "<div class=\"row\"><span class=\"lbl\">Branch hours</span><span class=\"val\">Mon-Fri 9am-5pm</span></div>\n",
        "<div class=\"row\"><span class=\"lbl\">Routing number</span><span class=\"val\">021000021</span></div>\n",
        "<p class=\"fine\">Member FDIC. Equal Housing Lender. Rates subject to change without notice.</p>\n",
        "<li><a href=\"/bank/account_summary.php\">Accounts</a> <a href=\"/bank/bill_pay.php\">Bill Pay</a></li>\n",
        "<tr><td class=\"pad\">&nbsp;</td><td class=\"pad\">&nbsp;</td><td class=\"pad\">&nbsp;</td></tr>\n",
        ".w{width:100%;margin:0 auto;padding:4px 8px;border:1px solid #ccd}\n",
    ];
    let mut out = String::with_capacity(bytes + 128);
    out.push_str(&format!("<!-- {tag} -->\n"));
    let mut i = 0usize;
    while out.len() < bytes {
        out.push_str(SNIPPETS[i % SNIPPETS.len()]);
        if i.is_multiple_of(7) {
            out.push_str(&format!("<!-- section {tag}/{i} -->\n"));
        }
        i += 1;
    }
    out.truncate(bytes.max(out.find('\n').map_or(0, |p| p + 1)));
    // Never truncate mid-line ambiguity: end on a newline.
    if !out.ends_with('\n') {
        if let Some(p) = out.rfind('\n') {
            out.truncate(p + 1);
        }
    }
    out
}

fn head(ty: RequestType, title: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html>\n<head><title>Rhythm Bank - {title}</title></head>\n<body>\n<h1>{title}</h1>\n<!-- page {} -->\n",
        ty.file_name()
    )
}

const TAIL: &str = "<hr>\n<p>Thank you for banking with Rhythm Bank.</p>\n</body>\n</html>\n";

/// Build the [`PageSpec`] for a request type, with static filler sized so
/// the body lands near the paper's SPECWeb response size (Table 2).
pub fn page_spec(ty: RequestType) -> PageSpec {
    use Action as A;
    use RowAction as R;

    let access = |cmd: BackendCmd, args: Vec<ArgSrc>| BackendAccess { cmd, args };

    let (backend, mut actions, creates, destroys): (Vec<BackendAccess>, Vec<Action>, bool, bool) =
        match ty {
            RequestType::Login => (
                vec![
                    access(BackendCmd::Auth, vec![]),
                    access(BackendCmd::Accounts, vec![]),
                ],
                vec![
                    A::Static(head(ty, "Welcome")),
                    A::Static("<p>Signed in as customer #\n".into()),
                    A::PaddedParam(0),
                    A::Static("</p>\n<table class=\"accounts\">\n<tr><th>#</th><th>Balance</th></tr>\n".into()),
                    A::Rows {
                        req: 1,
                        stride: 1,
                        body: vec![
                            R::Static("<tr><td>acct\n".into()),
                            R::PaddedRowIndex,
                            R::Static("</td><td>$\n".into()),
                            R::PaddedRowMoney(0),
                            R::Static("</td></tr>\n".into()),
                        ],
                    },
                    A::Static("</table>\n".into()),
                ],
                true,
                false,
            ),
            RequestType::AccountSummary => (
                vec![access(BackendCmd::Accounts, vec![])],
                vec![
                    A::Static(head(ty, "Account Summary")),
                    A::Static("<table class=\"accounts\">\n<tr><th>Account</th><th>Balance</th></tr>\n".into()),
                    A::Rows {
                        req: 0,
                        stride: 1,
                        body: vec![
                            R::Static("<tr><td>account\n".into()),
                            R::PaddedRowIndex,
                            R::Static("</td><td>$\n".into()),
                            R::PaddedRowMoney(0),
                            R::Static("</td></tr>\n".into()),
                        ],
                    },
                    A::Static("</table>\n<p>Balances as of close of business.</p>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::AddPayee => (
                vec![],
                vec![
                    A::Static(head(ty, "Add Payee")),
                    A::Static("<form action=\"post_payee.php\" method=\"post\">\n<p>Customer\n".into()),
                    A::PaddedParam(0),
                    A::Static("</p>\n<input name=\"payee\"><input name=\"account\"><input type=\"submit\">\n</form>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::BillPay => (
                vec![access(BackendCmd::Pay, vec![ArgSrc::Param(1)])],
                vec![
                    A::Static(head(ty, "Bill Payment")),
                    A::Static("<p>Payment of $\n".into()),
                    A::PaddedParamMoney(1),
                    A::Static("scheduled.</p>\n<p>Confirmation\n".into()),
                    A::PaddedField { req: 0, field: 1 },
                    A::Static("</p>\n<p>New balance $\n".into()),
                    A::PaddedMoney { req: 0, field: 2 },
                    A::Static("</p>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::BillPayStatusOutput => (
                vec![access(BackendCmd::History, vec![])],
                vec![
                    A::Static(head(ty, "Bill Pay Status")),
                    A::Static("<table class=\"history\">\n<tr><th>#</th><th>Amount</th><th>Payee</th></tr>\n".into()),
                    A::Rows {
                        req: 0,
                        stride: 2,
                        body: vec![
                            R::Static("<tr><td>\n".into()),
                            R::PaddedRowIndex,
                            R::Static("</td><td>$\n".into()),
                            R::PaddedRowMoney(0),
                            R::Static("</td><td>\n".into()),
                            R::PaddedRowField(1),
                            R::Static("</td></tr>\n".into()),
                        ],
                    },
                    A::Static("</table>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::ChangeProfile => (
                vec![access(BackendCmd::Profile, vec![])],
                vec![
                    A::Static(head(ty, "Change Profile")),
                    A::Static("<form method=\"post\">\n<p>Name\n".into()),
                    A::PaddedField { req: 0, field: 0 },
                    A::Static("</p>\n<p>Address\n".into()),
                    A::PaddedField { req: 0, field: 1 },
                    A::Static("</p>\n<p>Email\n".into()),
                    A::PaddedField { req: 0, field: 2 },
                    A::Static("</p>\n<p>Phone\n".into()),
                    A::PaddedField { req: 0, field: 3 },
                    A::Static("</p>\n<input type=\"submit\" value=\"Save\">\n</form>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::CheckDetailHtml => (
                vec![access(BackendCmd::History, vec![])],
                vec![
                    A::Static(head(ty, "Check Detail")),
                    A::Static("<p>Check number\n".into()),
                    A::PaddedParam(1),
                    A::Static("</p>\n<p>Amount $\n".into()),
                    A::PaddedMoney { req: 0, field: 1 },
                    A::Static("</p>\n<p>Paid to\n".into()),
                    A::PaddedField { req: 0, field: 2 },
                    A::Static("</p>\n<img src=\"check_detail_image.php\" alt=\"check\">\n".into()),
                ],
                false,
                false,
            ),
            RequestType::OrderCheck => (
                vec![access(BackendCmd::Accounts, vec![])],
                vec![
                    A::Static(head(ty, "Order Checks")),
                    A::Static("<form action=\"place_check_order.php\" method=\"post\">\n<table>\n".into()),
                    A::Rows {
                        req: 0,
                        stride: 1,
                        body: vec![
                            R::Static("<tr><td>from account\n".into()),
                            R::PaddedRowIndex,
                            R::Static("</td><td>$\n".into()),
                            R::PaddedRowMoney(0),
                            R::Static("</td></tr>\n".into()),
                        ],
                    },
                    A::Static("</table>\n<input name=\"qty\" value=\"1\"><input type=\"submit\">\n</form>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::PlaceCheckOrder => (
                vec![access(BackendCmd::Order, vec![ArgSrc::Param(1)])],
                vec![
                    A::Static(head(ty, "Check Order Placed")),
                    A::Static("<p>Quantity\n".into()),
                    A::PaddedParam(1),
                    A::Static("</p>\n<p>Order number\n".into()),
                    A::PaddedField { req: 0, field: 1 },
                    A::Static("</p>\n<p>Fee $\n".into()),
                    A::PaddedMoney { req: 0, field: 2 },
                    A::Static("</p>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::PostPayee => (
                vec![access(BackendCmd::Profile, vec![])],
                vec![
                    A::Static(head(ty, "Payee Added")),
                    A::Static("<p>Payee id\n".into()),
                    A::PaddedParam(1),
                    A::Static("added for\n".into()),
                    A::PaddedField { req: 0, field: 0 },
                    A::Static("</p>\n<p>Notification sent to\n".into()),
                    A::PaddedField { req: 0, field: 2 },
                    A::Static("</p>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::PostTransfer => (
                vec![access(BackendCmd::Pay, vec![ArgSrc::Param(1)])],
                vec![
                    A::Static(head(ty, "Transfer Complete")),
                    A::Static("<p>Transferred $\n".into()),
                    A::PaddedParamMoney(1),
                    A::Static("</p>\n<p>Confirmation\n".into()),
                    A::PaddedField { req: 0, field: 1 },
                    A::Static("</p>\n<p>New balance $\n".into()),
                    A::PaddedMoney { req: 0, field: 2 },
                    A::Static("</p>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::Profile => (
                vec![access(BackendCmd::Profile, vec![])],
                vec![
                    A::Static(head(ty, "Your Profile")),
                    A::Static("<dl>\n<dt>Name</dt><dd>\n".into()),
                    A::PaddedField { req: 0, field: 0 },
                    A::Static("</dd>\n<dt>Address</dt><dd>\n".into()),
                    A::PaddedField { req: 0, field: 1 },
                    A::Static("</dd>\n<dt>Email</dt><dd>\n".into()),
                    A::PaddedField { req: 0, field: 2 },
                    A::Static("</dd>\n<dt>Phone</dt><dd>\n".into()),
                    A::PaddedField { req: 0, field: 3 },
                    A::Static("</dd>\n</dl>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::Transfer => (
                vec![access(BackendCmd::Accounts, vec![])],
                vec![
                    A::Static(head(ty, "Transfer Funds")),
                    A::Static("<form action=\"post_transfer.php\" method=\"post\">\n<table>\n".into()),
                    A::Rows {
                        req: 0,
                        stride: 1,
                        body: vec![
                            R::Static("<tr><td>account\n".into()),
                            R::PaddedRowIndex,
                            R::Static("</td><td>$\n".into()),
                            R::PaddedRowMoney(0),
                            R::Static("</td></tr>\n".into()),
                        ],
                    },
                    A::Static("</table>\n<input name=\"amount\"><input type=\"submit\">\n</form>\n".into()),
                ],
                false,
                false,
            ),
            RequestType::Logout => (
                vec![],
                vec![
                    A::Static(head(ty, "Signed Out")),
                    A::Static("<p>Customer\n".into()),
                    A::PaddedParam(0),
                    A::Static("has been signed out. Session\n".into()),
                    A::PaddedToken,
                    A::Static("is closed.</p>\n".into()),
                ],
                false,
                true,
            ),
        };

    // Pad with static filler so the body size approaches the paper's
    // SPECWeb response size for this type.
    let spec_so_far = PageSpec {
        ty,
        backend: backend.clone(),
        actions: actions.clone(),
        creates_session: creates,
        destroys_session: destroys,
    };
    let target = ty.target_body_bytes();
    let have = spec_so_far.static_bytes() + TAIL.len();
    if target > have + 64 {
        actions.push(A::Static(html_filler(ty.file_name(), target - have)));
    }
    actions.push(A::Static(TAIL.into()));

    PageSpec {
        ty,
        backend,
        actions,
        creates_session: creates,
        destroys_session: destroys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_build() {
        for ty in RequestType::ALL {
            let spec = page_spec(ty);
            assert_eq!(spec.ty, ty);
            assert_eq!(
                spec.backend.len() as u32,
                ty.backend_requests(),
                "{ty}: backend access count must match Table 2"
            );
            assert_eq!(spec.stages(), ty.process_stages());
        }
    }

    #[test]
    fn static_sizes_near_specweb_targets() {
        for ty in RequestType::ALL {
            let spec = page_spec(ty);
            let target = ty.target_body_bytes() as f64;
            let have = spec.static_bytes() as f64;
            assert!(
                (have - target).abs() / target < 0.10,
                "{ty}: static {have} vs target {target}"
            );
        }
    }

    #[test]
    fn only_login_creates_only_logout_destroys() {
        for ty in RequestType::ALL {
            let spec = page_spec(ty);
            assert_eq!(spec.creates_session, ty.is_login());
            assert_eq!(spec.destroys_session, ty.is_logout());
        }
    }

    #[test]
    fn filler_is_deterministic_and_sized() {
        let a = html_filler("x.php", 4000);
        let b = html_filler("x.php", 4000);
        assert_eq!(a, b);
        assert!(a.len() <= 4000);
        assert!(a.len() > 3800, "filler within ~5% under target");
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn padded_fragments_precede_newlines() {
        // Every dynamic action must be followed by content so its padding
        // is line-trailing: by construction dynamic actions always emit a
        // trailing '\n' themselves; static fragments that *precede* a
        // dynamic action must end with '\n'. Verify the convention.
        for ty in RequestType::ALL {
            let spec = page_spec(ty);
            let mut prev_static_ends_nl = true;
            for a in &spec.actions {
                match a {
                    Action::Static(s) => {
                        prev_static_ends_nl = s.ends_with('\n');
                    }
                    _ => {
                        assert!(
                            prev_static_ends_nl,
                            "{ty}: dynamic fragment must start a fresh line"
                        );
                        prev_static_ends_nl = true;
                    }
                }
            }
        }
    }

    #[test]
    fn forbidden_page_has_correct_content_length() {
        let body_start = FORBIDDEN.find("\n\n").unwrap() + 2;
        let body_len = FORBIDDEN.len() - body_start;
        assert!(FORBIDDEN.contains(&format!("Content-Length: {body_len}\n")));
    }
}
