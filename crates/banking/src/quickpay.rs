//! The quick-pay extension: a variable number of kernel launches driven
//! by backend data.
//!
//! The paper *skips* quick pay: "Quick pay uses a variable number of
//! kernel launches based on backend data, making it difficult to
//! implement" (§5.1), and defers it to future work. This module
//! implements it: quick pay issues one payment per registered payee, so
//! a cohort needs `max(payee count)` backend rounds, with lanes whose
//! payments are finished idling (diverging) through the tail rounds —
//! exactly the straggler behaviour §3.1 anticipates.
//!
//! Kernel structure:
//!
//! * **setup** — session validation, page header + static head, issue a
//!   `Payees` backend request; the response cursor and loop state persist
//!   across launches in request-struct fields.
//! * **loop** (launched repeatedly by the host until every lane reports
//!   done) — on first entry parse the payee count; afterwards append one
//!   payment row from the resident `Pay` response and issue the next
//!   `Pay` request.
//! * **finish** — static tail, `Content-Length` backpatch.

use rhythm_simt::ir::{BinOp, Program, ProgramBuilder, UnOp};
use rhythm_simt::mem::ConstPool;

use crate::backend::{BackendCmd, BankStore};
use crate::kernels::common::{
    emit_copy_field_padded, emit_padded_money, emit_parse_field_u32, emit_session_lookup, env,
    ld_struct, st_struct, DECIMAL_SCRATCH,
};
use crate::layout::{F_BREQ_LEN, F_P2, F_P3, F_RESP_LEN, F_STATUS, F_TOKEN, F_USERID};
use crate::session_array::SessionArrayHost;
use crate::templates::{FORBIDDEN, HEADER_PREFIX};

/// Sentinel in `F_P2` meaning "payee count not yet known".
const REMAINING_UNKNOWN: u32 = u32::MAX;

/// Response-buffer slot for quick-pay pages.
pub const QUICKPAY_RESP_BYTES: u32 = 8 * 1024;

/// Static fragments of the quick-pay page.
const HEAD: &str = "<!DOCTYPE html>\n<html>\n<head><title>Rhythm Bank - Quick Pay</title></head>\n<body>\n<h1>Quick Pay</h1>\n<!-- page quick_pay.php -->\n<p>Paying all registered payees.</p>\n";
const ROW_PRE: &str = "<p>Payment confirmation\n";
const ROW_MID: &str = "</p>\n<p>Remaining balance $\n";
const ROW_POST: &str = "</p>\n";
const TAIL: &str = "<p>Quick pay complete.</p>\n</body>\n</html>\n";

/// The compiled quick-pay kernels.
#[derive(Clone, Debug)]
pub struct QuickPay {
    /// Setup stage.
    pub setup: Program,
    /// Repeated loop stage.
    pub round: Program,
    /// Final stage.
    pub finish: Program,
}

impl QuickPay {
    /// Compile the three kernels against the workload's constant pool.
    pub fn build(pool: &mut ConstPool) -> QuickPay {
        QuickPay {
            setup: build_setup(pool),
            round: build_round(pool),
            finish: build_finish(pool),
        }
    }
}

/// Byte offset of the Content-Length digits within the (fully static)
/// quick-pay header.
fn clen_pos() -> u32 {
    (HEADER_PREFIX.len() + "Content-Length: ".len()) as u32
}

/// Byte offset where the body starts.
fn body_start() -> u32 {
    clen_pos() + 10 + 2 // reserved digits + "\n\n"
}

fn emit_pay_breq(b: &mut ProgramBuilder, e: &crate::kernels::common::Env) {
    let cur = e.breq.cursor(b);
    let cmd = b.imm(BackendCmd::Pay.id());
    b.write_decimal(&cur, cmd, DECIMAL_SCRATCH);
    let pipe = b.imm(b'|' as u32);
    b.cursor_write_byte(&cur, pipe);
    let userid = ld_struct(b, e, F_USERID);
    b.write_decimal(&cur, userid, DECIMAL_SCRATCH);
    let nl = b.imm(b'\n' as u32);
    b.cursor_write_byte(&cur, nl);
    let nul = b.imm(0);
    b.cursor_write_byte(&cur, nul);
    st_struct(b, e, F_BREQ_LEN, cur.pos);
}

fn build_setup(pool: &mut ConstPool) -> Program {
    let (h_off, h_len) = pool.intern_str(HEADER_PREFIX);
    let (cl_off, cl_len) = pool.intern_str("Content-Length: ");
    let (bl_off, bl_len) = pool.intern_str("          ");
    let (head_off, head_len) = pool.intern_str(HEAD);

    let mut b = ProgramBuilder::new("quick_pay_setup");
    let e = env(&mut b);
    let token = ld_struct(&mut b, &e, F_TOKEN);
    emit_session_lookup(&mut b, &e, token);

    // Header + head (written regardless; forbidden lanes overwrite at
    // finish).
    let cur = e.resp.cursor(&mut b);
    b.write_const_str(&cur, h_off, h_len);
    b.write_const_str(&cur, cl_off, cl_len);
    b.write_const_str(&cur, bl_off, bl_len);
    let nl = b.imm(b'\n' as u32);
    b.cursor_write_byte(&cur, nl);
    b.cursor_write_byte(&cur, nl);
    b.write_const_str(&cur, head_off, head_len);

    st_struct(&mut b, &e, F_P3, cur.pos);
    let unknown = b.imm(REMAINING_UNKNOWN);
    st_struct(&mut b, &e, F_P2, unknown);

    // First backend access: the payee list.
    let cur2 = e.breq.cursor(&mut b);
    let cmd = b.imm(BackendCmd::Payees.id());
    b.write_decimal(&cur2, cmd, DECIMAL_SCRATCH);
    let pipe = b.imm(b'|' as u32);
    b.cursor_write_byte(&cur2, pipe);
    let userid = ld_struct(&mut b, &e, F_USERID);
    b.write_decimal(&cur2, userid, DECIMAL_SCRATCH);
    b.cursor_write_byte(&cur2, nl);
    let nul = b.imm(0);
    b.cursor_write_byte(&cur2, nul);
    st_struct(&mut b, &e, F_BREQ_LEN, cur2.pos);
    b.halt();
    b.build().expect("quick-pay setup assembles")
}

fn build_round(pool: &mut ConstPool) -> Program {
    let (pre_off, pre_len) = pool.intern_str(ROW_PRE);
    let (mid_off, mid_len) = pool.intern_str(ROW_MID);
    let (post_off, post_len) = pool.intern_str(ROW_POST);

    let mut b = ProgramBuilder::new("quick_pay_round");
    let e = env(&mut b);
    let status = ld_struct(&mut b, &e, F_STATUS);
    let ok = b.un(UnOp::IsZero, status);
    let e2 = e;
    b.if_then(ok, move |b| {
        let remaining = ld_struct(b, &e2, F_P2);
        let unknown = b.imm(REMAINING_UNKNOWN);
        let first = b.bin(BinOp::Eq, remaining, unknown);
        b.if_then_else(
            first,
            |b| {
                // The resident backend response is the payee list; its
                // field 0 is the count of payments to make.
                let zero = b.imm(0);
                let count = emit_parse_field_u32(b, &e2.bresp, zero);
                st_struct(b, &e2, F_P2, count);
                let has_work = b.bin(BinOp::GtU, count, zero);
                b.if_then(has_work, |b| {
                    emit_pay_breq(b, &e2);
                });
            },
            |b| {
                let zero = b.imm(0);
                let active = b.bin(BinOp::GtU, remaining, zero);
                b.if_then(active, |b| {
                    // Resident response: "OK|<confirmation>|<balance>".
                    // Resume the page cursor and append one payment row.
                    let pos = ld_struct(b, &e2, F_P3);
                    let cur = rhythm_simt::ir::BufCursor {
                        base: e2.resp.base,
                        pos,
                        elem_stride: e2.resp.es,
                        lane_term: e2.resp.lane_term,
                    };
                    b.write_const_str(&cur, pre_off, pre_len);
                    let one_f = b.imm(1);
                    emit_copy_field_padded(b, &e2.bresp, one_f, &cur, true);
                    b.write_const_str(&cur, mid_off, mid_len);
                    let two_f = b.imm(2);
                    let cents = emit_parse_field_u32(b, &e2.bresp, two_f);
                    emit_padded_money(b, &cur, cents, true);
                    b.write_const_str(&cur, post_off, post_len);
                    st_struct(b, &e2, F_P3, cur.pos);

                    let one = b.imm(1);
                    let rem = b.bin(BinOp::Sub, remaining, one);
                    st_struct(b, &e2, F_P2, rem);
                    let zero2 = b.imm(0);
                    let more = b.bin(BinOp::GtU, rem, zero2);
                    b.if_then(more, |b| {
                        emit_pay_breq(b, &e2);
                    });
                });
            },
        );
    });
    b.halt();
    b.build().expect("quick-pay round assembles")
}

fn build_finish(pool: &mut ConstPool) -> Program {
    let (tail_off, tail_len) = pool.intern_str(TAIL);
    let (forb_off, forb_len) = pool.intern_str(FORBIDDEN);

    let mut b = ProgramBuilder::new("quick_pay_finish");
    let e = env(&mut b);
    let status = ld_struct(&mut b, &e, F_STATUS);
    let ok = b.un(UnOp::IsZero, status);
    let e2 = e;
    b.if_then_else(
        ok,
        move |b| {
            let pos = ld_struct(b, &e2, F_P3);
            let cur = rhythm_simt::ir::BufCursor {
                base: e2.resp.base,
                pos,
                elem_stride: e2.resp.es,
                lane_term: e2.resp.lane_term,
            };
            b.write_const_str(&cur, tail_off, tail_len);
            // Content-Length backpatch at the compile-time header offset.
            let body_len_start = b.imm(body_start());
            let body_len = b.bin(BinOp::Sub, cur.pos, body_len_start);
            let clen = b.imm(clen_pos());
            let patch = rhythm_simt::ir::BufCursor {
                base: e2.resp.base,
                pos: clen,
                elem_stride: e2.resp.es,
                lane_term: e2.resp.lane_term,
            };
            b.write_decimal(&patch, body_len, DECIMAL_SCRATCH);
            st_struct(b, &e2, F_RESP_LEN, cur.pos);
        },
        move |b| {
            let cur = e2.resp.cursor(b);
            b.write_const_str(&cur, forb_off, forb_len);
            let l = b.imm(forb_len);
            st_struct(b, &e2, F_RESP_LEN, l);
        },
    );
    b.halt();
    b.build().expect("quick-pay finish assembles")
}

/// Native reference implementation (one request).
pub fn handle_quickpay_native(
    token: u32,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
) -> Vec<u8> {
    let Some(userid) = sessions.lookup(token) else {
        return FORBIDDEN.as_bytes().to_vec();
    };
    let payees = store.respond(BackendCmd::Payees, userid, &[]);
    let count: usize = payees.split('|').next().unwrap_or("0").parse().unwrap_or(0);

    let mut out = Vec::with_capacity(QUICKPAY_RESP_BYTES as usize);
    out.extend_from_slice(HEADER_PREFIX.as_bytes());
    out.extend_from_slice(b"Content-Length: ");
    let clen = out.len();
    out.extend_from_slice(b"          \n\n");
    let body = out.len();
    out.extend_from_slice(HEAD.as_bytes());
    for _ in 0..count {
        let pay = store.respond(BackendCmd::Pay, userid, &[]);
        let conf = crate::native::field_of(&pay, 1);
        let bal: u32 = crate::native::field_of(&pay, 2).parse().unwrap_or(0);
        out.extend_from_slice(ROW_PRE.as_bytes());
        out.extend_from_slice(conf.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(ROW_MID.as_bytes());
        out.extend_from_slice(crate::native::money(bal).as_bytes());
        out.push(b'\n');
        out.extend_from_slice(ROW_POST.as_bytes());
    }
    out.extend_from_slice(TAIL.as_bytes());
    let digits = (out.len() - body).to_string();
    out[clen..clen + digits.len()].copy_from_slice(digits.as_bytes());
    out
}

/// Run a quick-pay cohort: setup, then loop-stage launches until every
/// lane is done, then finish. Returns the responses and the number of
/// loop launches (the "variable number of kernel launches").
///
/// # Errors
///
/// Propagates kernel execution faults.
///
/// # Panics
///
/// Panics on an empty cohort.
pub fn run_quickpay_cohort(
    workload: &crate::kernels::Workload,
    qp: &QuickPay,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
    tokens: &[u32],
    gpu: &rhythm_simt::gpu::Gpu,
    transposed: bool,
) -> Result<(Vec<Vec<u8>>, u32), rhythm_simt::ExecError> {
    use crate::layout::CohortLayout;
    use rhythm_simt::exec::LaunchConfig;
    use rhythm_simt::mem::DeviceMemory;

    assert!(!tokens.is_empty(), "empty quick-pay cohort");
    let cohort = tokens.len() as u32;
    let store_img = store.serialize_device();
    let layout = CohortLayout::new(
        cohort,
        QUICKPAY_RESP_BYTES,
        sessions.capacity(),
        sessions.salt(),
        store_img.len() as u32,
        transposed,
    );
    let mut mem = DeviceMemory::new(layout.total_bytes as usize);
    mem.load(layout.store_base, &store_img)?;
    mem.load(layout.session_base, &sessions.to_device_bytes())?;
    for (lane, &tok) in tokens.iter().enumerate() {
        layout.write_struct(&mut mem, lane as u32, F_TOKEN, tok)?;
    }
    let cfg = LaunchConfig {
        lanes: cohort,
        params: layout.params(),
        local_bytes: 64,
        shared_bytes: 1024,
        ..Default::default()
    };

    gpu.launch(&qp.setup, &cfg, &mut mem, &workload.pool)?;
    gpu.launch(&workload.backend, &cfg, &mut mem, &workload.pool)?;

    let mut rounds = 0u32;
    loop {
        gpu.launch(&qp.round, &cfg, &mut mem, &workload.pool)?;
        rounds += 1;
        let mut all_done = true;
        for lane in 0..cohort {
            let status = layout.read_struct(&mem, lane, F_STATUS)?;
            let remaining = layout.read_struct(&mem, lane, F_P2)?;
            if status == 0 && remaining > 0 {
                all_done = false;
                break;
            }
        }
        if all_done {
            break;
        }
        gpu.launch(&workload.backend, &cfg, &mut mem, &workload.pool)?;
        assert!(rounds < 64, "quick-pay loop failed to converge");
    }
    gpu.launch(&qp.finish, &cfg, &mut mem, &workload.pool)?;

    let mut responses = Vec::with_capacity(tokens.len());
    for lane in 0..cohort {
        let len = layout.read_struct(&mem, lane, F_RESP_LEN)?;
        let full = layout.read_lane(&mem, layout.resp_base, layout.resp_size, lane)?;
        responses.push(full[..len as usize].to_vec());
    }
    Ok((responses, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_http::padding::eq_modulo_padding;
    use rhythm_simt::gpu::{Gpu, GpuConfig};

    #[test]
    fn quickpay_kernels_build() {
        let mut pool = ConstPool::new();
        let qp = QuickPay::build(&mut pool);
        assert_eq!(qp.setup.name(), "quick_pay_setup");
        assert_eq!(qp.round.name(), "quick_pay_round");
        assert_eq!(qp.finish.name(), "quick_pay_finish");
    }

    #[test]
    fn quickpay_matches_native_with_variable_rounds() {
        let mut workload = crate::kernels::Workload::build();
        let qp = QuickPay::build(&mut workload.pool);
        let store = BankStore::generate(64, 31);
        let gpu = Gpu::new(GpuConfig::gtx_titan());

        let mut sessions = SessionArrayHost::new(256, 0x9A17);
        let mut tokens = Vec::new();
        for u in 0..32 {
            tokens.push(sessions.insert(u).unwrap());
        }

        let mut dev_sessions = sessions.clone();
        let (responses, rounds) = run_quickpay_cohort(
            &workload,
            &qp,
            &store,
            &mut dev_sessions,
            &tokens,
            &gpu,
            true,
        )
        .unwrap();

        // Rounds = max payee count + 1 (the first round only parses).
        let max_payees = (0..32)
            .map(|u| store.user(u).unwrap().payees.len() as u32)
            .max()
            .unwrap();
        assert_eq!(rounds, max_payees + 1, "variable launches follow data");

        // Mask the Content-Length digits: the kernel's padded body is
        // longer than the native body (both are self-consistent).
        let mask = |b: &[u8]| -> Vec<u8> {
            String::from_utf8_lossy(b)
                .lines()
                .map(|l| {
                    if l.starts_with("Content-Length:") {
                        "Content-Length: <masked>".to_string()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
                .into_bytes()
        };
        for (lane, &tok) in tokens.iter().enumerate() {
            let native = handle_quickpay_native(tok, &store, &mut sessions.clone());
            assert!(
                eq_modulo_padding(&mask(&responses[lane]), &mask(&native)),
                "lane {lane}\n--kernel--\n{}\n--native--\n{}",
                String::from_utf8_lossy(&responses[lane]),
                String::from_utf8_lossy(&native)
            );
        }
    }

    #[test]
    fn quickpay_bad_token_forbidden() {
        let mut workload = crate::kernels::Workload::build();
        let qp = QuickPay::build(&mut workload.pool);
        let store = BankStore::generate(8, 1);
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let mut sessions = SessionArrayHost::new(64, 0x11);
        let (responses, _) = run_quickpay_cohort(
            &workload,
            &qp,
            &store,
            &mut sessions,
            &[0xBAD_F00D],
            &gpu,
            false,
        )
        .unwrap();
        assert!(responses[0].starts_with(b"HTTP/1.1 403"));
    }
}
