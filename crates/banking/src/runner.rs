//! Single-cohort reference runner: drives one cohort through the parser,
//! process stages, and backend on the simulated device, and harvests the
//! responses and statistics.
//!
//! This is the measurement workhorse used by the differential tests and
//! the benchmark harness. The full event-driven pipeline (with cohort
//! formation, timeouts and overlapping cohorts) lives in `rhythm-core`;
//! this runner executes one already-formed cohort to completion.

use std::sync::{Arc, OnceLock};

use rhythm_obs::{s_to_us, ArgValue, Clock, NoopRecorder, Recorder};
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, LaunchResult};
use rhythm_simt::ir::MemSpace;
use rhythm_simt::mem::DeviceMemory;
use rhythm_simt::streams::execute_streams_on;
use rhythm_simt::ExecError;
use rhythm_verify::{pack_width_cached, LaunchSpec, Verifier};

use crate::backend::BankStore;
use crate::genreq::GeneratedRequest;
use crate::kernels::Workload;
use crate::layout::{CohortLayout, BREQ_BYTES, BRESP_BYTES, F_RESP_LEN};
use crate::session_array::SessionArrayHost;
use crate::types::RequestType;

/// Where backend requests are served.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BackendMode {
    /// On the host (Titan A): breq/bresp cross the modelled PCIe bus and
    /// the store answers as a host function.
    Host,
    /// On the device (Titan B/C): the backend kernel answers from the
    /// serialized store in device memory.
    Device,
}

/// Result of running one cohort to completion.
#[derive(Clone, Debug)]
pub struct CohortResult {
    /// Per-lane raw responses (header + body, trimmed to the written
    /// length).
    pub responses: Vec<Vec<u8>>,
    /// Per-kernel launch results in execution order `(name, result)`.
    pub launches: Vec<(String, LaunchResult)>,
    /// The layout used (for byte accounting).
    pub layout: CohortLayout,
    /// Device session-array state after the cohort.
    pub sessions_after: SessionArrayHost,
}

impl CohortResult {
    /// Total device kernel time across stages.
    pub fn kernel_time_s(&self) -> f64 {
        self.launches.iter().map(|(_, r)| r.time_s).sum()
    }

    /// Sum of a stat across launches.
    pub fn total_warp_instructions(&self) -> u64 {
        self.launches
            .iter()
            .map(|(_, r)| r.stats.warp_instructions)
            .sum()
    }

    /// Aggregate lane instructions across launches.
    pub fn total_lane_instructions(&self) -> u64 {
        self.launches
            .iter()
            .map(|(_, r)| r.stats.lane_instructions)
            .sum()
    }
}

/// Options for [`run_cohort`].
#[derive(Clone, Debug)]
pub struct CohortOptions {
    /// Transposed (true) or row-major buffers.
    pub transposed: bool,
    /// Backend placement.
    pub backend: BackendMode,
    /// Session array capacity (defaults to 4× cohort in [`Default`]).
    pub session_capacity: u32,
    /// Session token salt.
    pub session_salt: u32,
    /// Skip the parser kernel and load pre-parsed structs directly
    /// (used when measuring process stages in isolation).
    pub skip_parser: bool,
    /// Warp-execution worker threads for this cohort's kernel launches:
    /// `None` keeps the [`Gpu`]'s configured count; `Some(n)` overrides it
    /// (`0` = one per available core, `1` = serial). Responses and stats
    /// are bit-identical at any worker count.
    pub workers: Option<u32>,
    /// Run every kernel through the `rhythm-verify` static analyzer
    /// before launch (default **on**): programs with `Error`-severity
    /// findings are rejected with [`ExecError::Rejected`] instead of
    /// executing. Verdicts are cached per (kernel, launch shape), so the
    /// steady-state cost is one hash lookup per launch.
    pub verify: bool,
    /// Serve kernel launches from the process-wide decode-plan cache
    /// (default **on**): each kernel is flattened into its pre-decoded
    /// `ExecPlan` once per process and every later cohort launch skips
    /// decode and CFG analysis. Turn off only to measure decode cost;
    /// results are bit-identical either way.
    pub plan_cache: bool,
    /// Pack sub-warp request groups (default **on**): each kernel launch
    /// asks the `rhythm-verify` analyzer for the widest legal packing
    /// width (4 for race-free atomics-free kernels, else 1) and sets
    /// [`LaunchConfig::pack`] accordingly, so convergent cohorts execute
    /// up to four warps in fused lockstep. Legality verdicts are memoized
    /// per (kernel, launch shape). Responses and stats are bit-identical
    /// either way; this, like `workers`, only changes host simulation
    /// throughput.
    pub pack: bool,
    /// Run every kernel launch under the footprint sanitizer (default
    /// **off**): each launch carries the effect-summary engine's claimed
    /// static footprint for its (kernel, launch environment) pair, and the
    /// executor checks every global access against it, failing the launch
    /// with [`ExecError::FootprintEscape`] on the first access that
    /// escapes. This is the runtime discharge obligation for the claimed
    /// (non-exact) regions the static analysis anchors data-dependent
    /// addresses to; it is purely a checking mode and never changes
    /// results.
    pub sanitize: bool,
}

impl Default for CohortOptions {
    fn default() -> Self {
        CohortOptions {
            transposed: true,
            backend: BackendMode::Device,
            session_capacity: 4096,
            session_salt: 0x5EED_0001,
            skip_parser: false,
            workers: None,
            verify: true,
            plan_cache: true,
            pack: true,
            sanitize: false,
        }
    }
}

/// The launch config for one kernel of a cohort: `base` with the packing
/// width the analyzer endorses for this (kernel, launch environment)
/// pair — 4 for race-free atomics-free kernels, 1 otherwise or when
/// packing is disabled. The device and the executor's static plan profile
/// clamp further; widening never changes results, so this is purely a
/// host-throughput decision.
///
/// With [`CohortOptions::sanitize`] on, the config also carries the
/// kernel's inferred global footprint (anchored to the cohort layout's
/// declared regions) so the executor checks every global access against
/// it.
fn kernel_cfg(
    base: &LaunchConfig,
    opts: &CohortOptions,
    layout: &CohortLayout,
    program: &rhythm_simt::Program,
    mem: &DeviceMemory,
    pool: &rhythm_simt::mem::ConstPool,
) -> LaunchConfig {
    let mut cfg = base.clone();
    let spec = (opts.pack || opts.sanitize).then(|| LaunchSpec::from_launch(&cfg, mem, pool));
    cfg.pack = match &spec {
        Some(spec) if opts.pack => pack_width_cached(program, spec),
        _ => 1,
    };
    if opts.sanitize {
        let spec = spec.as_ref().expect("spec built when sanitize is on");
        let cached = shared_verifier().effects(program, spec, &layout.regions());
        cfg.sanitize = Some(Arc::clone(&cached.footprint));
    }
    cfg
}

/// The process-wide verifier shared by every gated cohort launch (one
/// admission cache across cohorts).
fn shared_verifier() -> Arc<Verifier> {
    static VERIFIER: OnceLock<Arc<Verifier>> = OnceLock::new();
    VERIFIER.get_or_init(|| Arc::new(Verifier::new())).clone()
}

/// Apply [`CohortOptions::workers`], [`CohortOptions::verify`], and
/// [`CohortOptions::plan_cache`] to a device handle, returning the device
/// to launch on.
fn effective_gpu<'a>(gpu: &'a Gpu, opts: &CohortOptions, slot: &'a mut Option<Gpu>) -> &'a Gpu {
    let needs_gate = opts.verify && gpu.gate().is_none();
    if opts.workers.is_none() && !needs_gate && gpu.plan_cache() == opts.plan_cache {
        return gpu;
    }
    let mut g = match opts.workers {
        None => gpu.clone(),
        Some(w) => {
            let mut fresh = Gpu::new(gpu.config().clone().with_workers(w));
            if let Some(gate) = gpu.gate() {
                fresh = fresh.with_gate(gate.clone());
            }
            fresh
        }
    };
    if needs_gate {
        g = g.with_gate(shared_verifier());
    }
    g = g.with_plan_cache(opts.plan_cache);
    slot.insert(g)
}

/// Run one uniform-type cohort through parse → process stages → response.
///
/// `sessions` provides the pre-existing sessions (it must be the same
/// array the requests' tokens were created in) and is updated to the
/// device's post-cohort state.
///
/// # Errors
///
/// Propagates kernel execution faults.
///
/// # Panics
///
/// Panics if `reqs` is empty or contains mixed request types (process
/// kernels are type-specific; the dispatcher forms uniform cohorts).
pub fn run_cohort(
    workload: &Workload,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
    reqs: &[GeneratedRequest],
    gpu: &Gpu,
    opts: &CohortOptions,
) -> Result<CohortResult, ExecError> {
    run_cohort_traced(workload, store, sessions, reqs, gpu, opts, &NoopRecorder)
}

/// [`run_cohort`] with tracing: in addition to the per-kernel and
/// per-warp wall-time spans emitted by [`Gpu::launch_traced`], the
/// cohort's kernels are laid out back-to-back on a **virtual-time**
/// `device` track using each launch's modelled latency, so the timeline
/// shows where the device time of one cohort goes (parser vs. process
/// stages vs. backend rounds). Host-served backend rounds appear as
/// instants (they spend no modelled device time).
///
/// The recorder is observational only — responses, launches, and session
/// state are bit-identical to [`run_cohort`].
///
/// # Errors
///
/// Propagates kernel execution faults.
///
/// # Panics
///
/// Same conditions as [`run_cohort`].
pub fn run_cohort_traced<R: Recorder + ?Sized>(
    workload: &Workload,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
    reqs: &[GeneratedRequest],
    gpu: &Gpu,
    opts: &CohortOptions,
    rec: &R,
) -> Result<CohortResult, ExecError> {
    assert!(!reqs.is_empty(), "empty cohort");
    let ty = reqs[0].ty;
    assert!(
        reqs.iter().all(|r| r.ty == ty),
        "mixed-type cohort passed to a type-specific process pipeline"
    );
    assert_eq!(
        sessions.capacity(),
        opts.session_capacity,
        "session array capacity must match options"
    );
    let mut gpu_slot = None;
    let gpu = effective_gpu(gpu, opts, &mut gpu_slot);

    let cohort = reqs.len() as u32;
    let store_img = store.serialize_device();
    let layout = CohortLayout::new(
        cohort,
        ty.response_buffer_bytes(),
        opts.session_capacity,
        opts.session_salt,
        store_img.len() as u32,
        opts.transposed,
    );

    let mut mem = DeviceMemory::new(layout.total_bytes as usize);
    mem.load(layout.store_base, &store_img)?;
    mem.load(layout.session_base, &sessions.to_device_bytes())?;

    let mut launches = Vec::new();
    // Virtual device-time cursor: this runner executes one cohort's
    // kernels back to back, so each launch's modelled latency extends the
    // cursor and becomes a span on the `device` track.
    let mut device_t = 0.0f64;
    macro_rules! trace_launch {
        ($name:expr, $res:expr) => {{
            if rec.enabled() {
                rec.span(
                    Clock::Virtual,
                    "device",
                    $name,
                    s_to_us(device_t),
                    s_to_us($res.time_s),
                    &[("requests", ArgValue::U64(cohort as u64))],
                );
            }
            device_t += $res.time_s;
        }};
    }
    let cfg = LaunchConfig {
        lanes: cohort,
        params: layout.params(),
        local_bytes: 64,
        shared_bytes: 1024,
        ..Default::default()
    };

    if opts.skip_parser {
        for (lane, r) in reqs.iter().enumerate() {
            let lane = lane as u32;
            layout.write_struct(&mut mem, lane, crate::layout::F_TYPE, r.ty.id())?;
            layout.write_struct(&mut mem, lane, crate::layout::F_TOKEN, r.token)?;
            for (i, &p) in r.params.iter().enumerate() {
                layout.write_struct(&mut mem, lane, crate::layout::F_P0 + i as u32, p)?;
            }
        }
    } else {
        for (lane, r) in reqs.iter().enumerate() {
            layout.write_lane(
                &mut mem,
                layout.reqbuf_base,
                crate::layout::REQBUF_BYTES,
                lane as u32,
                &r.raw,
            )?;
        }
        let pcfg = kernel_cfg(&cfg, opts, &layout, &workload.parser, &mem, &workload.pool);
        let res = gpu.launch_traced(&workload.parser, &pcfg, &mut mem, &workload.pool, rec)?;
        trace_launch!("parser", &res);
        launches.push(("parser".to_string(), res));
    }

    let stages = workload.stages_of(ty);
    let n_backend = stages.len() - 1;
    for (i, stage) in stages.iter().enumerate() {
        let scfg = kernel_cfg(&cfg, opts, &layout, stage, &mem, &workload.pool);
        let res = gpu.launch_traced(stage, &scfg, &mut mem, &workload.pool, rec)?;
        trace_launch!(stage.name(), &res);
        launches.push((stage.name().to_string(), res));
        if i < n_backend {
            match opts.backend {
                BackendMode::Device => {
                    let bcfg =
                        kernel_cfg(&cfg, opts, &layout, &workload.backend, &mem, &workload.pool);
                    let res =
                        gpu.launch_traced(&workload.backend, &bcfg, &mut mem, &workload.pool, rec)?;
                    trace_launch!("device_backend", &res);
                    launches.push(("device_backend".to_string(), res));
                }
                BackendMode::Host => {
                    if rec.enabled() {
                        rec.instant(
                            Clock::Virtual,
                            "device",
                            "host_backend",
                            s_to_us(device_t),
                            &[("requests", ArgValue::U64(cohort as u64))],
                        );
                    }
                    host_backend_step(store, &layout, &mut mem)?;
                }
            }
        }
    }

    let mut responses = Vec::with_capacity(reqs.len());
    for lane in 0..cohort {
        let len = layout.read_struct(&mem, lane, F_RESP_LEN)?;
        let full = layout.read_lane(&mem, layout.resp_base, layout.resp_size, lane)?;
        responses.push(full[..len as usize].to_vec());
    }

    let sess_bytes = mem.slice(
        layout.session_base,
        SessionArrayHost::device_bytes(opts.session_capacity),
    )?;
    let sessions_after = SessionArrayHost::from_device_bytes(sess_bytes, opts.session_salt);
    *sessions = sessions_after.clone();

    Ok(CohortResult {
        responses,
        launches,
        layout,
        sessions_after,
    })
}

/// One scheduling unit of [`plan_stream_groups`]: the half-open cohort
/// index range `[start, end)`. A `concurrent` group's cohorts are proven
/// session-independent and launch as concurrent HyperQ streams; a
/// non-concurrent group is a single cohort run serially, either because
/// it writes the session array (a barrier) or because the options force
/// the serial fallback path.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StreamGroup {
    /// First cohort index in the group.
    pub start: usize,
    /// One past the last cohort index.
    pub end: usize,
    /// Whether the group launches as concurrent streams.
    pub concurrent: bool,
}

impl StreamGroup {
    /// Number of cohorts in the group.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the group is empty (never produced by the planner).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Does any kernel in this cohort's launch sequence (parser, process
/// stages, backend) write or atomically update the device session array?
///
/// The verdict comes from the effect-summary engine: each kernel's
/// inferred global footprint — anchored to the cohort layout's declared
/// regions — is checked for mutation of the `[session_base, session_end)`
/// span under the cohort's concrete launch environment. This is the proof
/// [`run_cohorts_hyperq`] schedules from; a ⊤ footprint conservatively
/// counts as a writer.
pub fn cohort_writes_sessions(
    workload: &Workload,
    store_bytes: u32,
    ty: RequestType,
    cohort: u32,
    opts: &CohortOptions,
) -> bool {
    let layout = CohortLayout::new(
        cohort,
        ty.response_buffer_bytes(),
        opts.session_capacity,
        opts.session_salt,
        store_bytes,
        opts.transposed,
    );
    // Mirror `LaunchSpec::from_launch` for the real launch environment so
    // these queries share the verifier's effect cache with the sanitizer.
    let spec = LaunchSpec {
        lanes: cohort,
        params: Some(layout.params()),
        global_bytes: Some(layout.total_bytes as u64),
        shared_bytes: Some(1024),
        local_bytes: Some(64),
        const_bytes: Some(workload.pool.len() as u64),
    };
    let regions = layout.regions();
    let (sess_lo, sess_hi) = layout.session_span();
    let verifier = shared_verifier();
    let mut kernels: Vec<&rhythm_simt::Program> = vec![&workload.parser];
    kernels.extend(workload.stages_of(ty).iter());
    kernels.push(&workload.backend);
    let writes = kernels.iter().any(|k| {
        verifier
            .effects(k, &spec, &regions)
            .effects
            .mutates(MemSpace::Global, sess_lo, sess_hi)
    });
    // The proof must never be less safe than the name heuristic it
    // replaced: every nominal session writer must be classified as one.
    debug_assert!(
        writes || !(ty.is_login() || ty.is_logout()),
        "effect analysis missed the session writes of {ty:?}"
    );
    writes
}

/// Plan the HyperQ stream groups for a batch of uniform-type cohorts —
/// the shared source of truth for both the execution path
/// ([`run_cohorts_hyperq`]) and the serving metrics, so telemetry cannot
/// drift from the real schedule.
///
/// `cohorts` gives each cohort as `(type, size)`; `store_bytes` is the
/// serialized store image size (layout input). Cohorts proven not to
/// write the session array ([`cohort_writes_sessions`]) coalesce into
/// maximal concurrent groups; each proven writer becomes a singleton
/// barrier. Host-backend and skip-parser configurations interleave host
/// work between kernels, which streams cannot express, so every cohort
/// degrades to a singleton serial group.
pub fn plan_stream_groups(
    workload: &Workload,
    store_bytes: u32,
    cohorts: &[(RequestType, usize)],
    opts: &CohortOptions,
) -> Vec<StreamGroup> {
    let streams_ok = opts.backend == BackendMode::Device && !opts.skip_parser;
    let mut groups = Vec::new();
    let mut i = 0;
    while i < cohorts.len() {
        let (ty, n) = cohorts[i];
        if !streams_ok || cohort_writes_sessions(workload, store_bytes, ty, n as u32, opts) {
            groups.push(StreamGroup {
                start: i,
                end: i + 1,
                concurrent: false,
            });
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < cohorts.len() {
            let (t, m) = cohorts[j];
            if cohort_writes_sessions(workload, store_bytes, t, m as u32, opts) {
                break;
            }
            j += 1;
        }
        groups.push(StreamGroup {
            start: i,
            end: j,
            concurrent: true,
        });
        i = j;
    }
    groups
}

/// Run a batch of already-formed cohorts with serial semantics but
/// HyperQ-concurrent execution of independent cohorts.
///
/// The batch is processed in order, exactly as if each cohort went
/// through [`run_cohort`] back to back — same responses, same final
/// session state. The speedup comes from the effect-summary engine
/// ([`rhythm_verify::effects`]): a cohort may share a stream group with
/// its neighbours iff **none of its kernels' inferred global footprints
/// write the device session array** ([`cohort_writes_sessions`]), so
/// **consecutive proven-read-only cohorts are launched as concurrent
/// streams** through [`execute_streams_on`] (the HyperQ path), while each
/// proven session writer (in the banking workload: exactly Login and
/// Logout) runs serially as a write barrier. Results are bit-identical to
/// the serial order by construction.
///
/// Each cohort gets its own outcome slot, in input order; a faulting
/// cohort yields `Err` in its slot without perturbing the others (its
/// session writes never happened, matching [`run_cohort`]'s fault
/// behaviour).
///
/// Host-backend and skip-parser configurations interleave host work
/// between kernels, which streams cannot express; those fall back to
/// serial [`run_cohort`] per cohort.
///
/// # Panics
///
/// Per cohort, the same conditions as [`run_cohort`] (non-empty,
/// uniform-type, session capacity matching the options).
pub fn run_cohorts_hyperq(
    workload: &Workload,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
    cohorts: &[Vec<GeneratedRequest>],
    gpu: &Gpu,
    opts: &CohortOptions,
) -> Vec<Result<CohortResult, ExecError>> {
    for c in cohorts {
        assert!(!c.is_empty(), "empty cohort");
    }
    let store_img = store.serialize_device();
    let shapes: Vec<(RequestType, usize)> = cohorts.iter().map(|c| (c[0].ty, c.len())).collect();
    let groups = plan_stream_groups(workload, store_img.len() as u32, &shapes, opts);

    let mut gpu_slot = None;
    // Stream-level concurrency already fans out; warp workers would
    // oversubscribe, and `execute_streams` sets the same precedent.
    let stream_opts = CohortOptions {
        workers: Some(1),
        ..opts.clone()
    };
    let streams_gpu = effective_gpu(gpu, &stream_opts, &mut gpu_slot);

    let mut out: Vec<Option<Result<CohortResult, ExecError>>> =
        cohorts.iter().map(|_| None).collect();
    for g in groups {
        if !g.concurrent {
            // Proven session writer (or serial fallback): a barrier.
            // Runs alone, serially.
            out[g.start] = Some(run_cohort(
                workload,
                store,
                sessions,
                &cohorts[g.start],
                gpu,
                opts,
            ));
            continue;
        }

        // Proven-read-only group: every cohort sees the same session
        // snapshot (none of them writes it), so they are independent and
        // run as concurrent streams.
        let (i, j) = (g.start, g.end);
        let snapshot = sessions.to_device_bytes();
        let mut streams = Vec::with_capacity(j - i);
        // Per stream: output slot index, layout, real kernel names.
        let mut meta: Vec<(usize, CohortLayout, Vec<String>)> = Vec::with_capacity(j - i);
        for (k, reqs) in cohorts[i..j].iter().enumerate() {
            match build_cohort_stream(workload, &store_img, &snapshot, sessions, reqs, opts, k) {
                Ok((stream, layout, names)) => {
                    streams.push(stream);
                    meta.push((i + k, layout, names));
                }
                Err(e) => out[i + k] = Some(Err(e)),
            }
        }
        let results = execute_streams_on(streams_gpu, streams, 0);
        for ((idx, layout, names), result) in meta.into_iter().zip(results) {
            out[idx] = Some(result.and_then(|sr| {
                let mut responses = Vec::with_capacity(cohorts[idx].len());
                for lane in 0..layout.cohort {
                    let len = layout.read_struct(&sr.mem, lane, F_RESP_LEN)?;
                    let full =
                        layout.read_lane(&sr.mem, layout.resp_base, layout.resp_size, lane)?;
                    responses.push(full[..len as usize].to_vec());
                }
                let sess_bytes = sr.mem.slice(
                    layout.session_base,
                    SessionArrayHost::device_bytes(opts.session_capacity),
                )?;
                let sessions_after =
                    SessionArrayHost::from_device_bytes(sess_bytes, opts.session_salt);
                debug_assert_eq!(
                    sess_bytes,
                    &snapshot[..],
                    "read-only cohort mutated the session array"
                );
                let launches = names
                    .into_iter()
                    .zip(sr.launches)
                    .map(|(name, (_, r))| (name, r))
                    .collect();
                Ok(CohortResult {
                    responses,
                    launches,
                    layout,
                    sessions_after,
                })
            }));
        }
    }
    out.into_iter()
        .map(|o| o.expect("every cohort slot filled"))
        .collect()
}

/// Build one read-only cohort's execution stream: its memory image
/// (store + session snapshot + request lanes) plus the parser, stage, and
/// backend kernels in order. Returns the stream with static labels, the
/// layout for readback, and the real kernel names for reporting.
fn build_cohort_stream<'a>(
    workload: &'a Workload,
    store_img: &[u8],
    session_snapshot: &[u8],
    sessions: &SessionArrayHost,
    reqs: &[GeneratedRequest],
    opts: &CohortOptions,
    stream: usize,
) -> Result<
    (
        rhythm_simt::streams::ExecStream<'a>,
        CohortLayout,
        Vec<String>,
    ),
    ExecError,
> {
    let ty = reqs[0].ty;
    assert!(
        reqs.iter().all(|r| r.ty == ty),
        "mixed-type cohort passed to a type-specific process pipeline"
    );
    assert_eq!(
        sessions.capacity(),
        opts.session_capacity,
        "session array capacity must match options"
    );
    let cohort = reqs.len() as u32;
    let layout = CohortLayout::new(
        cohort,
        ty.response_buffer_bytes(),
        opts.session_capacity,
        opts.session_salt,
        store_img.len() as u32,
        opts.transposed,
    );
    let mut mem = DeviceMemory::new(layout.total_bytes as usize);
    mem.load(layout.store_base, store_img)?;
    mem.load(layout.session_base, session_snapshot)?;
    for (lane, r) in reqs.iter().enumerate() {
        layout.write_lane(
            &mut mem,
            layout.reqbuf_base,
            crate::layout::REQBUF_BYTES,
            lane as u32,
            &r.raw,
        )?;
    }
    let cfg = LaunchConfig {
        lanes: cohort,
        params: layout.params(),
        local_bytes: 64,
        shared_bytes: 1024,
        ..Default::default()
    };
    let mut kernels = Vec::new();
    let mut names = Vec::new();
    kernels.push((
        "parser",
        &workload.parser,
        kernel_cfg(&cfg, opts, &layout, &workload.parser, &mem, &workload.pool),
    ));
    names.push("parser".to_string());
    let stages = workload.stages_of(ty);
    let n_backend = stages.len() - 1;
    let backend_cfg = kernel_cfg(&cfg, opts, &layout, &workload.backend, &mem, &workload.pool);
    for (s, stage) in stages.iter().enumerate() {
        kernels.push((
            "stage",
            stage,
            kernel_cfg(&cfg, opts, &layout, stage, &mem, &workload.pool),
        ));
        names.push(stage.name().to_string());
        if s < n_backend {
            kernels.push(("backend", &workload.backend, backend_cfg.clone()));
            names.push("device_backend".to_string());
        }
    }
    Ok((
        rhythm_simt::streams::ExecStream {
            stream: stream as u32,
            mem,
            pool: &workload.pool,
            kernels,
        },
        layout,
        names,
    ))
}

/// Serve one backend round on the host: read each lane's request text,
/// answer from the store, and write the response text back.
fn host_backend_step(
    store: &BankStore,
    layout: &CohortLayout,
    mem: &mut DeviceMemory,
) -> Result<(), ExecError> {
    for lane in 0..layout.cohort {
        let raw = layout.read_lane(mem, layout.breq_base, BREQ_BYTES, lane)?;
        let end = raw.iter().position(|&b| b == b'\n').unwrap_or(0);
        let text = String::from_utf8_lossy(&raw[..=end.min(raw.len() - 1)]).into_owned();
        // Args are carried for wire fidelity but the store answers
        // arg-independently, matching the device KV-store semantics (see
        // the backend module docs).
        let reply = match BankStore::parse_request(&text) {
            Some((cmd, user, _args)) => {
                if store.user(user).is_some() {
                    store.respond(cmd, user, &[])
                } else {
                    "!ERR".to_string()
                }
            }
            None => "!ERR".to_string(),
        };
        let mut bytes = reply.into_bytes();
        bytes.push(b'\n');
        bytes.push(0);
        assert!(bytes.len() <= BRESP_BYTES as usize);
        layout.write_lane(mem, layout.bresp_base, BRESP_BYTES, lane, &bytes)?;
    }
    Ok(())
}

/// Result of one scalar (single-lane, CPU-model) request execution.
#[derive(Clone, Debug)]
pub struct ScalarRunResult {
    /// Aggregate scalar statistics over parser + all process stages.
    pub stats: rhythm_simt::ScalarStats,
    /// The raw response (header + body).
    pub response: Vec<u8>,
    /// Dynamic basic-block trace (parser + stages concatenated, with
    /// block ids offset per kernel so different kernels never alias),
    /// present when requested.
    pub trace: Option<Vec<u32>>,
}

/// Execute one request on the scalar executor — the paper's "standalone C
/// version" measurement path (one CPU core, no batching, backend as a
/// function call).
///
/// The request runs in a cohort-of-one layout; warp reductions degenerate
/// to identity so no alignment padding is emitted, and the output matches
/// [`crate::native::handle_native`] exactly.
///
/// # Errors
///
/// Propagates kernel execution faults.
pub fn run_request_scalar(
    workload: &Workload,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
    req: &GeneratedRequest,
    capture_trace: bool,
) -> Result<ScalarRunResult, ExecError> {
    use rhythm_simt::exec::scalar::{execute_scalar, ScalarRun};

    let store_img = store.serialize_device();
    let layout = CohortLayout::new(
        1,
        req.ty.response_buffer_bytes(),
        sessions.capacity(),
        sessions.salt(),
        store_img.len() as u32,
        false,
    );
    let mut mem = DeviceMemory::new(layout.total_bytes as usize);
    mem.load(layout.store_base, &store_img)?;
    mem.load(layout.session_base, &sessions.to_device_bytes())?;
    layout.write_lane(
        &mut mem,
        layout.reqbuf_base,
        crate::layout::REQBUF_BYTES,
        0,
        &req.raw,
    )?;

    let cfg = LaunchConfig {
        lanes: 1,
        params: layout.params(),
        local_bytes: 64,
        shared_bytes: 1024,
        ..Default::default()
    };

    let mut stats = rhythm_simt::ScalarStats::default();
    let mut trace = capture_trace.then(Vec::new);
    let mut kernel_trace: Vec<u32> = Vec::new();
    // Offset added to block ids per kernel so traces from different
    // kernels never collide when merged.
    let mut run_one = |program: &rhythm_simt::Program,
                       offset: u32,
                       mem: &mut DeviceMemory,
                       stats: &mut rhythm_simt::ScalarStats,
                       trace: &mut Option<Vec<u32>>|
     -> Result<(), ExecError> {
        kernel_trace.clear();
        let t = trace.as_mut().map(|_| &mut kernel_trace);
        let s = execute_scalar(&ScalarRun::new(program, 0), &cfg, mem, &workload.pool, t)?;
        stats.merge(&s);
        if let Some(out) = trace.as_mut() {
            out.extend(kernel_trace.iter().map(|b| b + offset));
        }
        Ok(())
    };

    run_one(&workload.parser, 0, &mut mem, &mut stats, &mut trace)?;
    let stages = workload.stages_of(req.ty);
    let n_backend = stages.len() - 1;
    for (i, stage) in stages.iter().enumerate() {
        let offset = 10_000 * (i as u32 + 1);
        run_one(stage, offset, &mut mem, &mut stats, &mut trace)?;
        if i < n_backend {
            host_backend_step(store, &layout, &mut mem)?;
        }
    }

    let len = layout.read_struct(&mem, 0, F_RESP_LEN)?;
    let full = layout.read_lane(&mem, layout.resp_base, layout.resp_size, 0)?;
    let sess_bytes = mem.slice(
        layout.session_base,
        SessionArrayHost::device_bytes(sessions.capacity()),
    )?;
    *sessions = SessionArrayHost::from_device_bytes(sess_bytes, sessions.salt());

    Ok(ScalarRunResult {
        stats,
        response: full[..len as usize].to_vec(),
        trace,
    })
}

/// Per-lane parser output: `(type_id, token, p0, p1)`.
pub type ParsedLane = (u32, u32, u32, u32);

/// Run only the parser kernel over a (possibly mixed-type) cohort;
/// returns the launch result plus the parsed `(type_id, token, p0, p1)`
/// per lane.
///
/// # Errors
///
/// Propagates kernel execution faults.
pub fn run_parser_only(
    workload: &Workload,
    reqs: &[GeneratedRequest],
    gpu: &Gpu,
    opts: &CohortOptions,
) -> Result<(LaunchResult, Vec<ParsedLane>), ExecError> {
    assert!(!reqs.is_empty(), "empty cohort");
    let mut gpu_slot = None;
    let gpu = effective_gpu(gpu, opts, &mut gpu_slot);
    let cohort = reqs.len() as u32;
    // Parser doesn't touch responses/store; use the largest response size
    // so the layout is valid for any type.
    let resp_size = RequestType::ALL
        .iter()
        .map(|t| t.response_buffer_bytes())
        .max()
        .expect("nonempty");
    let layout = CohortLayout::new(
        cohort,
        resp_size,
        opts.session_capacity,
        opts.session_salt,
        0,
        opts.transposed,
    );
    let mut mem = DeviceMemory::new(layout.total_bytes as usize);
    for (lane, r) in reqs.iter().enumerate() {
        layout.write_lane(
            &mut mem,
            layout.reqbuf_base,
            crate::layout::REQBUF_BYTES,
            lane as u32,
            &r.raw,
        )?;
    }
    let cfg = LaunchConfig {
        lanes: cohort,
        params: layout.params(),
        local_bytes: 64,
        shared_bytes: 1024,
        ..Default::default()
    };
    let cfg = kernel_cfg(&cfg, opts, &layout, &workload.parser, &mem, &workload.pool);
    let res = gpu.launch(&workload.parser, &cfg, &mut mem, &workload.pool)?;
    let mut parsed = Vec::with_capacity(reqs.len());
    for lane in 0..cohort {
        parsed.push((
            layout.read_struct(&mem, lane, crate::layout::F_TYPE)?,
            layout.read_struct(&mem, lane, crate::layout::F_TOKEN)?,
            layout.read_struct(&mem, lane, crate::layout::F_P0)?,
            layout.read_struct(&mem, lane, crate::layout::F_P1)?,
        ));
    }
    Ok((res, parsed))
}
