//! Native (CPU) request handlers: the paper's "standalone C version".
//!
//! [`handle_native`] interprets the shared [`crate::templates::PageSpec`]
//! directly in Rust, calling the [`BankStore`] as a function (paper
//! §5.3.2) and mutating the host [`SessionArrayHost`]. It produces exactly
//! the bytes the SIMT kernels produce, minus warp-alignment padding —
//! differential tests use [`rhythm_http::padding::eq_modulo_padding`].

use std::sync::OnceLock;

use rhythm_http::RESERVED_CONTENT_LENGTH;

use crate::backend::BankStore;
use crate::session_array::SessionArrayHost;
use crate::templates::{
    page_spec, Action, ArgSrc, PageSpec, RowAction, FORBIDDEN, HEADER_PREFIX, SESSION_COOKIE,
};
use crate::types::RequestType;

/// A request after parsing, in the form the process stages consume. This
/// mirrors the device request struct (see `crate::layout`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BankingRequest {
    /// Request type.
    pub ty: RequestType,
    /// Session token (`0` for login, which has no session yet).
    pub token: u32,
    /// Positional numeric parameters; `params[0]` is the user id.
    pub params: [u32; 4],
}

impl BankingRequest {
    /// Convenience constructor.
    pub fn new(ty: RequestType, token: u32, params: [u32; 4]) -> Self {
        BankingRequest { ty, token, params }
    }

    /// The user id parameter.
    pub fn userid(&self) -> u32 {
        self.params[0]
    }
}

/// Cached page specs, built once per process.
pub fn cached_spec(ty: RequestType) -> &'static PageSpec {
    static SPECS: OnceLock<Vec<PageSpec>> = OnceLock::new();
    let specs = SPECS.get_or_init(|| RequestType::ALL.iter().map(|&t| page_spec(t)).collect());
    &specs[ty.id() as usize]
}

/// Handle one request natively, returning the raw response bytes.
///
/// Session rules (shared with the kernels):
/// * **login** authenticates via the backend (`Auth`), creates a session,
///   and sets the `SID` cookie;
/// * **logout** destroys the session;
/// * every other type validates the token and answers
///   [`FORBIDDEN`] on failure.
///
/// # Example
///
/// ```
/// use rhythm_banking::backend::BankStore;
/// use rhythm_banking::native::{handle_native, BankingRequest};
/// use rhythm_banking::session_array::SessionArrayHost;
/// use rhythm_banking::types::RequestType;
///
/// let store = BankStore::generate(32, 1);
/// let mut sessions = SessionArrayHost::new(64, 0xBEEF);
/// let login = BankingRequest::new(RequestType::Login, 0, [5, 0, 0, 0]);
/// let resp = handle_native(&login, &store, &mut sessions);
/// let text = String::from_utf8(resp).unwrap();
/// assert!(text.starts_with("HTTP/1.1 200 OK"));
/// assert!(text.contains("Set-Cookie: SID="));
/// assert_eq!(sessions.len(), 1);
/// ```
pub fn handle_native(
    req: &BankingRequest,
    store: &BankStore,
    sessions: &mut SessionArrayHost,
) -> Vec<u8> {
    let spec = cached_spec(req.ty);

    // --- session validation / creation --------------------------------
    let (userid, token) = if spec.creates_session {
        // Authentication happens via the backend Auth command below; a
        // user outside the store fails there.
        if store.user(req.userid()).is_none() {
            return FORBIDDEN.as_bytes().to_vec();
        }
        let Some(token) = sessions.insert(req.userid()) else {
            return FORBIDDEN.as_bytes().to_vec();
        };
        (req.userid(), token)
    } else {
        let Some(userid) = sessions.lookup(req.token) else {
            return FORBIDDEN.as_bytes().to_vec();
        };
        (userid, req.token)
    };
    if spec.destroys_session {
        sessions.remove(token);
    }

    // --- backend stages -------------------------------------------------
    // Args are resolved for wire fidelity but the store answers
    // arg-independently (device KV-store parity; see backend docs).
    let responses: Vec<String> = spec
        .backend
        .iter()
        .map(|acc| {
            let _args: Vec<u32> = acc
                .args
                .iter()
                .map(|a| match a {
                    ArgSrc::Param(i) => req.params[*i as usize],
                })
                .collect();
            store.respond(acc.cmd, userid, &[])
        })
        .collect();

    // --- header ----------------------------------------------------------
    let mut out = Vec::with_capacity(req.ty.response_buffer_bytes() as usize);
    out.extend_from_slice(HEADER_PREFIX.as_bytes());
    if spec.creates_session {
        out.extend_from_slice(format!("Set-Cookie: {SESSION_COOKIE}={token}\n").as_bytes());
    }
    out.extend_from_slice(b"Content-Length: ");
    let clen_pos = out.len();
    out.extend_from_slice(&[b' '; RESERVED_CONTENT_LENGTH]);
    out.extend_from_slice(b"\n\n");
    let body_start = out.len();

    // --- body -------------------------------------------------------------
    for action in &spec.actions {
        emit(&mut out, action, req, token, &responses);
    }

    // --- content-length backpatch -----------------------------------------
    let body_len = out.len() - body_start;
    let digits = body_len.to_string();
    out[clen_pos..clen_pos + digits.len()].copy_from_slice(digits.as_bytes());
    out
}

fn emit(out: &mut Vec<u8>, action: &Action, req: &BankingRequest, token: u32, resps: &[String]) {
    match action {
        Action::Static(s) => out.extend_from_slice(s.as_bytes()),
        Action::PaddedParam(i) => push_line(out, &req.params[*i as usize].to_string()),
        Action::PaddedParamMoney(i) => push_line(out, &money(req.params[*i as usize])),
        Action::PaddedToken => push_line(out, &token.to_string()),
        Action::PaddedField { req: r, field } => {
            push_line(out, field_of(&resps[*r as usize], *field as usize));
        }
        Action::PaddedMoney { req: r, field } => {
            let cents: u32 = field_of(&resps[*r as usize], *field as usize)
                .parse()
                .unwrap_or(0);
            push_line(out, &money(cents));
        }
        Action::Rows {
            req: r,
            stride,
            body,
        } => {
            let resp = &resps[*r as usize];
            let count: usize = field_of(resp, 0).parse().unwrap_or(0);
            for row in 0..count {
                for ra in body {
                    match ra {
                        RowAction::Static(s) => out.extend_from_slice(s.as_bytes()),
                        RowAction::PaddedRowField(off) => {
                            let idx = 1 + row * *stride as usize + *off as usize;
                            push_line(out, field_of(resp, idx));
                        }
                        RowAction::PaddedRowMoney(off) => {
                            let idx = 1 + row * *stride as usize + *off as usize;
                            let cents: u32 = field_of(resp, idx).parse().unwrap_or(0);
                            push_line(out, &money(cents));
                        }
                        RowAction::PaddedRowIndex => {
                            push_line(out, &(row + 1).to_string());
                        }
                    }
                }
            }
        }
    }
}

/// Dynamic fragment emission: value then newline (the device adds warp
/// padding between the two; natively the padding is empty).
fn push_line(out: &mut Vec<u8>, value: &str) {
    out.extend_from_slice(value.as_bytes());
    out.push(b'\n');
}

/// `cents` rendered as `dollars.cc`.
pub fn money(cents: u32) -> String {
    format!("{}.{:02}", cents / 100, cents % 100)
}

/// `idx`-th pipe-separated field of a backend response (empty when
/// missing).
pub fn field_of(resp: &str, idx: usize) -> &str {
    resp.split('|').nth(idx).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BankStore, SessionArrayHost) {
        (
            BankStore::generate(64, 7),
            SessionArrayHost::new(256, 0xC0DE),
        )
    }

    fn parse_content_length(resp: &[u8]) -> usize {
        let text = std::str::from_utf8(resp).unwrap();
        let line = text
            .lines()
            .find(|l| l.starts_with("Content-Length:"))
            .unwrap();
        line["Content-Length:".len()..].trim().parse().unwrap()
    }

    #[test]
    fn login_then_account_summary() {
        let (store, mut sessions) = setup();
        let login = BankingRequest::new(RequestType::Login, 0, [9, 0, 0, 0]);
        let resp = handle_native(&login, &store, &mut sessions);
        let text = String::from_utf8(resp).unwrap();
        let token: u32 = text
            .lines()
            .find(|l| l.starts_with("Set-Cookie: SID="))
            .unwrap()["Set-Cookie: SID=".len()..]
            .trim()
            .parse()
            .unwrap();
        assert_eq!(sessions.lookup(token), Some(9));

        let summary = BankingRequest::new(RequestType::AccountSummary, token, [9, 0, 0, 0]);
        let resp = handle_native(&summary, &store, &mut sessions);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.contains("Account Summary"));
        // One row per account.
        let n = store.user(9).unwrap().accounts.len();
        assert_eq!(text.matches("<tr><td>account").count(), n);
    }

    #[test]
    fn content_length_matches_body() {
        let (store, mut sessions) = setup();
        let tok = sessions.insert(3).unwrap();
        for ty in RequestType::ALL {
            let tok = if ty.is_login() { 0 } else { tok };
            let req = BankingRequest::new(ty, tok, [3, 1500, 0, 0]);
            let resp = handle_native(&req, &store, &mut sessions);
            let body_start = resp.windows(2).position(|w| w == b"\n\n").unwrap() + 2;
            let body_len = resp.len() - body_start;
            assert_eq!(
                parse_content_length(&resp),
                body_len,
                "{ty}: content-length"
            );
            // logout destroyed it; re-create for the next iteration
            if ty.is_logout() {
                let t = sessions.insert(3).unwrap();
                assert_eq!(t, tok, "reinserted session reuses the freed node");
            }
        }
    }

    #[test]
    fn body_sizes_near_specweb_column() {
        let (store, mut sessions) = setup();
        for ty in RequestType::ALL {
            let tok = if ty.is_login() {
                0
            } else {
                sessions.insert(5).unwrap()
            };
            let req = BankingRequest::new(ty, tok, [5, 2000, 0, 0]);
            let resp = handle_native(&req, &store, &mut sessions);
            let body = parse_content_length(&resp) as f64;
            let target = ty.target_body_bytes() as f64;
            assert!(
                (body - target).abs() / target < 0.12,
                "{ty}: body {body} vs target {target}"
            );
            if !ty.is_logout() {
                let t = sessions.lookup(tok);
                if !ty.is_login() {
                    assert_eq!(t, Some(5));
                }
            }
            // Clean up non-login sessions (login created its own).
            sessions.remove(tok);
        }
    }

    #[test]
    fn invalid_session_forbidden() {
        let (store, mut sessions) = setup();
        let req = BankingRequest::new(RequestType::Transfer, 0xBAD, [1, 0, 0, 0]);
        let resp = handle_native(&req, &store, &mut sessions);
        assert_eq!(resp, FORBIDDEN.as_bytes());
    }

    #[test]
    fn unknown_user_login_forbidden() {
        let (store, mut sessions) = setup();
        let req = BankingRequest::new(RequestType::Login, 0, [9999, 0, 0, 0]);
        let resp = handle_native(&req, &store, &mut sessions);
        assert_eq!(resp, FORBIDDEN.as_bytes());
        assert!(sessions.is_empty());
    }

    #[test]
    fn logout_destroys_session() {
        let (store, mut sessions) = setup();
        let tok = sessions.insert(2).unwrap();
        let req = BankingRequest::new(RequestType::Logout, tok, [2, 0, 0, 0]);
        let resp = handle_native(&req, &store, &mut sessions);
        assert!(String::from_utf8(resp).unwrap().contains("Signed Out"));
        assert!(sessions.is_empty());
    }

    #[test]
    fn bill_pay_shows_confirmation_and_balance() {
        let (store, mut sessions) = setup();
        let tok = sessions.insert(4).unwrap();
        let req = BankingRequest::new(RequestType::BillPay, tok, [4, 12345, 0, 0]);
        let resp = handle_native(&req, &store, &mut sessions);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.contains("123.45"), "echoed payment amount as money");
        let expected = store.respond(crate::backend::BackendCmd::Pay, 4, &[]);
        let conf = field_of(&expected, 1);
        assert!(text.contains(conf), "backend confirmation in page");
    }

    #[test]
    fn responses_are_deterministic() {
        let (store, mut s1) = setup();
        let (_, mut s2) = setup();
        let t1 = s1.insert(6).unwrap();
        let t2 = s2.insert(6).unwrap();
        let r1 = handle_native(
            &BankingRequest::new(RequestType::Profile, t1, [6, 0, 0, 0]),
            &store,
            &mut s1,
        );
        let r2 = handle_native(
            &BankingRequest::new(RequestType::Profile, t2, [6, 0, 0, 0]),
            &store,
            &mut s2,
        );
        assert_eq!(r1, r2);
    }

    #[test]
    fn money_formatting() {
        assert_eq!(money(0), "0.00");
        assert_eq!(money(5), "0.05");
        assert_eq!(money(123456), "1234.56");
    }

    #[test]
    fn field_of_out_of_range_is_empty() {
        assert_eq!(field_of("a|b", 5), "");
        assert_eq!(field_of("a|b", 1), "b");
    }
}
