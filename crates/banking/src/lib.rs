//! # rhythm-banking
//!
//! The SPECWeb2009 Banking workload, implemented twice from one source of
//! truth — exactly as the Rhythm paper ships a standalone C version (for
//! CPUs) and a C+CUDA version (for the GPU):
//!
//! * [`templates`] defines each of the 14 request types as a
//!   [`templates::PageSpec`] — backend accesses plus HTML-emission
//!   actions;
//! * [`native`] interprets the specs directly in Rust (the CPU version,
//!   also used by the live TCP example);
//! * [`kernels`] compiles the specs to SIMT kernels (parser, per-type
//!   process stages, device backend) for `rhythm-simt`'s engine;
//! * [`backend`] is the BeSim-style bank store; [`session_array`] the
//!   device-resident session hash table; [`genreq`] the request
//!   generator; [`layout`] the cohort memory layout; and [`runner`] a
//!   reference single-cohort executor.
//!
//! Differential tests assert native and kernel outputs agree modulo
//! warp-alignment whitespace.
//!
//! ```
//! use rhythm_banking::prelude::*;
//! use rhythm_simt::gpu::{Gpu, GpuConfig};
//!
//! let workload = Workload::build();
//! let store = BankStore::generate(64, 1);
//! let mut sessions = SessionArrayHost::new(4096, 0x5EED_0001);
//! let mut generator = RequestGenerator::new(64, 2);
//! let cohort = generator.uniform(RequestType::AccountSummary, 32, &mut sessions);
//!
//! let gpu = Gpu::new(GpuConfig::gtx_titan());
//! let result = run_cohort(&workload, &store, &mut sessions, &cohort,
//!                         &gpu, &CohortOptions::default())?;
//! assert!(result.responses[0].starts_with(b"HTTP/1.1 200 OK"));
//! # Ok::<(), rhythm_simt::ExecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod genreq;
pub mod images;
pub mod kernels;
pub mod layout;
pub mod native;
pub mod quickpay;
pub mod runner;
pub mod serve;
pub mod session_array;
pub mod subkey;
pub mod templates;
pub mod types;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::backend::{BackendCmd, BankStore};
    pub use crate::genreq::{GeneratedRequest, RequestGenerator};
    pub use crate::images::{run_image_cohort, ImageStore};
    pub use crate::kernels::Workload;
    pub use crate::layout::CohortLayout;
    pub use crate::native::{handle_native, BankingRequest};
    pub use crate::quickpay::{handle_quickpay_native, run_quickpay_cohort, QuickPay};
    pub use crate::runner::{
        cohort_writes_sessions, plan_stream_groups, run_cohort, run_cohort_traced,
        run_cohorts_hyperq, run_parser_only, run_request_scalar, BackendMode, CohortOptions,
        ScalarRunResult, StreamGroup,
    };
    pub use crate::serve::{banking_request_from_http, DeviceMetrics, ScalarHandler, SimtHandler};
    pub use crate::session_array::SessionArrayHost;
    pub use crate::subkey::{ParserFeatures, SubkeyTable, SUBKEY_SPACE};
    pub use crate::types::{RequestType, TypeInfo, TABLE2};
}
