//! The SPECWeb2009 Banking request types and their paper-reported
//! characteristics (Table 2 of the Rhythm paper).
//!
//! The paper implements 14 of the 16 Banking requests (quick pay and check
//! detail images are skipped) and normalizes the mix to 100 %. We carry
//! the paper's measured columns as *reference data* so the benchmark
//! harness can print paper-vs-measured tables.

use serde::{Deserialize, Serialize};

/// One of the 14 implemented SPECWeb2009 Banking request types.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the SPECWeb request names
pub enum RequestType {
    Login,
    AccountSummary,
    AddPayee,
    BillPay,
    BillPayStatusOutput,
    ChangeProfile,
    CheckDetailHtml,
    OrderCheck,
    PlaceCheckOrder,
    PostPayee,
    PostTransfer,
    Profile,
    Transfer,
    Logout,
}

/// Paper-reported per-type characteristics (Table 2 columns).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TypeInfo {
    /// The request type this row describes.
    pub ty: RequestType,
    /// PHP file name requests of this type access.
    pub file_name: &'static str,
    /// Paper's x86 dynamic instructions per request (standalone C).
    pub paper_x86_instructions: u64,
    /// Paper's SPECWeb response size in KB.
    pub paper_specweb_kb: f64,
    /// Paper's Rhythm (power-of-two) response buffer size in KB.
    pub paper_rhythm_kb: u32,
    /// Fraction of all requests, percent (normalized to 100).
    pub mix_percent: f64,
    /// Backend accesses per request.
    pub backend_requests: u32,
}

/// Table 2 of the paper, verbatim.
pub const TABLE2: [TypeInfo; 14] = [
    TypeInfo {
        ty: RequestType::Login,
        file_name: "login.php",
        paper_x86_instructions: 132_401,
        paper_specweb_kb: 4.0,
        paper_rhythm_kb: 8,
        mix_percent: 28.17,
        backend_requests: 2,
    },
    TypeInfo {
        ty: RequestType::AccountSummary,
        file_name: "account_summary.php",
        paper_x86_instructions: 392_243,
        paper_specweb_kb: 17.0,
        paper_rhythm_kb: 32,
        mix_percent: 19.77,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::AddPayee,
        file_name: "add_payee.php",
        paper_x86_instructions: 335_605,
        paper_specweb_kb: 18.0,
        paper_rhythm_kb: 32,
        mix_percent: 1.47,
        backend_requests: 0,
    },
    TypeInfo {
        ty: RequestType::BillPay,
        file_name: "bill_pay.php",
        paper_x86_instructions: 334_105,
        paper_specweb_kb: 15.0,
        paper_rhythm_kb: 32,
        mix_percent: 18.18,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::BillPayStatusOutput,
        file_name: "bill_pay_status_output.php",
        paper_x86_instructions: 485_176,
        paper_specweb_kb: 24.0,
        paper_rhythm_kb: 32,
        mix_percent: 2.92,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::ChangeProfile,
        file_name: "change_profile.php",
        paper_x86_instructions: 560_505,
        paper_specweb_kb: 29.0,
        paper_rhythm_kb: 32,
        mix_percent: 1.60,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::CheckDetailHtml,
        file_name: "check_detail_html.php",
        paper_x86_instructions: 240_615,
        paper_specweb_kb: 11.0,
        paper_rhythm_kb: 16,
        mix_percent: 11.06,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::OrderCheck,
        file_name: "order_check.php",
        paper_x86_instructions: 433_352,
        paper_specweb_kb: 21.0,
        paper_rhythm_kb: 32,
        mix_percent: 1.60,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::PlaceCheckOrder,
        file_name: "place_check_order.php",
        paper_x86_instructions: 466_283,
        paper_specweb_kb: 25.0,
        paper_rhythm_kb: 32,
        mix_percent: 1.15,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::PostPayee,
        file_name: "post_payee.php",
        paper_x86_instructions: 638_598,
        paper_specweb_kb: 34.0,
        paper_rhythm_kb: 64,
        mix_percent: 1.05,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::PostTransfer,
        file_name: "post_transfer.php",
        paper_x86_instructions: 334_267,
        paper_specweb_kb: 16.0,
        paper_rhythm_kb: 32,
        mix_percent: 1.60,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::Profile,
        file_name: "profile.php",
        paper_x86_instructions: 590_816,
        paper_specweb_kb: 32.0,
        paper_rhythm_kb: 64,
        mix_percent: 1.15,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::Transfer,
        file_name: "transfer.php",
        paper_x86_instructions: 277_235,
        paper_specweb_kb: 13.0,
        paper_rhythm_kb: 16,
        mix_percent: 2.24,
        backend_requests: 1,
    },
    TypeInfo {
        ty: RequestType::Logout,
        file_name: "logout.php",
        paper_x86_instructions: 792_684,
        paper_specweb_kb: 46.0,
        paper_rhythm_kb: 64,
        mix_percent: 8.06,
        backend_requests: 0,
    },
];

impl RequestType {
    /// All 14 implemented types, in Table 2 order.
    pub const ALL: [RequestType; 14] = [
        RequestType::Login,
        RequestType::AccountSummary,
        RequestType::AddPayee,
        RequestType::BillPay,
        RequestType::BillPayStatusOutput,
        RequestType::ChangeProfile,
        RequestType::CheckDetailHtml,
        RequestType::OrderCheck,
        RequestType::PlaceCheckOrder,
        RequestType::PostPayee,
        RequestType::PostTransfer,
        RequestType::Profile,
        RequestType::Transfer,
        RequestType::Logout,
    ];

    /// Stable numeric id used in device request structs and cohort keys.
    pub fn id(self) -> u32 {
        Self::ALL.iter().position(|&t| t == self).expect("in ALL") as u32
    }

    /// The inverse of [`RequestType::id`].
    pub fn from_id(id: u32) -> Option<RequestType> {
        Self::ALL.get(id as usize).copied()
    }

    /// Paper Table 2 row for this type.
    pub fn info(self) -> &'static TypeInfo {
        &TABLE2[self.id() as usize]
    }

    /// PHP file name (the cohort grouping key).
    pub fn file_name(self) -> &'static str {
        self.info().file_name
    }

    /// Resolve a type from a request path's file name.
    pub fn from_file_name(name: &str) -> Option<RequestType> {
        TABLE2.iter().find(|i| i.file_name == name).map(|i| i.ty)
    }

    /// Backend accesses per request (Table 2).
    pub fn backend_requests(self) -> u32 {
        self.info().backend_requests
    }

    /// Number of process stages = backend requests + 1 (paper §3.1).
    pub fn process_stages(self) -> u32 {
        self.backend_requests() + 1
    }

    /// Target HTML body size in bytes for our generated pages (the
    /// paper's SPECWeb response size).
    pub fn target_body_bytes(self) -> usize {
        (self.info().paper_specweb_kb * 1024.0) as usize
    }

    /// Response buffer size in bytes: next power of two above the padded
    /// response. An 8 % header-plus-padding headroom reproduces the
    /// paper's Table 2 "Rhythm" column exactly for all 14 types (e.g.
    /// 15 KB content needs a 32 KB buffer while 13 KB fits in 16 KB).
    pub fn response_buffer_bytes(self) -> u32 {
        let padded = (self.target_body_bytes() as f64 * 1.08) as usize;
        rhythm_http::padding::next_pow2(padded) as u32
    }

    /// Whether the request creates a session (login) or destroys one
    /// (logout).
    pub fn is_login(self) -> bool {
        self == RequestType::Login
    }

    /// True for logout.
    pub fn is_logout(self) -> bool {
        self == RequestType::Logout
    }
}

impl std::fmt::Display for RequestType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.file_name().trim_end_matches(".php"))
    }
}

/// Weighted-harmonic-mean helper over the Table 2 mix: given a per-type
/// metric `f(type) -> value` in "per-request" units (e.g. seconds/request
/// or joules/request would use plain weighted mean; requests/second uses
/// harmonic), compute the workload-level requests-per-X as the paper does
/// (§5.3.1: "weighted harmonic mean of request efficiency").
pub fn weighted_harmonic_mean(mut rate_of: impl FnMut(RequestType) -> f64) -> f64 {
    let mut denom = 0.0;
    let mut total_w = 0.0;
    for info in &TABLE2 {
        let w = info.mix_percent / 100.0;
        total_w += w;
        denom += w / rate_of(info.ty);
    }
    total_w / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_100() {
        let sum: f64 = TABLE2.iter().map(|i| i.mix_percent).sum();
        assert!((sum - 100.0).abs() < 0.05, "mix sums to {sum}");
    }

    #[test]
    fn ids_roundtrip() {
        for ty in RequestType::ALL {
            assert_eq!(RequestType::from_id(ty.id()), Some(ty));
        }
        assert_eq!(RequestType::from_id(14), None);
    }

    #[test]
    fn file_names_resolve() {
        assert_eq!(
            RequestType::from_file_name("login.php"),
            Some(RequestType::Login)
        );
        assert_eq!(RequestType::from_file_name("nope.php"), None);
    }

    #[test]
    fn buffer_sizes_match_paper_rhythm_column() {
        for info in &TABLE2 {
            let ours = info.ty.response_buffer_bytes();
            assert_eq!(
                ours,
                info.paper_rhythm_kb * 1024,
                "{}: our buffer {} vs paper {} KB",
                info.file_name,
                ours,
                info.paper_rhythm_kb
            );
        }
    }

    #[test]
    fn process_stage_counts() {
        assert_eq!(RequestType::Login.process_stages(), 3);
        assert_eq!(RequestType::AccountSummary.process_stages(), 2);
        assert_eq!(RequestType::Logout.process_stages(), 1);
        assert_eq!(RequestType::AddPayee.process_stages(), 1);
    }

    #[test]
    fn average_response_size_near_paper() {
        // Paper: average SPECWeb response 15.5 KB, Rhythm buffer 26.4 KB
        // (weighted by mix).
        let avg_buf: f64 = TABLE2
            .iter()
            .map(|i| i.paper_rhythm_kb as f64 * i.mix_percent / 100.0)
            .sum();
        assert!(
            (avg_buf - 26.4).abs() < 1.0,
            "weighted avg buffer {avg_buf}"
        );
    }

    #[test]
    fn harmonic_mean_of_constant_is_constant() {
        let m = weighted_harmonic_mean(|_| 5.0);
        assert!((m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_short_name() {
        assert_eq!(RequestType::AccountSummary.to_string(), "account_summary");
    }
}
