//! Static image serving: image cohorts (paper §5.1).
//!
//! "We implement support for static images … The parser groups image
//! requests into an image cohort, these cohorts bypass the process stage
//! and the image responses are sent to the respective clients." Image
//! throughput is dictated by network bandwidth, not compute — which the
//! bench harness demonstrates.
//!
//! The check images live in an [`ImageStore`] (deterministic synthetic
//! JPEG-ish payloads), serialized into device global memory; the image
//! kernel copies `header ⧺ bytes` straight into the response buffer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rhythm_simt::ir::{BinOp, Program, ProgramBuilder, Width};
use rhythm_simt::mem::ConstPool;

use crate::kernels::common::{env, ld_struct, st_struct};
use crate::layout::{F_P1, F_RESP_LEN};

/// Device bytes reserved per image slot (length word + payload).
pub const IMAGE_SLOT_BYTES: u32 = 16 * 1024;
/// The request-line file name the parser classifies as an image request.
pub const IMAGE_FILE_NAME: &str = "check_image.php";
/// The type id the parser assigns to image requests (after the 14
/// dynamic types).
pub const IMAGE_TYPE_ID: u32 = 14;

/// A store of synthetic check images.
///
/// # Example
///
/// ```
/// use rhythm_banking::images::ImageStore;
///
/// let store = ImageStore::generate(16, 99);
/// let img = store.image(3).unwrap();
/// assert!(img.len() >= 2048);
/// assert_eq!(&img[..3], &[0xFF, 0xD8, 0xFF], "JPEG SOI marker");
/// ```
#[derive(Clone, Debug)]
pub struct ImageStore {
    images: Vec<Vec<u8>>,
}

impl ImageStore {
    /// Generate `count` images of 2–12 KB, deterministically.
    pub fn generate(count: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let images = (0..count)
            .map(|_| {
                let len = rng.gen_range(2048..12 * 1024);
                let mut img = Vec::with_capacity(len);
                img.extend_from_slice(&[0xFF, 0xD8, 0xFF, 0xE0]); // JPEG SOI/APP0
                while img.len() < len {
                    img.push(rng.gen());
                }
                img
            })
            .collect();
        ImageStore { images }
    }

    /// Number of images.
    pub fn len(&self) -> u32 {
        self.images.len() as u32
    }

    /// True when the store holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Borrow one image's bytes.
    pub fn image(&self, id: u32) -> Option<&[u8]> {
        self.images.get(id as usize).map(Vec::as_slice)
    }

    /// Serialize for the device: per slot, a little-endian length word
    /// followed by the payload.
    ///
    /// # Panics
    ///
    /// Panics if an image exceeds the slot.
    pub fn serialize_device(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.images.len() * IMAGE_SLOT_BYTES as usize];
        for (i, img) in self.images.iter().enumerate() {
            assert!(
                img.len() + 4 <= IMAGE_SLOT_BYTES as usize,
                "image overflows slot"
            );
            let base = i * IMAGE_SLOT_BYTES as usize;
            out[base..base + 4].copy_from_slice(&(img.len() as u32).to_le_bytes());
            out[base + 4..base + 4 + img.len()].copy_from_slice(img);
        }
        out
    }

    /// The reference (host) response for an image request, exactly what
    /// the kernel emits.
    pub fn native_response(&self, id: u32) -> Vec<u8> {
        match self.image(id) {
            Some(img) => {
                let mut out = image_header(img.len()).into_bytes();
                out.extend_from_slice(img);
                out
            }
            None => crate::templates::FORBIDDEN.as_bytes().to_vec(),
        }
    }
}

/// Response header for an image of `len` bytes (bare-LF framing like the
/// dynamic pages; the length is written directly, no backpatch needed
/// since image sizes are known up front).
pub fn image_header(len: usize) -> String {
    format!(
        "HTTP/1.1 200 OK\nServer: Rhythm/0.1\nContent-Type: image/jpeg\nContent-Length: {len}\n\n"
    )
}

/// Build the image-cohort kernel: each lane reads image id `p1` from its
/// request struct and copies header + payload into the response buffer.
/// Launch params follow the standard table; the image store sits at
/// `P_STORE_BASE` with `P_STORE_USERS` reinterpreted as the image count.
pub fn build_image_kernel(pool: &mut ConstPool) -> Program {
    // Header prefix up to the Content-Length value, and the tail.
    let (h_off, h_len) = pool.intern_str(
        "HTTP/1.1 200 OK\nServer: Rhythm/0.1\nContent-Type: image/jpeg\nContent-Length: ",
    );
    let (forb_off, forb_len) = pool.intern_str(crate::templates::FORBIDDEN);

    let mut b = ProgramBuilder::new("image_response");
    let e = env(&mut b);
    let id = ld_struct(&mut b, &e, F_P1);
    let in_range = b.bin(BinOp::LtU, id, e.store_users);
    let cur = e.resp.cursor(&mut b);
    let e2 = e;
    let cur2 = cur;
    b.if_then_else(
        in_range,
        move |b| {
            let slot = b.imm(IMAGE_SLOT_BYTES);
            let off = b.bin(BinOp::Mul, id, slot);
            let rec = b.bin(BinOp::Add, e2.store_base, off);
            let len = b.ld(Width::Word, rhythm_simt::ir::MemSpace::Global, rec, 0);

            b.write_const_str(&cur2, h_off, h_len);
            b.write_decimal(&cur2, len, super::kernels::common::DECIMAL_SCRATCH);
            let nl = b.imm(b'\n' as u32);
            b.cursor_write_byte(&cur2, nl);
            b.cursor_write_byte(&cur2, nl);

            // Copy the payload.
            let four = b.imm(4);
            let src = b.bin(BinOp::Add, rec, four);
            b.for_loop(len, |b, i| {
                let a = b.bin(BinOp::Add, src, i);
                let ch = b.ld(Width::Byte, rhythm_simt::ir::MemSpace::Global, a, 0);
                b.cursor_write_byte(&cur2, ch);
            });
            st_struct(b, &e2, F_RESP_LEN, cur2.pos);
        },
        move |b| {
            b.write_const_str(&cur2, forb_off, forb_len);
            let l = b.imm(forb_len);
            st_struct(b, &e2, F_RESP_LEN, l);
        },
    );
    b.halt();
    b.build().expect("image kernel assembles")
}

/// Raw HTTP text for an image request.
pub fn image_raw(userid: u32, image_id: u32) -> Vec<u8> {
    format!(
        "GET /bank/{IMAGE_FILE_NAME}?userid={userid}&a={image_id} HTTP/1.1\r\nHost: bank.example.com\r\nUser-Agent: SPECWeb/2009\r\n\r\n"
    )
    .into_bytes()
}

/// Run one image cohort: parse, then the bypassing image kernel — no
/// process stages, no backend (paper §5.1).
///
/// # Errors
///
/// Propagates kernel execution faults.
///
/// # Panics
///
/// Panics on an empty cohort.
pub fn run_image_cohort(
    workload: &crate::kernels::Workload,
    images: &ImageStore,
    requests: &[(u32, u32)], // (userid, image_id)
    gpu: &rhythm_simt::gpu::Gpu,
    transposed: bool,
) -> Result<ImageCohortResult, rhythm_simt::ExecError> {
    use crate::layout::{CohortLayout, F_RESP_LEN, F_TYPE, REQBUF_BYTES};
    use rhythm_simt::exec::LaunchConfig;
    use rhythm_simt::mem::DeviceMemory;

    assert!(!requests.is_empty(), "empty image cohort");
    let cohort = requests.len() as u32;
    let store_img = images.serialize_device();
    let layout = CohortLayout::new(cohort, IMAGE_SLOT_BYTES, 1, 0, 0, transposed);
    // The image store replaces the bank store; it sits after the layout's
    // regions and its base/count override the store params.
    let store_base = layout.total_bytes;
    let mut params = layout.params();
    params[crate::layout::P_STORE_BASE as usize] = store_base;
    params[crate::layout::P_STORE_USERS as usize] = images.len();

    let mut mem = DeviceMemory::new((layout.total_bytes + store_img.len() as u32) as usize);
    mem.load(store_base, &store_img)?;
    for (lane, &(userid, image_id)) in requests.iter().enumerate() {
        layout.write_lane(
            &mut mem,
            layout.reqbuf_base,
            REQBUF_BYTES,
            lane as u32,
            &image_raw(userid, image_id),
        )?;
    }

    let cfg = LaunchConfig {
        lanes: cohort,
        params,
        local_bytes: 64,
        shared_bytes: 1024,
        ..Default::default()
    };
    let parse = gpu.launch(&workload.parser, &cfg, &mut mem, &workload.pool)?;
    let image = gpu.launch(&workload.image, &cfg, &mut mem, &workload.pool)?;

    let mut responses = Vec::with_capacity(requests.len());
    let mut classified = Vec::with_capacity(requests.len());
    for lane in 0..cohort {
        classified.push(layout.read_struct(&mem, lane, F_TYPE)?);
        let len = layout.read_struct(&mem, lane, F_RESP_LEN)?;
        let full = layout.read_lane(&mem, layout.resp_base, layout.resp_size, lane)?;
        responses.push(full[..len as usize].to_vec());
    }
    Ok(ImageCohortResult {
        responses,
        classified,
        parse,
        image,
    })
}

/// Result of [`run_image_cohort`].
#[derive(Clone, Debug)]
pub struct ImageCohortResult {
    /// Per-lane raw responses.
    pub responses: Vec<Vec<u8>>,
    /// Parser-assigned type id per lane (should be [`IMAGE_TYPE_ID`]).
    pub classified: Vec<u32>,
    /// Parser launch result.
    pub parse: rhythm_simt::LaunchResult,
    /// Image-kernel launch result.
    pub image: rhythm_simt::LaunchResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_generation_deterministic() {
        let a = ImageStore::generate(8, 5);
        let b = ImageStore::generate(8, 5);
        assert_eq!(a.image(2), b.image(2));
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn serialization_layout() {
        let s = ImageStore::generate(4, 1);
        let img = s.serialize_device();
        assert_eq!(img.len(), 4 * IMAGE_SLOT_BYTES as usize);
        let len = u32::from_le_bytes(img[0..4].try_into().unwrap());
        assert_eq!(len as usize, s.image(0).unwrap().len());
        assert_eq!(&img[4..8], &s.image(0).unwrap()[..4]);
    }

    #[test]
    fn native_response_shape() {
        let s = ImageStore::generate(2, 3);
        let r = s.native_response(1);
        let text = String::from_utf8_lossy(&r[..80]);
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("image/jpeg"));
        assert!(s.native_response(99).starts_with(b"HTTP/1.1 403"));
    }

    #[test]
    fn kernel_builds() {
        let mut pool = ConstPool::new();
        let k = build_image_kernel(&mut pool);
        assert_eq!(k.name(), "image_response");
        assert!(k.static_len() > 20);
    }

    #[test]
    fn image_cohort_end_to_end() {
        use rhythm_simt::gpu::{Gpu, GpuConfig};
        let workload = crate::kernels::Workload::build();
        let images = ImageStore::generate(8, 4);
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let requests: Vec<(u32, u32)> = (0..40).map(|i| (i, i % 8)).collect();
        let result = run_image_cohort(&workload, &images, &requests, &gpu, true).unwrap();
        for (lane, &(_, id)) in requests.iter().enumerate() {
            assert_eq!(result.classified[lane], IMAGE_TYPE_ID, "lane {lane}");
            assert_eq!(
                result.responses[lane],
                images.native_response(id),
                "lane {lane}: kernel matches reference"
            );
        }
    }

    #[test]
    fn out_of_range_image_forbidden() {
        use rhythm_simt::gpu::{Gpu, GpuConfig};
        let workload = crate::kernels::Workload::build();
        let images = ImageStore::generate(2, 4);
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let result = run_image_cohort(&workload, &images, &[(1, 7)], &gpu, false).unwrap();
        assert!(result.responses[0].starts_with(b"HTTP/1.1 403"));
    }
}
