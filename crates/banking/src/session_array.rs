//! The device-resident session array (paper §4.3.1).
//!
//! Sessions live in GPU global memory as a fixed-capacity open-addressed
//! hash table. The paper's design goals, which we reproduce:
//!
//! * conflict-free cohort access: the session identifier encodes the node
//!   index, so lookup is O(1) and touches exactly one node;
//! * insertion probes linearly from `hash(userid)` and claims a node with
//!   an atomic; collision-free insertion is O(1);
//! * deletion (logout) is O(1).
//!
//! Tokens are `node_index ^ salt` — invertible, so a token names its node
//! directly. The same algorithm is implemented three times and must agree:
//! here on the host ([`SessionArrayHost`]), in the SIMT kernels
//! (`kernels::session`), and implicitly by the native handlers which use
//! this host version. Layout constants are shared with the IR builders.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bytes per session node in device memory.
pub const NODE_BYTES: u32 = 16;
/// Offset of the claim/state word within a node (0 = free, ≥1 = claimed).
pub const NODE_STATE: u32 = 0;
/// Offset of the token word.
pub const NODE_TOKEN: u32 = 4;
/// Offset of the user-id word.
pub const NODE_USER: u32 = 8;

/// Multiplicative hash used to pick the starting probe bucket; must match
/// `ProgramBuilder::hash_u32`.
pub fn hash_userid(userid: u32) -> u32 {
    let h = userid.wrapping_mul(0x9E37_79B9);
    h ^ (h >> 17)
}

/// One session node (host view).
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct Node {
    /// 0 = free; ≥1 = claimed.
    pub state: u32,
    /// Token = `index ^ salt` when active.
    pub token: u32,
    /// Owning user id.
    pub user: u32,
}

/// Host implementation of the device session array.
///
/// # Example
///
/// ```
/// use rhythm_banking::session_array::SessionArrayHost;
///
/// let mut s = SessionArrayHost::new(1024, 0xBEEF);
/// let tok = s.insert(42).expect("space available");
/// assert_eq!(s.lookup(tok), Some(42));
/// assert!(s.remove(tok));
/// assert_eq!(s.lookup(tok), None);
/// ```
#[derive(Clone, Debug)]
pub struct SessionArrayHost {
    nodes: Vec<Node>,
    salt: u32,
    live: u32,
}

impl SessionArrayHost {
    /// Create an empty array with `capacity` nodes and a token salt.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32, salt: u32) -> Self {
        assert!(capacity > 0, "session array capacity must be nonzero");
        SessionArrayHost {
            nodes: vec![Node::default(); capacity as usize],
            salt,
            live: 0,
        }
    }

    /// Capacity in nodes.
    pub fn capacity(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// The token salt (a launch parameter for the kernels).
    pub fn salt(&self) -> u32 {
        self.salt
    }

    /// Live session count.
    pub fn len(&self) -> u32 {
        self.live
    }

    /// True when no sessions are active.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Create a session for `userid`: probe linearly from
    /// `hash(userid) % capacity`, claim the first free node, and return
    /// its token. Returns `None` when the table is full.
    pub fn insert(&mut self, userid: u32) -> Option<u32> {
        let cap = self.capacity();
        let start = hash_userid(userid) % cap;
        for k in 0..cap {
            let idx = (start + k) % cap;
            let node = &mut self.nodes[idx as usize];
            if node.state == 0 {
                node.state = 1;
                node.user = userid;
                node.token = idx ^ self.salt;
                self.live += 1;
                return Some(node.token);
            }
        }
        None
    }

    /// O(1) lookup: decode the node index from the token and verify.
    pub fn lookup(&self, token: u32) -> Option<u32> {
        let idx = token ^ self.salt;
        let node = self.nodes.get(idx as usize)?;
        (node.state >= 1 && node.token == token).then_some(node.user)
    }

    /// O(1) removal (logout); returns whether the session existed.
    pub fn remove(&mut self, token: u32) -> bool {
        let idx = token ^ self.salt;
        let Some(node) = self.nodes.get_mut(idx as usize) else {
            return false;
        };
        if node.state >= 1 && node.token == token {
            *node = Node::default();
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Pre-populate with sessions for random users (paper §5.3.1:
    /// "populate the session array with random user ids"). Returns the
    /// `(token, userid)` pairs created.
    pub fn populate_random(&mut self, count: u32, num_users: u32, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let user = rng.gen_range(0..num_users);
            if let Some(tok) = self.insert(user) {
                out.push((tok, user));
            }
        }
        out
    }

    /// Serialize into the device layout (`capacity * NODE_BYTES` bytes).
    pub fn to_device_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.nodes.len() * NODE_BYTES as usize];
        for (i, n) in self.nodes.iter().enumerate() {
            let b = i * NODE_BYTES as usize;
            out[b..b + 4].copy_from_slice(&n.state.to_le_bytes());
            out[b + 4..b + 8].copy_from_slice(&n.token.to_le_bytes());
            out[b + 8..b + 12].copy_from_slice(&n.user.to_le_bytes());
        }
        out
    }

    /// Rebuild a host view from device bytes (for verifying kernel
    /// mutations).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a whole number of nodes.
    pub fn from_device_bytes(bytes: &[u8], salt: u32) -> Self {
        assert_eq!(bytes.len() % NODE_BYTES as usize, 0, "ragged node image");
        let nodes: Vec<Node> = bytes
            .chunks_exact(NODE_BYTES as usize)
            .map(|c| Node {
                state: u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                token: u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                user: u32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
            })
            .collect();
        let live = nodes.iter().filter(|n| n.state >= 1).count() as u32;
        SessionArrayHost { nodes, salt, live }
    }

    /// Device memory required for `capacity` nodes.
    pub fn device_bytes(capacity: u32) -> u32 {
        capacity * NODE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut s = SessionArrayHost::new(8, 0x1234);
        let t = s.insert(7).unwrap();
        assert_eq!(s.lookup(t), Some(7));
        assert_eq!(s.len(), 1);
        assert!(s.remove(t));
        assert!(!s.remove(t));
        assert!(s.is_empty());
    }

    #[test]
    fn colliding_userids_probe_linearly() {
        let mut s = SessionArrayHost::new(4, 0);
        // All four users hash somewhere; all four must fit.
        let toks: Vec<_> = (0..4).map(|u| s.insert(u).unwrap()).collect();
        assert_eq!(s.len(), 4);
        for (u, t) in toks.iter().enumerate() {
            assert_eq!(s.lookup(*t), Some(u as u32));
        }
        assert_eq!(s.insert(99), None, "table full");
    }

    #[test]
    fn bogus_tokens_fail_lookup() {
        let mut s = SessionArrayHost::new(8, 0xABCD);
        let t = s.insert(1).unwrap();
        assert_eq!(s.lookup(t ^ 1), None, "wrong token");
        assert_eq!(s.lookup(0xFFFF_FFFF), None, "out of range index");
    }

    #[test]
    fn device_roundtrip() {
        let mut s = SessionArrayHost::new(16, 0x5A5A);
        let pairs = s.populate_random(10, 100, 3);
        assert!(!pairs.is_empty());
        let img = s.to_device_bytes();
        assert_eq!(img.len(), 16 * NODE_BYTES as usize);
        let back = SessionArrayHost::from_device_bytes(&img, 0x5A5A);
        assert_eq!(back.len(), s.len());
        for (tok, user) in pairs {
            assert_eq!(back.lookup(tok), Some(user));
        }
    }

    #[test]
    fn populate_respects_capacity() {
        let mut s = SessionArrayHost::new(4, 0);
        let pairs = s.populate_random(100, 10, 1);
        assert_eq!(pairs.len(), 4);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn hash_matches_builder_hash() {
        // Must stay in sync with ProgramBuilder::hash_u32 (x * 0x9E3779B9,
        // xor-shift 17).
        let x = 0xDEAD_BEEFu32;
        let h = x.wrapping_mul(0x9E37_79B9);
        assert_eq!(hash_userid(x), h ^ (h >> 17));
    }
}
