//! SIMT kernels for the Banking workload: the paper's "C+CUDA version".
//!
//! [`Workload::build`] compiles, from the shared [`crate::templates`]
//! page specs:
//!
//! * the HTTP **parser** kernel,
//! * the on-device **backend** kernel (Titan B/C), and
//! * per request type, the **process stage** kernels
//!   (`backend_requests + 1` stages each, paper §3.1),
//!
//! together with the constant pool holding every HTML template fragment
//! (the paper stores static content in CUDA constant memory, §4.6).

pub mod backend;
pub mod common;
pub mod parser;
pub mod process;

use rhythm_simt::ir::Program;
use rhythm_simt::mem::ConstPool;

use crate::templates::page_spec;
use crate::types::RequestType;

pub use parser::TYPE_UNKNOWN;

/// The complete compiled workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Constant pool referenced by every kernel.
    pub pool: ConstPool,
    /// HTTP parser kernel.
    pub parser: Program,
    /// Device backend kernel.
    pub backend: Program,
    /// Static-image cohort kernel (bypasses the process stages).
    pub image: Program,
    /// Process stages per type: `stages[type_id][stage]`.
    pub stages: Vec<Vec<Program>>,
}

impl Workload {
    /// Compile every kernel. Deterministic; takes ~10 ms.
    pub fn build() -> Workload {
        Self::build_opts(true)
    }

    /// Compile with the warp-alignment padding toggled — `padded == false`
    /// is the coalescing ablation (responses stay correct, lane write
    /// pointers drift, memory transactions multiply).
    pub fn build_opts(padded: bool) -> Workload {
        let mut pool = ConstPool::new();
        let parser = parser::build_parser(&mut pool);
        let backend = backend::build_backend();
        let image = crate::images::build_image_kernel(&mut pool);
        let stages = RequestType::ALL
            .iter()
            .map(|&ty| process::build_stage_kernels_opts(&page_spec(ty), &mut pool, padded))
            .collect();
        Workload {
            pool,
            parser,
            backend,
            image,
            stages,
        }
    }

    /// Process stages for one request type.
    pub fn stages_of(&self, ty: RequestType) -> &[Program] {
        &self.stages[ty.id() as usize]
    }

    /// The final (response-generation) stage for a type.
    pub fn response_stage(&self, ty: RequestType) -> &Program {
        self.stages_of(ty).last().expect("at least one stage")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_all_kernels() {
        let w = Workload::build();
        assert_eq!(w.stages.len(), 14);
        for ty in RequestType::ALL {
            assert_eq!(
                w.stages_of(ty).len() as u32,
                ty.process_stages(),
                "{ty}: stage count"
            );
            assert!(w.response_stage(ty).static_len() > 100);
        }
        assert!(
            w.pool.len() > 100_000,
            "templates interned: {}",
            w.pool.len()
        );
    }

    #[test]
    fn kernel_names_follow_convention() {
        let w = Workload::build();
        assert_eq!(w.parser.name(), "http_parser");
        assert_eq!(w.backend.name(), "device_backend");
        assert_eq!(w.stages_of(RequestType::Login)[0].name(), "login_stage0");
        assert_eq!(
            w.response_stage(RequestType::Login).name(),
            "login_response"
        );
    }
}
