//! Compiler from [`PageSpec`] to process-stage kernels.
//!
//! A type with `n` backend accesses compiles to `n + 1` kernels:
//! stages `0..n` validate state and generate the backend request text;
//! stage `n` generates the padded HTML response. This mirrors the paper's
//! "n backend stages and n + 1 process stages" (§3.1); the backend itself
//! runs between stages (host model for Titan A, device kernel for B/C).

use rhythm_simt::ir::{BinOp, BufCursor, Program, ProgramBuilder, UnOp};
use rhythm_simt::mem::ConstPool;

use crate::layout::{F_BREQ_LEN, F_NEWTOKEN, F_P0, F_RESP_LEN, F_STATUS, F_TOKEN, F_USERID};
use crate::templates::{Action, ArgSrc, PageSpec, RowAction, FORBIDDEN, HEADER_PREFIX};

use super::common::{
    emit_copy_field_padded, emit_pad_and_newline, emit_padded_decimal, emit_padded_money,
    emit_parse_field_u32, emit_session_insert, emit_session_lookup, emit_session_remove, env,
    ld_struct, st_struct, Env, DECIMAL_SCRATCH,
};

/// Compile every process stage for a page spec.
///
/// # Panics
///
/// Panics if the spec references a backend response other than the last
/// one in a response action (only the final backend response is resident
/// when the response stage runs), or if kernel assembly fails — both are
/// programming errors in the spec.
pub fn build_stage_kernels(spec: &PageSpec, pool: &mut ConstPool) -> Vec<Program> {
    build_stage_kernels_opts(spec, pool, true)
}

/// Like [`build_stage_kernels`] with the warp-alignment padding made
/// optional — `padded == false` is the ablation configuration of
/// DESIGN.md §5.3 (correct output, drifting lane write pointers).
///
/// # Panics
///
/// As [`build_stage_kernels`].
pub fn build_stage_kernels_opts(
    spec: &PageSpec,
    pool: &mut ConstPool,
    padded: bool,
) -> Vec<Program> {
    validate_spec(spec);
    let n = spec.backend.len();
    let mut out = Vec::with_capacity(n + 1);
    for stage in 0..n {
        out.push(compile_backend_stage(spec, stage));
    }
    out.push(compile_response_stage(spec, pool, padded));
    out
}

fn validate_spec(spec: &PageSpec) {
    let last = spec.backend.len().checked_sub(1);
    for a in &spec.actions {
        let req = match a {
            Action::PaddedField { req, .. }
            | Action::PaddedMoney { req, .. }
            | Action::Rows { req, .. } => Some(*req as usize),
            _ => None,
        };
        if let Some(r) = req {
            assert_eq!(
                Some(r),
                last,
                "{}: response actions may only reference the final backend response",
                spec.ty
            );
        }
    }
}

/// Stage `i < n`: session/previous-response validation plus backend
/// request generation.
fn compile_backend_stage(spec: &PageSpec, stage: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("{}_stage{stage}", spec.ty));
    let e = env(&mut b);

    if stage == 0 {
        emit_entry_validation(&mut b, &e, spec);
    } else {
        // A backend response from the previous stage is resident: flag
        // `ERR` replies.
        emit_backend_err_check(&mut b, &e);
    }

    // Generate the backend request text. Forbidden lanes still emit a
    // syntactically valid request for user F_USERID (= 0); their response
    // is discarded by the response stage (paper §4.4: error state is
    // carried per request, the pipeline shape is unchanged).
    let access = &spec.backend[stage];
    let cur = e.breq.cursor(&mut b);
    let cmd = b.imm(access.cmd.id());
    b.write_decimal(&cur, cmd, DECIMAL_SCRATCH);
    let pipe = b.imm(b'|' as u32);
    b.cursor_write_byte(&cur, pipe);
    let userid = ld_struct(&mut b, &e, F_USERID);
    b.write_decimal(&cur, userid, DECIMAL_SCRATCH);
    for arg in &access.args {
        b.cursor_write_byte(&cur, pipe);
        let v = match arg {
            ArgSrc::Param(i) => ld_struct(&mut b, &e, F_P0 + *i as u32),
        };
        b.write_decimal(&cur, v, DECIMAL_SCRATCH);
    }
    let nl = b.imm(b'\n' as u32);
    b.cursor_write_byte(&cur, nl);
    let nul = b.imm(0);
    b.cursor_write_byte(&cur, nul);
    st_struct(&mut b, &e, F_BREQ_LEN, cur.pos);
    b.halt();
    b.build().expect("backend stage assembles")
}

/// Entry validation for stage 0: login resolves its own user id; other
/// types look the session up; logout additionally tears it down.
fn emit_entry_validation(b: &mut ProgramBuilder, e: &Env, spec: &PageSpec) {
    if spec.creates_session {
        let userid = ld_struct(b, e, F_P0);
        st_struct(b, e, F_USERID, userid);
        let zero = b.imm(0);
        st_struct(b, e, F_STATUS, zero);
    } else {
        let token = ld_struct(b, e, F_TOKEN);
        emit_session_lookup(b, e, token);
        if spec.destroys_session {
            let status = ld_struct(b, e, F_STATUS);
            let ok = b.un(UnOp::IsZero, status);
            let e2 = *e;
            b.if_then(ok, move |b| {
                let token = ld_struct(b, &e2, F_TOKEN);
                emit_session_remove(b, &e2, token);
            });
        }
    }
}

/// Flag lanes whose resident backend response starts with `!` (the
/// `!ERR` reply) as forbidden.
fn emit_backend_err_check(b: &mut ProgramBuilder, e: &Env) {
    let status = ld_struct(b, e, F_STATUS);
    let ok = b.un(UnOp::IsZero, status);
    let e2 = *e;
    b.if_then(ok, move |b| {
        let zero = b.imm(0);
        let ch = e2.bresp.read_byte(b, zero);
        let e_ch = b.imm(b'!' as u32);
        let is_err = b.bin(BinOp::Eq, ch, e_ch);
        b.if_then(is_err, |b| {
            let one = b.imm(1);
            st_struct(b, &e2, F_STATUS, one);
        });
    });
}

/// The final stage: emit the padded HTML response (or the 403 page).
fn compile_response_stage(spec: &PageSpec, pool: &mut ConstPool, padded: bool) -> Program {
    let mut b = ProgramBuilder::new(format!("{}_response", spec.ty));
    let e = env(&mut b);

    if spec.backend.is_empty() {
        emit_entry_validation(&mut b, &e, spec);
    } else {
        emit_backend_err_check(&mut b, &e);
    }

    // Login: create the session once the backend authenticated the user.
    if spec.creates_session {
        let status = ld_struct(&mut b, &e, F_STATUS);
        let ok = b.un(UnOp::IsZero, status);
        let e2 = e;
        b.if_then(ok, move |b| {
            let userid = ld_struct(b, &e2, F_USERID);
            let token = emit_session_insert(b, &e2, userid);
            st_struct(b, &e2, F_NEWTOKEN, token);
            let full = b.un(UnOp::IsZero, token);
            b.if_then(full, |b| {
                let one = b.imm(1);
                st_struct(b, &e2, F_STATUS, one);
            });
        });
    }

    let status = ld_struct(&mut b, &e, F_STATUS);
    let ok = b.un(UnOp::IsZero, status);
    let spec2 = spec.clone();
    let (forb_off, forb_len) = pool.intern_str(FORBIDDEN);

    // Interning happens eagerly so both closures only capture offsets.
    let header = pool.intern_str(HEADER_PREFIX);
    let set_cookie = pool.intern_str("Set-Cookie: SID=");
    let clen = pool.intern_str("Content-Length: ");
    let blank10 = pool.intern_str("          ");
    let actions: Vec<CompiledAction> = spec
        .actions
        .iter()
        .map(|a| CompiledAction::intern(a, pool))
        .collect();

    let e2 = e;
    b.if_then_else(
        ok,
        move |b| {
            emit_page(
                b, &e2, &spec2, header, set_cookie, clen, blank10, &actions, padded,
            );
        },
        move |b| {
            let cur = e2.resp.cursor(b);
            b.write_const_str(&cur, forb_off, forb_len);
            let len = b.imm(forb_len);
            st_struct(b, &e2, F_RESP_LEN, len);
        },
    );
    b.halt();
    b.build().expect("response stage assembles")
}

/// An [`Action`] with its static strings interned into the const pool.
enum CompiledAction {
    Static(u32, u32),
    PaddedParam(u8),
    PaddedParamMoney(u8),
    PaddedToken,
    PaddedField(u8),
    PaddedMoney(u8),
    Rows {
        stride: u8,
        body: Vec<CompiledRowAction>,
    },
}

enum CompiledRowAction {
    Static(u32, u32),
    PaddedRowField(u8),
    PaddedRowMoney(u8),
    PaddedRowIndex,
}

impl CompiledAction {
    fn intern(a: &Action, pool: &mut ConstPool) -> Self {
        match a {
            Action::Static(s) => {
                let (o, l) = pool.intern_str(s);
                CompiledAction::Static(o, l)
            }
            Action::PaddedParam(i) => CompiledAction::PaddedParam(*i),
            Action::PaddedParamMoney(i) => CompiledAction::PaddedParamMoney(*i),
            Action::PaddedToken => CompiledAction::PaddedToken,
            Action::PaddedField { field, .. } => CompiledAction::PaddedField(*field),
            Action::PaddedMoney { field, .. } => CompiledAction::PaddedMoney(*field),
            Action::Rows { stride, body, .. } => CompiledAction::Rows {
                stride: *stride,
                body: body
                    .iter()
                    .map(|r| match r {
                        RowAction::Static(s) => {
                            let (o, l) = pool.intern_str(s);
                            CompiledRowAction::Static(o, l)
                        }
                        RowAction::PaddedRowField(i) => CompiledRowAction::PaddedRowField(*i),
                        RowAction::PaddedRowMoney(i) => CompiledRowAction::PaddedRowMoney(*i),
                        RowAction::PaddedRowIndex => CompiledRowAction::PaddedRowIndex,
                    })
                    .collect(),
            },
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_page(
    b: &mut ProgramBuilder,
    e: &Env,
    spec: &PageSpec,
    header: (u32, u32),
    set_cookie: (u32, u32),
    clen: (u32, u32),
    blank10: (u32, u32),
    actions: &[CompiledAction],
    padded: bool,
) {
    let cur = e.resp.cursor(b);

    // ---- header -----------------------------------------------------
    b.write_const_str(&cur, header.0, header.1);
    if spec.creates_session {
        b.write_const_str(&cur, set_cookie.0, set_cookie.1);
        let token = ld_struct(b, e, F_NEWTOKEN);
        emit_padded_decimal(b, &cur, token, padded);
    }
    b.write_const_str(&cur, clen.0, clen.1);
    let clen_pos = b.reg();
    b.mov(clen_pos, cur.pos);
    b.write_const_str(&cur, blank10.0, blank10.1);
    let nl = b.imm(b'\n' as u32);
    b.cursor_write_byte(&cur, nl);
    b.cursor_write_byte(&cur, nl);
    let body_start = b.reg();
    b.mov(body_start, cur.pos);

    // ---- body ----------------------------------------------------------
    for action in actions {
        emit_action(b, e, &cur, action, padded);
    }

    // ---- content-length backpatch ----------------------------------------
    let body_len = b.bin(BinOp::Sub, cur.pos, body_start);
    let patch_cur = BufCursor {
        base: cur.base,
        pos: clen_pos,
        elem_stride: cur.elem_stride,
        lane_term: cur.lane_term,
    };
    b.write_decimal(&patch_cur, body_len, DECIMAL_SCRATCH);
    st_struct(b, e, F_RESP_LEN, cur.pos);
}

fn emit_action(
    b: &mut ProgramBuilder,
    e: &Env,
    cur: &BufCursor,
    action: &CompiledAction,
    padded: bool,
) {
    match action {
        CompiledAction::Static(off, len) => b.write_const_str(cur, *off, *len),
        CompiledAction::PaddedParam(i) => {
            let v = ld_struct(b, e, F_P0 + *i as u32);
            emit_padded_decimal(b, cur, v, padded);
        }
        CompiledAction::PaddedParamMoney(i) => {
            let v = ld_struct(b, e, F_P0 + *i as u32);
            emit_padded_money(b, cur, v, padded);
        }
        CompiledAction::PaddedToken => {
            let v = ld_struct(b, e, F_TOKEN);
            emit_padded_decimal(b, cur, v, padded);
        }
        CompiledAction::PaddedField(field) => {
            let k = b.imm(*field as u32);
            emit_copy_field_padded(b, &e.bresp, k, cur, padded);
        }
        CompiledAction::PaddedMoney(field) => {
            let k = b.imm(*field as u32);
            let cents = emit_parse_field_u32(b, &e.bresp, k);
            emit_padded_money(b, cur, cents, padded);
        }
        CompiledAction::Rows { stride, body } => {
            let zero = b.imm(0);
            let count = emit_parse_field_u32(b, &e.bresp, zero);
            let stride_r = b.imm(*stride as u32);
            let one = b.imm(1);
            let e2 = *e;
            let cur2 = *cur;
            b.for_loop(count, |b, row| {
                // flat field base for this row = 1 + row * stride
                let rs = b.bin(BinOp::Mul, row, stride_r);
                let base_k = b.bin(BinOp::Add, rs, one);
                for ra in body {
                    match ra {
                        CompiledRowAction::Static(off, len) => {
                            b.write_const_str(&cur2, *off, *len);
                        }
                        CompiledRowAction::PaddedRowField(off) => {
                            let o = b.imm(*off as u32);
                            let k = b.bin(BinOp::Add, base_k, o);
                            emit_copy_field_padded(b, &e2.bresp, k, &cur2, padded);
                        }
                        CompiledRowAction::PaddedRowMoney(off) => {
                            let o = b.imm(*off as u32);
                            let k = b.bin(BinOp::Add, base_k, o);
                            let cents = emit_parse_field_u32(b, &e2.bresp, k);
                            emit_padded_money(b, &cur2, cents, padded);
                        }
                        CompiledRowAction::PaddedRowIndex => {
                            let r1 = b.bin(BinOp::Add, row, one);
                            emit_padded_decimal(b, &cur2, r1, padded);
                        }
                    }
                }
            });
        }
    }
}

/// Emit a padded line directly from a register-held length (exposed for
/// tests of the padding mechanics).
pub fn emit_padded_literal(b: &mut ProgramBuilder, cur: &BufCursor, text: &[u8]) {
    for &ch in text {
        let c = b.imm(ch as u32);
        b.cursor_write_byte(cur, c);
    }
    let len = b.imm(text.len() as u32);
    emit_pad_and_newline(b, cur, len, true);
}
