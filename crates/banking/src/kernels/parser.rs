//! The HTTP parser kernel (paper §3.2 "Parser").
//!
//! Each lane parses its raw request text from the request buffer:
//!
//! 1. the target's file name is matched against the 14 known PHP files
//!    (an unrolled compare chain over constant memory — lanes of
//!    different types diverge here, which is exactly the parser-divergence
//!    experiment of §6.4);
//! 2. a single pass over the request extracts the `SID=` session cookie
//!    and up to four positional numeric parameters (`name=<digits>`),
//!    writing everything into the column-major request struct.

use rhythm_simt::ir::{BinOp, Program, ProgramBuilder, Reg, UnOp, Width};
use rhythm_simt::mem::ConstPool;

use crate::layout::{F_P0, F_STATUS, F_TOKEN, F_TYPE};
use crate::types::RequestType;

use super::common::{env, st_struct, Env};

/// Number used for "no type matched" (14 dynamic types + the image type).
pub const TYPE_UNKNOWN: u32 = 15;

/// Build the parser kernel. File-name tables are interned into `pool`.
pub fn build_parser(pool: &mut ConstPool) -> Program {
    // The 14 dynamic types plus the static-image endpoint, which the
    // parser classifies so dispatch can form bypassing image cohorts
    // (paper §5.1).
    let mut names: Vec<(u32, u32)> = RequestType::ALL
        .iter()
        .map(|t| pool.intern_str(t.file_name()))
        .collect();
    names.push(pool.intern_str(crate::images::IMAGE_FILE_NAME));

    let mut b = ProgramBuilder::new("http_parser");
    let e = env(&mut b);

    // ---- locate the file name within the request line -------------------
    // Find the first space (after the method token).
    let pos = b.imm(0);
    let one = b.imm(1);
    let space = b.imm(b' ' as u32);
    let e2 = e;
    b.while_loop(
        |b| {
            let ch = e2.reqbuf.read_byte(b, pos);
            b.bin(BinOp::Ne, ch, space)
        },
        |b| {
            b.bin_into(pos, BinOp::Add, pos, one);
        },
    );
    b.bin_into(pos, BinOp::Add, pos, one); // skip the space

    // Walk the target, tracking the character after the last '/'; stop at
    // '?' or ' '.
    let file_start = b.reg();
    b.mov(file_start, pos);
    let slash = b.imm(b'/' as u32);
    let query_ch = b.imm(b'?' as u32);
    let scanning = b.imm(1);
    b.while_loop(
        |b| {
            let c = b.reg();
            b.mov(c, scanning);
            c
        },
        |b| {
            let ch = e2.reqbuf.read_byte(b, pos);
            let is_q = b.bin(BinOp::Eq, ch, query_ch);
            let is_sp = b.bin(BinOp::Eq, ch, space);
            let is_nul = b.un(UnOp::IsZero, ch);
            let t = b.bin(BinOp::Or, is_q, is_sp);
            let stop = b.bin(BinOp::Or, t, is_nul);
            b.if_then_else(
                stop,
                |b| {
                    b.imm_into(scanning, 0);
                },
                |b| {
                    let is_slash = b.bin(BinOp::Eq, ch, slash);
                    b.bin_into(pos, BinOp::Add, pos, one);
                    b.if_then(is_slash, |b| {
                        b.mov(file_start, pos);
                    });
                },
            );
        },
    );
    let file_len = b.bin(BinOp::Sub, pos, file_start);

    // ---- match against the known file names (unrolled) --------------------
    let type_id = b.imm(TYPE_UNKNOWN);
    for (t, (off, len)) in names.iter().enumerate() {
        let unknown = b.imm(TYPE_UNKNOWN);
        let still = b.bin(BinOp::Eq, type_id, unknown);
        let want_len = b.imm(*len);
        let len_ok = b.bin(BinOp::Eq, file_len, want_len);
        let try_cmp = b.bin(BinOp::And, still, len_ok);
        let off_r = b.imm(*off);
        let t_imm = b.imm(t as u32);
        let e3 = e;
        b.if_then(try_cmp, move |b| {
            let matched = b.imm(1);
            let j = b.imm(0);
            let one_l = b.imm(1);
            let want_len2 = b.imm(*len);
            b.while_loop(
                |b| {
                    let m = b.reg();
                    b.mov(m, matched);
                    let in_range = b.bin(BinOp::LtU, j, want_len2);
                    b.bin(BinOp::And, m, in_range)
                },
                |b| {
                    let fp = b.bin(BinOp::Add, file_start, j);
                    let ch = e3.reqbuf.read_byte(b, fp);
                    let ca = b.bin(BinOp::Add, off_r, j);
                    let cch = b.ld(Width::Byte, rhythm_simt::ir::MemSpace::Const, ca, 0);
                    let ne = b.bin(BinOp::Ne, ch, cch);
                    b.if_then(ne, |b| {
                        b.imm_into(matched, 0);
                    });
                    b.bin_into(j, BinOp::Add, j, one_l);
                },
            );
            b.if_then(matched, |b| {
                b.mov(type_id, t_imm);
            });
        });
    }
    st_struct(&mut b, &e, F_TYPE, type_id);

    // ---- single-pass parameter and cookie extraction ----------------------
    emit_param_scan(&mut b, &e);

    let zero = b.imm(0);
    st_struct(&mut b, &e, F_STATUS, zero);
    b.halt();
    b.build().expect("parser assembles")
}

/// Scan the whole request for `SID=<digits>` and positional
/// `name=<digits>` parameters (request-generator convention: parameters
/// appear in canonical order in the query string or body).
fn emit_param_scan(b: &mut ProgramBuilder, e: &Env) {
    let pos = b.imm(0);
    let one = b.imm(1);
    let eq = b.imm(b'=' as u32);
    let token = b.imm(0);
    let nparams = b.imm(0);
    let prev1 = b.imm(0);
    let prev2 = b.imm(0);
    let prev3 = b.imm(0);
    let scanning = b.imm(1);
    let e2 = *e;
    b.while_loop(
        |b| {
            let c = b.reg();
            b.mov(c, scanning);
            let inb = b.bin(BinOp::LtU, pos, e2.reqbuf.size);
            b.bin(BinOp::And, c, inb)
        },
        |b| {
            let ch = e2.reqbuf.read_byte(b, pos);
            let is_nul = b.un(UnOp::IsZero, ch);
            b.if_then_else(
                is_nul,
                |b| {
                    b.imm_into(scanning, 0);
                },
                |b| {
                    let is_eq = b.bin(BinOp::Eq, ch, eq);
                    b.if_then_else(
                        is_eq,
                        |b| {
                            // Is this `SID=`?
                            let s_ch = b.imm(b'S' as u32);
                            let i_ch = b.imm(b'I' as u32);
                            let d_ch = b.imm(b'D' as u32);
                            let m1 = b.bin(BinOp::Eq, prev3, s_ch);
                            let m2 = b.bin(BinOp::Eq, prev2, i_ch);
                            let m3 = b.bin(BinOp::Eq, prev1, d_ch);
                            let m12 = b.bin(BinOp::And, m1, m2);
                            let is_sid = b.bin(BinOp::And, m12, m3);
                            b.bin_into(pos, BinOp::Add, pos, one);
                            // Parse the digit run at pos.
                            let value = b.imm(0);
                            let ten = b.imm(10);
                            let zero_ch = b.imm(b'0' as u32);
                            let nine_ch = b.imm(b'9' as u32);
                            let digits = b.imm(1);
                            b.while_loop(
                                |b| {
                                    let d = b.reg();
                                    b.mov(d, digits);
                                    d
                                },
                                |b| {
                                    let c2 = e2.reqbuf.read_byte(b, pos);
                                    let ge = b.bin(BinOp::GeU, c2, zero_ch);
                                    let le = b.bin(BinOp::LeU, c2, nine_ch);
                                    let is_d = b.bin(BinOp::And, ge, le);
                                    b.if_then_else(
                                        is_d,
                                        |b| {
                                            let d = b.bin(BinOp::Sub, c2, zero_ch);
                                            let sc = b.bin(BinOp::Mul, value, ten);
                                            b.bin_into(value, BinOp::Add, sc, d);
                                            b.bin_into(pos, BinOp::Add, pos, one);
                                        },
                                        |b| {
                                            b.imm_into(digits, 0);
                                        },
                                    );
                                },
                            );
                            b.if_then_else(
                                is_sid,
                                |b| {
                                    b.mov(token, value);
                                },
                                |b| {
                                    // Positional parameter slot (max 4).
                                    let four = b.imm(4);
                                    let fits = b.bin(BinOp::LtU, nparams, four);
                                    b.if_then(fits, |b| {
                                        let f0 = b.imm(F_P0);
                                        let f = b.bin(BinOp::Add, f0, nparams);
                                        st_struct_dyn(b, &e2, f, value);
                                        b.bin_into(nparams, BinOp::Add, nparams, one);
                                    });
                                },
                            );
                            b.imm_into(prev1, 0);
                            b.imm_into(prev2, 0);
                            b.imm_into(prev3, 0);
                        },
                        |b| {
                            b.mov(prev3, prev2);
                            b.mov(prev2, prev1);
                            b.mov(prev1, ch);
                            b.bin_into(pos, BinOp::Add, pos, one);
                        },
                    );
                },
            );
        },
    );
    st_struct(b, e, F_TOKEN, token);
    // Zero the unused parameter slots so stale cohort data cannot leak.
    let four = b.imm(4);
    let zero = b.imm(0);
    b.while_loop(
        |b| b.bin(BinOp::LtU, nparams, four),
        |b| {
            let f0 = b.imm(F_P0);
            let f = b.bin(BinOp::Add, f0, nparams);
            st_struct_dyn(b, &e2, f, zero);
            b.bin_into(nparams, BinOp::Add, nparams, one);
        },
    );
}

/// Store a struct word whose field index is a register.
fn st_struct_dyn(b: &mut ProgramBuilder, e: &Env, field: Reg, value: Reg) {
    let fc = b.bin(BinOp::Mul, field, e.cohort);
    let idx = b.bin(BinOp::Add, fc, e.gid);
    let four = b.imm(4);
    let off = b.bin(BinOp::Mul, idx, four);
    let addr = b.bin(BinOp::Add, e.struct_base, off);
    b.st(
        Width::Word,
        rhythm_simt::ir::MemSpace::Global,
        addr,
        0,
        value,
    );
}
