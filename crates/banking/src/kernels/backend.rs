//! The device backend kernel: an on-GPU key-value responder that answers
//! backend requests without leaving the device (the paper's Titan B/C
//! "implement the SPECWeb Besim backend on the GPU", §5.3.2).
//!
//! Each lane parses its backend request line (`"<cmd>|<userid>|..."`),
//! addresses the serialized store record
//! (`store_base + userid * RECORD_BYTES + cmd * SLOT_BYTES`), and copies
//! the pre-serialized response text into the backend response buffer.
//! Unknown users or commands produce `"!ERR\n"`.

use rhythm_simt::ir::{BinOp, Program, ProgramBuilder, Width};

use crate::backend::{RECORD_BYTES, SLOTS, SLOT_BYTES};

use super::common::{emit_parse_field_u32, env};

/// Build the device backend kernel.
pub fn build_backend() -> Program {
    let mut b = ProgramBuilder::new("device_backend");
    let e = env(&mut b);

    let zero = b.imm(0);
    let cmd = emit_parse_field_u32(&mut b, &e.breq, zero);
    let one_k = b.imm(1);
    let userid = emit_parse_field_u32(&mut b, &e.breq, one_k);

    let nslots = b.imm(SLOTS);
    let cmd_ok = b.bin(BinOp::LtU, cmd, nslots);
    let user_ok = b.bin(BinOp::LtU, userid, e.store_users);
    let ok = b.bin(BinOp::And, cmd_ok, user_ok);

    let cur = e.bresp.cursor(&mut b);
    let e2 = e;
    let cur2 = cur;
    b.if_then_else(
        ok,
        move |b| {
            // src = store_base + userid * RECORD_BYTES + cmd * SLOT_BYTES
            let rec = b.imm(RECORD_BYTES);
            let slot = b.imm(SLOT_BYTES);
            let u_off = b.bin(BinOp::Mul, userid, rec);
            let c_off = b.bin(BinOp::Mul, cmd, slot);
            let t = b.bin(BinOp::Add, e2.store_base, u_off);
            let src = b.bin(BinOp::Add, t, c_off);

            // Copy through the terminating '\n'.
            let i = b.imm(0);
            let one_c = b.imm(1);
            let nl = b.imm(b'\n' as u32);
            let copying = b.imm(1);
            b.while_loop(
                |b| {
                    let c = b.reg();
                    b.mov(c, copying);
                    c
                },
                |b| {
                    let a = b.bin(BinOp::Add, src, i);
                    let ch = b.ld(Width::Byte, rhythm_simt::ir::MemSpace::Global, a, 0);
                    b.cursor_write_byte(&cur2, ch);
                    b.bin_into(i, BinOp::Add, i, one_c);
                    let done = b.bin(BinOp::Eq, ch, nl);
                    b.if_then(done, |b| {
                        b.imm_into(copying, 0);
                    });
                },
            );
        },
        move |b| {
            for ch in *b"!ERR\n" {
                let c = b.imm(ch as u32);
                b.cursor_write_byte(&cur2, c);
            }
        },
    );
    // NUL-terminate so stale bytes from a previous cohort can't leak into
    // field scans.
    let nul = b.imm(0);
    b.cursor_write_byte(&cur, nul);
    b.halt();
    b.build().expect("backend kernel assembles")
}
