//! Shared IR-emission helpers for the banking kernels: the launch
//! environment, strided buffer access, padded-fragment emission, backend
//! field parsing, and the device session-array operations.

use rhythm_simt::ir::{BinOp, BufCursor, MemSpace, ProgramBuilder, Reg, Width};

use crate::layout::{
    F_STATUS, F_USERID, P_BREQ_BASE, P_BREQ_ESTRIDE, P_BREQ_LSTRIDE, P_BREQ_SIZE, P_BRESP_BASE,
    P_BRESP_ESTRIDE, P_BRESP_LSTRIDE, P_BRESP_SIZE, P_COHORT, P_REQBUF_BASE, P_REQBUF_ESTRIDE,
    P_REQBUF_LSTRIDE, P_REQBUF_SIZE, P_RESP_BASE, P_RESP_ESTRIDE, P_RESP_LSTRIDE, P_RESP_SIZE,
    P_SESSION_BASE, P_SESSION_CAP, P_SESSION_SALT, P_STORE_BASE, P_STORE_USERS, P_STRUCT_BASE,
};
use crate::session_array::{NODE_BYTES, NODE_STATE, NODE_TOKEN, NODE_USER};

/// Local-memory scratch offset used by decimal conversion.
pub const DECIMAL_SCRATCH: u32 = 0;

/// Registers describing one strided cohort buffer for the current lane.
#[derive(Copy, Clone, Debug)]
pub struct BufSpec {
    /// Region base address.
    pub base: Reg,
    /// Slot size in bytes.
    pub size: Reg,
    /// Element stride.
    pub es: Reg,
    /// Precomputed `lane * lane_stride`.
    pub lane_term: Reg,
}

impl BufSpec {
    fn load(
        b: &mut ProgramBuilder,
        gid: Reg,
        base_p: u16,
        size_p: u16,
        ls_p: u16,
        es_p: u16,
    ) -> Self {
        let base = b.param(base_p);
        let size = b.param(size_p);
        let ls = b.param(ls_p);
        let es = b.param(es_p);
        let lane_term = b.bin(BinOp::Mul, gid, ls);
        BufSpec {
            base,
            size,
            es,
            lane_term,
        }
    }

    /// A fresh write cursor at element 0 of this lane's slot.
    pub fn cursor(&self, b: &mut ProgramBuilder) -> BufCursor {
        let pos = b.imm(0);
        BufCursor {
            base: self.base,
            pos,
            elem_stride: self.es,
            lane_term: self.lane_term,
        }
    }

    /// Byte address of element `pos`.
    pub fn addr(&self, b: &mut ProgramBuilder, pos: Reg) -> Reg {
        let scaled = b.bin(BinOp::Mul, pos, self.es);
        let t = b.bin(BinOp::Add, self.base, self.lane_term);
        b.bin(BinOp::Add, t, scaled)
    }

    /// Load the byte at element `pos`.
    pub fn read_byte(&self, b: &mut ProgramBuilder, pos: Reg) -> Reg {
        let a = self.addr(b, pos);
        b.ld(Width::Byte, MemSpace::Global, a, 0)
    }
}

/// The standard launch environment every banking kernel begins with.
#[derive(Copy, Clone, Debug)]
pub struct Env {
    /// Global lane id (request slot).
    pub gid: Reg,
    /// Cohort size.
    pub cohort: Reg,
    /// Response buffer.
    pub resp: BufSpec,
    /// Backend request buffer.
    pub breq: BufSpec,
    /// Backend response buffer.
    pub bresp: BufSpec,
    /// Raw request buffer.
    pub reqbuf: BufSpec,
    /// Parsed-struct region base.
    pub struct_base: Reg,
    /// Session array base.
    pub session_base: Reg,
    /// Session array capacity.
    pub session_cap: Reg,
    /// Session token salt.
    pub session_salt: Reg,
    /// Device backend store base.
    pub store_base: Reg,
    /// User count in the device store.
    pub store_users: Reg,
}

/// Emit the environment prologue.
pub fn env(b: &mut ProgramBuilder) -> Env {
    let gid = b.global_id();
    let cohort = b.param(P_COHORT);
    let resp = BufSpec::load(
        b,
        gid,
        P_RESP_BASE,
        P_RESP_SIZE,
        P_RESP_LSTRIDE,
        P_RESP_ESTRIDE,
    );
    let breq = BufSpec::load(
        b,
        gid,
        P_BREQ_BASE,
        P_BREQ_SIZE,
        P_BREQ_LSTRIDE,
        P_BREQ_ESTRIDE,
    );
    let bresp = BufSpec::load(
        b,
        gid,
        P_BRESP_BASE,
        P_BRESP_SIZE,
        P_BRESP_LSTRIDE,
        P_BRESP_ESTRIDE,
    );
    let reqbuf = BufSpec::load(
        b,
        gid,
        P_REQBUF_BASE,
        P_REQBUF_SIZE,
        P_REQBUF_LSTRIDE,
        P_REQBUF_ESTRIDE,
    );
    let struct_base = b.param(P_STRUCT_BASE);
    let session_base = b.param(P_SESSION_BASE);
    let session_cap = b.param(P_SESSION_CAP);
    let session_salt = b.param(P_SESSION_SALT);
    let store_base = b.param(P_STORE_BASE);
    let store_users = b.param(P_STORE_USERS);
    Env {
        gid,
        cohort,
        resp,
        breq,
        bresp,
        reqbuf,
        struct_base,
        session_base,
        session_cap,
        session_salt,
        store_base,
        store_users,
    }
}

/// Address of struct word `field` for this lane (column-major words).
pub fn struct_addr(b: &mut ProgramBuilder, e: &Env, field: u32) -> Reg {
    let f = b.imm(field);
    let fc = b.bin(BinOp::Mul, f, e.cohort);
    let idx = b.bin(BinOp::Add, fc, e.gid);
    let four = b.imm(4);
    let off = b.bin(BinOp::Mul, idx, four);
    b.bin(BinOp::Add, e.struct_base, off)
}

/// Load struct word `field`.
pub fn ld_struct(b: &mut ProgramBuilder, e: &Env, field: u32) -> Reg {
    let a = struct_addr(b, e, field);
    b.ld(Width::Word, MemSpace::Global, a, 0)
}

/// Store struct word `field`.
pub fn st_struct(b: &mut ProgramBuilder, e: &Env, field: u32, value: Reg) {
    let a = struct_addr(b, e, field);
    b.st(Width::Word, MemSpace::Global, a, 0, value);
}

/// Emit warp-aligned padding after a dynamic fragment of `len` bytes,
/// then a newline: pad to the warp-wide maximum via butterfly reduction
/// (paper §4.6). With `padded == false` only the newline is emitted —
/// the ablation configuration that lets lane write pointers drift.
pub fn emit_pad_and_newline(b: &mut ProgramBuilder, cur: &BufCursor, len: Reg, padded: bool) {
    if padded {
        let wmax = b.warp_red_max(len);
        let pad = b.bin(BinOp::Sub, wmax, len);
        let space = b.imm(b' ' as u32);
        b.for_loop(pad, |b, _| {
            b.cursor_write_byte(cur, space);
        });
    }
    let nl = b.imm(b'\n' as u32);
    b.cursor_write_byte(cur, nl);
}

/// Emit `value` as decimal, warp-padded, newline-terminated.
pub fn emit_padded_decimal(b: &mut ProgramBuilder, cur: &BufCursor, value: Reg, padded: bool) {
    let ndig = b.write_decimal(cur, value, DECIMAL_SCRATCH);
    emit_pad_and_newline(b, cur, ndig, padded);
}

/// Emit `cents` as `dollars.cc`, warp-padded, newline-terminated.
pub fn emit_padded_money(b: &mut ProgramBuilder, cur: &BufCursor, cents: Reg, padded: bool) {
    let hundred = b.imm(100);
    let ten = b.imm(10);
    let zero_ch = b.imm(b'0' as u32);
    let dollars = b.bin(BinOp::DivU, cents, hundred);
    let frac = b.bin(BinOp::RemU, cents, hundred);
    let ndig = b.write_decimal(cur, dollars, DECIMAL_SCRATCH);
    let dot = b.imm(b'.' as u32);
    b.cursor_write_byte(cur, dot);
    let d1 = b.bin(BinOp::DivU, frac, ten);
    let c1 = b.bin(BinOp::Add, d1, zero_ch);
    b.cursor_write_byte(cur, c1);
    let d2 = b.bin(BinOp::RemU, frac, ten);
    let c2 = b.bin(BinOp::Add, d2, zero_ch);
    b.cursor_write_byte(cur, c2);
    let three = b.imm(3);
    let len = b.bin(BinOp::Add, ndig, three);
    emit_pad_and_newline(b, cur, len, padded);
}

/// Scan this lane's buffer for the start position of pipe-separated field
/// `k` (a register). Fields are 0-based; scanning is bounded by the slot
/// size.
pub fn emit_field_start(b: &mut ProgramBuilder, buf: &BufSpec, k: Reg) -> Reg {
    let pos = b.imm(0);
    let seen = b.imm(0);
    let one = b.imm(1);
    let pipe = b.imm(b'|' as u32);
    let buf = *buf;
    b.while_loop(
        |b| {
            let more = b.bin(BinOp::LtU, seen, k);
            let inb = b.bin(BinOp::LtU, pos, buf.size);
            b.bin(BinOp::And, more, inb)
        },
        |b| {
            let ch = buf.read_byte(b, pos);
            b.bin_into(pos, BinOp::Add, pos, one);
            let is_pipe = b.bin(BinOp::Eq, ch, pipe);
            b.if_then(is_pipe, |b| {
                b.bin_into(seen, BinOp::Add, seen, one);
            });
        },
    );
    pos
}

/// Copy field `k` of this lane's buffer to the cursor, warp-padded and
/// newline-terminated. Fields end at `|`, `\n`, or NUL.
pub fn emit_copy_field_padded(
    b: &mut ProgramBuilder,
    buf: &BufSpec,
    k: Reg,
    cur: &BufCursor,
    padded: bool,
) {
    let pos = emit_field_start(b, buf, k);
    let len = b.imm(0);
    let one = b.imm(1);
    let pipe = b.imm(b'|' as u32);
    let nl = b.imm(b'\n' as u32);
    let cont = b.imm(1);
    let buf = *buf;
    let cur = *cur;
    b.while_loop(
        |b| {
            let c = b.reg();
            b.mov(c, cont);
            c
        },
        |b| {
            let ch = buf.read_byte(b, pos);
            let is_pipe = b.bin(BinOp::Eq, ch, pipe);
            let is_nl = b.bin(BinOp::Eq, ch, nl);
            let is_nul = b.un(rhythm_simt::ir::UnOp::IsZero, ch);
            let t = b.bin(BinOp::Or, is_pipe, is_nl);
            let stop = b.bin(BinOp::Or, t, is_nul);
            b.if_then_else(
                stop,
                |b| {
                    b.imm_into(cont, 0);
                },
                |b| {
                    b.cursor_write_byte(&cur, ch);
                    b.bin_into(pos, BinOp::Add, pos, one);
                    b.bin_into(len, BinOp::Add, len, one);
                },
            );
        },
    );
    emit_pad_and_newline(b, &cur, len, padded);
}

/// Parse field `k` of this lane's buffer as an unsigned decimal.
pub fn emit_parse_field_u32(b: &mut ProgramBuilder, buf: &BufSpec, k: Reg) -> Reg {
    let pos = emit_field_start(b, buf, k);
    let value = b.imm(0);
    let ten = b.imm(10);
    let one = b.imm(1);
    let zero_ch = b.imm(b'0' as u32);
    let nine_ch = b.imm(b'9' as u32);
    let cont = b.imm(1);
    let buf = *buf;
    b.while_loop(
        |b| {
            let c = b.reg();
            b.mov(c, cont);
            c
        },
        |b| {
            let ch = buf.read_byte(b, pos);
            let ge = b.bin(BinOp::GeU, ch, zero_ch);
            let le = b.bin(BinOp::LeU, ch, nine_ch);
            let is_digit = b.bin(BinOp::And, ge, le);
            b.if_then_else(
                is_digit,
                |b| {
                    let d = b.bin(BinOp::Sub, ch, zero_ch);
                    let scaled = b.bin(BinOp::Mul, value, ten);
                    b.bin_into(value, BinOp::Add, scaled, d);
                    b.bin_into(pos, BinOp::Add, pos, one);
                },
                |b| {
                    b.imm_into(cont, 0);
                },
            );
        },
    );
    value
}

/// Node base address for session index `idx`.
fn session_node_addr(b: &mut ProgramBuilder, e: &Env, idx: Reg) -> Reg {
    let sz = b.imm(NODE_BYTES);
    let off = b.bin(BinOp::Mul, idx, sz);
    b.bin(BinOp::Add, e.session_base, off)
}

/// O(1) session lookup: decode `token`, verify the node, and write
/// `F_USERID`/`F_STATUS` (0 ok / 1 forbidden) into the request struct.
pub fn emit_session_lookup(b: &mut ProgramBuilder, e: &Env, token: Reg) {
    let idx = b.bin(BinOp::Xor, token, e.session_salt);
    let in_range = b.bin(BinOp::LtU, idx, e.session_cap);
    let status = b.imm(1);
    let user_out = b.imm(0);
    let e2 = *e;
    b.if_then(in_range, |b| {
        let node = session_node_addr(b, &e2, idx);
        let state = b.ld(Width::Word, MemSpace::Global, node, NODE_STATE);
        let tok2 = b.ld(Width::Word, MemSpace::Global, node, NODE_TOKEN);
        let one = b.imm(1);
        let live = b.bin(BinOp::GeU, state, one);
        let same = b.bin(BinOp::Eq, tok2, token);
        let ok = b.bin(BinOp::And, live, same);
        b.if_then(ok, |b| {
            let user = b.ld(Width::Word, MemSpace::Global, node, NODE_USER);
            b.mov(user_out, user);
            b.imm_into(status, 0);
        });
    });
    st_struct(b, e, F_USERID, user_out);
    st_struct(b, e, F_STATUS, status);
}

/// Session insertion (login): probe linearly from `hash(userid)`, claim a
/// node with an atomic increment (undone on failure), and return the new
/// token (0 when the table is full — the caller flags forbidden).
pub fn emit_session_insert(b: &mut ProgramBuilder, e: &Env, userid: Reg) -> Reg {
    let h = b.hash_u32(userid);
    let start = b.bin(BinOp::RemU, h, e.session_cap);
    let k = b.imm(0);
    let one = b.imm(1);
    let undo = b.imm(u32::MAX); // two's-complement -1
    let token = b.imm(0);
    let done = b.imm(0);
    let e2 = *e;
    b.while_loop(
        |b| {
            let not_done = b.un(rhythm_simt::ir::UnOp::IsZero, done);
            let more = b.bin(BinOp::LtU, k, e2.session_cap);
            b.bin(BinOp::And, not_done, more)
        },
        |b| {
            let sk = b.bin(BinOp::Add, start, k);
            let idx = b.bin(BinOp::RemU, sk, e2.session_cap);
            let node = session_node_addr(b, &e2, idx);
            let old = b.atomic_add(MemSpace::Global, node, NODE_STATE, one);
            let free = b.un(rhythm_simt::ir::UnOp::IsZero, old);
            b.if_then_else(
                free,
                |b| {
                    let tok = b.bin(BinOp::Xor, idx, e2.session_salt);
                    b.st(Width::Word, MemSpace::Global, node, NODE_TOKEN, tok);
                    b.st(Width::Word, MemSpace::Global, node, NODE_USER, userid);
                    b.mov(token, tok);
                    b.imm_into(done, 1);
                },
                |b| {
                    b.atomic_add(MemSpace::Global, node, NODE_STATE, undo);
                    b.bin_into(k, BinOp::Add, k, one);
                },
            );
        },
    );
    token
}

/// Session removal (logout): O(1) verify-and-clear.
pub fn emit_session_remove(b: &mut ProgramBuilder, e: &Env, token: Reg) {
    let idx = b.bin(BinOp::Xor, token, e.session_salt);
    let in_range = b.bin(BinOp::LtU, idx, e.session_cap);
    let e2 = *e;
    b.if_then(in_range, |b| {
        let node = session_node_addr(b, &e2, idx);
        let tok2 = b.ld(Width::Word, MemSpace::Global, node, NODE_TOKEN);
        let same = b.bin(BinOp::Eq, tok2, token);
        b.if_then(same, |b| {
            let zero = b.imm(0);
            b.st(Width::Word, MemSpace::Global, node, NODE_STATE, zero);
            b.st(Width::Word, MemSpace::Global, node, NODE_TOKEN, zero);
            b.st(Width::Word, MemSpace::Global, node, NODE_USER, zero);
        });
    });
}
