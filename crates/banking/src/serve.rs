//! Network-facing cohort handlers: plug the Banking workload into
//! `rhythm-net`'s front end.
//!
//! [`ScalarHandler`] answers each request with the native (CPU) handler —
//! the paper's "standalone C version" serving path. [`SimtHandler`] runs
//! each cohort through [`crate::runner::run_cohort`] on the simulated
//! data-parallel device — the paper's GPU serving path. Both implement
//! [`rhythm_net::CohortHandler`], so the same non-blocking TCP front end
//! drives either.

use std::sync::Arc;

use rhythm_http::HttpRequest;
use rhythm_net::CohortHandler;
use rhythm_obs::{AtomicHistogram, Counter, Gauge, MetricRegistry};
use rhythm_simt::gpu::Gpu;
use rhythm_simt::{plan_cache_stats, WARP_SIZE};

use crate::backend::BankStore;
use crate::genreq::{raw_http, GeneratedRequest};
use crate::kernels::Workload;
use crate::native::{handle_native, BankingRequest};
use crate::runner::{
    plan_stream_groups, run_cohort, run_cohorts_hyperq, CohortOptions, CohortResult,
};
use crate::session_array::SessionArrayHost;
use crate::subkey::{self, ParserFeatures, SubkeyTable};
use crate::templates::SESSION_COOKIE;
use crate::types::RequestType;

/// Map a Banking cohort key to its page name for latency labels (shared
/// by both handlers' [`CohortHandler::key_name`]).
fn banking_key_name(key: u32) -> String {
    RequestType::from_id(key)
        .map(|t| t.file_name().to_string())
        .unwrap_or_else(|| format!("key_{key}"))
}

/// Live SIMT device counters, registered into one shard's device
/// [`MetricRegistry`] and updated after every cohort launch.
///
/// All handles are relaxed atomics owned by the shard's registry, so the
/// serving hot path records without locks and `/metrics` scrapes
/// concurrently. The `rhythm_device_plan_cache_*` counters mirror the
/// process-wide decode-plan cache by absolute `set` (every shard
/// publishes the same process total).
#[derive(Debug)]
pub struct DeviceMetrics {
    launches: Arc<Counter>,
    cohorts: Arc<Counter>,
    served: Arc<Counter>,
    faults: Arc<Counter>,
    warp_cycles: Arc<Counter>,
    warp_instructions: Arc<Counter>,
    lane_instructions: Arc<Counter>,
    branches: Arc<Counter>,
    divergent_branches: Arc<Counter>,
    plan_cache_hits: Arc<Counter>,
    plan_cache_misses: Arc<Counter>,
    simd_efficiency: Arc<Gauge>,
    divergence_rate: Arc<Gauge>,
    kernel_seconds: Arc<AtomicHistogram>,
    hyperq_streams: Arc<AtomicHistogram>,
}

impl DeviceMetrics {
    /// Register every device metric into `registry` (idempotent: a second
    /// registration returns handles to the same metrics).
    pub fn register(registry: &MetricRegistry) -> Self {
        DeviceMetrics {
            launches: registry.counter(
                "rhythm_device_launches_total",
                "Kernel launches executed on the device",
            ),
            cohorts: registry.counter(
                "rhythm_device_cohorts_total",
                "Cohorts run to completion on the device",
            ),
            served: registry.counter(
                "rhythm_device_requests_total",
                "Requests served across device cohorts",
            ),
            faults: registry.counter(
                "rhythm_device_faults_total",
                "Cohorts that faulted on the device (answered with 500s)",
            ),
            warp_cycles: registry.counter(
                "rhythm_device_warp_cycles_total",
                "Modelled warp cycles across kernel launches",
            ),
            warp_instructions: registry.counter(
                "rhythm_device_warp_instructions_total",
                "Warp instructions issued",
            ),
            lane_instructions: registry.counter(
                "rhythm_device_lane_instructions_total",
                "Active-lane instructions executed",
            ),
            branches: registry.counter("rhythm_device_branches_total", "Warp branches executed"),
            divergent_branches: registry.counter(
                "rhythm_device_divergent_branches_total",
                "Warp branches whose lanes took both sides",
            ),
            plan_cache_hits: registry.counter(
                "rhythm_plan_cache_hits_total",
                "Decode-plan cache hits (process-wide)",
            ),
            plan_cache_misses: registry.counter(
                "rhythm_plan_cache_misses_total",
                "Decode-plan cache misses (process-wide)",
            ),
            simd_efficiency: registry.gauge(
                "rhythm_device_simd_efficiency",
                "Cumulative SIMD efficiency: lane instructions over warp slots (1.0 = converged)",
            ),
            divergence_rate: registry.gauge(
                "rhythm_device_divergence_rate",
                "Cumulative divergent-branch fraction",
            ),
            // Kernel times: 100 ns floor, 8 sub-buckets/octave, 30
            // octaves reach ~100 s.
            kernel_seconds: registry.histogram(
                "rhythm_device_kernel_seconds",
                "Modelled device time per cohort",
                1e-7,
                8,
                30,
            ),
            // Stream-group sizes are small integers; 1 sub-bucket per
            // octave over [1, 64) keeps them distinguishable.
            hyperq_streams: registry.histogram(
                "rhythm_device_hyperq_streams",
                "Concurrent streams per HyperQ launch group (1 = serial barrier)",
                0.5,
                2,
                8,
            ),
        }
    }

    /// Fold one completed cohort's launch results into the live counters.
    fn note_cohort(&self, result: &CohortResult, served: u64) {
        self.cohorts.inc();
        self.served.add(served);
        self.launches.add(result.launches.len() as u64);
        for (_, launch) in &result.launches {
            let s = &launch.stats;
            self.warp_cycles.add(s.warp_cycles);
            self.warp_instructions.add(s.warp_instructions);
            self.lane_instructions.add(s.lane_instructions);
            self.branches.add(s.divergence.branches);
            self.divergent_branches.add(s.divergence.divergent_branches);
        }
        self.kernel_seconds.record(result.kernel_time_s());
        // Cumulative gauges derived from the counters just published, so
        // the gauge is always consistent with the counters on the same
        // scrape to within one cohort.
        let warp = self.warp_instructions.get();
        let lane = self.lane_instructions.get();
        if warp > 0 {
            self.simd_efficiency
                .set(lane as f64 / (warp as f64 * WARP_SIZE as f64));
        }
        let branches = self.branches.get();
        if branches > 0 {
            self.divergence_rate
                .set(self.divergent_branches.get() as f64 / branches as f64);
        }
        let cache = plan_cache_stats();
        self.plan_cache_hits.set(cache.hits);
        self.plan_cache_misses.set(cache.misses);
    }

    /// Record one HyperQ launch group's stream count.
    fn note_stream_group(&self, streams: usize) {
        self.hyperq_streams.record(streams as f64);
    }

    /// Record a faulted cohort.
    fn note_fault(&self) {
        self.faults.inc();
    }
}

/// Interpret a wire request as a Banking request: the page name selects
/// the [`RequestType`], the `SID` cookie carries the session token, and
/// `userid`/`a` parameters fill the positional params (the same fields
/// [`crate::genreq::raw_http`] renders).
///
/// `None` for pages outside the 14 Banking types.
pub fn banking_request_from_http(req: &HttpRequest) -> Option<BankingRequest> {
    let ty = RequestType::from_file_name(req.file_name())?;
    let token = req
        .cookies
        .get(SESSION_COOKIE)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut params = [0u32; 4];
    params[0] = req.params.get_u32("userid").unwrap_or(0);
    params[1] = req.params.get_u32("a").unwrap_or(0);
    Some(BankingRequest::new(ty, token, params))
}

/// The scalar serving path: each cohort member is answered by
/// [`handle_native`], one request at a time on the CPU. Cohort formation
/// still batches requests (useful for comparing overheads), but execution
/// is sequential.
#[derive(Debug)]
pub struct ScalarHandler {
    store: BankStore,
    sessions: SessionArrayHost,
    /// Similarity sub-key table (`None` keys cohorts by type alone).
    subkeys: Option<SubkeyTable>,
    /// Requests served.
    pub served: u64,
}

impl ScalarHandler {
    /// A handler over `store`, with `sessions` as the live session table.
    pub fn new(store: BankStore, sessions: SessionArrayHost) -> Self {
        ScalarHandler {
            store,
            sessions,
            subkeys: None,
            served: 0,
        }
    }

    /// Key cohorts by `(type, similarity sub-key)` instead of type
    /// alone (see [`crate::subkey`]). Purely a grouping hint: responses
    /// are byte-identical with sub-keys on or off.
    #[must_use]
    pub fn with_subkeys(mut self) -> Self {
        self.subkeys = Some(SubkeyTable::BUILTIN);
        self
    }

    /// The live session table (post-traffic state).
    pub fn sessions(&self) -> &SessionArrayHost {
        &self.sessions
    }
}

impl CohortHandler for ScalarHandler {
    fn classify(&self, req: &HttpRequest) -> Option<u32> {
        let b = banking_request_from_http(req)?;
        Some(match &self.subkeys {
            Some(t) => t.composite_key(b.ty, &ParserFeatures::of(req)),
            None => b.ty.id(),
        })
    }

    fn key_name(&self, key: u32) -> String {
        match self.subkeys {
            Some(_) => subkey::key_label(key),
            None => banking_key_name(key),
        }
    }

    fn execute(&mut self, _key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>> {
        requests
            .iter()
            .map(|r| match banking_request_from_http(r) {
                Some(b) => {
                    self.served += 1;
                    handle_native(&b, &self.store, &mut self.sessions)
                }
                // Unreachable for dispatched cohorts (classify gated
                // them), but a short vec would only cost a 500.
                None => Vec::new(),
            })
            .collect()
    }
}

/// The SIMT serving path: each cohort becomes one device run through
/// parse → process → response kernels via [`run_cohort`] — the paper's
/// end-to-end GPU pipeline behind a real socket front end.
///
/// Executor knobs ride on [`CohortOptions`]: with the default options
/// each kernel launch gets the sub-warp packing width the verifier
/// endorses for it (see `CohortOptions::pack`), which changes host
/// simulation throughput and nothing else.
#[derive(Debug)]
pub struct SimtHandler {
    workload: Workload,
    store: BankStore,
    sessions: SessionArrayHost,
    gpu: Gpu,
    opts: CohortOptions,
    /// Cohorts executed on the device.
    pub cohorts: u64,
    /// Requests served across all cohorts.
    pub served: u64,
    /// Modelled device kernel time accumulated across cohorts.
    pub device_time_s: f64,
    /// Cohorts that faulted on the device (answered with 500s).
    pub faults: u64,
    /// Live device counters (when attached to a telemetry registry).
    metrics: Option<DeviceMetrics>,
    /// Similarity sub-key table (`None` keys cohorts by type alone).
    subkeys: Option<SubkeyTable>,
}

impl SimtHandler {
    /// A device-backed handler.
    ///
    /// # Panics
    ///
    /// Panics if `sessions.capacity()` disagrees with
    /// `opts.session_capacity` (the cohort runner requires them equal).
    pub fn new(
        workload: Workload,
        store: BankStore,
        sessions: SessionArrayHost,
        gpu: Gpu,
        opts: CohortOptions,
    ) -> Self {
        assert_eq!(
            sessions.capacity(),
            opts.session_capacity,
            "session array capacity must match cohort options"
        );
        SimtHandler {
            workload,
            store,
            sessions,
            gpu,
            opts,
            cohorts: 0,
            served: 0,
            device_time_s: 0.0,
            faults: 0,
            metrics: None,
            subkeys: None,
        }
    }

    /// Key cohorts by `(type, similarity sub-key)` instead of type
    /// alone (see [`crate::subkey`]): same-shape requests share a warp,
    /// which lifts SIMD efficiency on the divergent parser/stage0
    /// kernels. Purely a grouping hint: responses are byte-identical
    /// with sub-keys on or off.
    #[must_use]
    pub fn with_subkeys(mut self) -> Self {
        self.subkeys = Some(SubkeyTable::BUILTIN);
        self
    }

    /// Publish this handler's device counters into `registry` (one shard's
    /// device registry from [`rhythm_net::Telemetry`]). Metric recording
    /// never alters responses: metered and bare execution stay
    /// bit-identical.
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricRegistry) -> Self {
        self.metrics = Some(DeviceMetrics::register(registry));
        self
    }

    /// The live session table (post-traffic state).
    pub fn sessions(&self) -> &SessionArrayHost {
        &self.sessions
    }

    /// Mean modelled device time per cohort, in seconds.
    pub fn mean_cohort_device_s(&self) -> f64 {
        if self.cohorts == 0 {
            0.0
        } else {
            self.device_time_s / self.cohorts as f64
        }
    }
}

impl CohortHandler for SimtHandler {
    fn classify(&self, req: &HttpRequest) -> Option<u32> {
        let b = banking_request_from_http(req)?;
        Some(match &self.subkeys {
            Some(t) => t.composite_key(b.ty, &ParserFeatures::of(req)),
            None => b.ty.id(),
        })
    }

    fn key_name(&self, key: u32) -> String {
        match self.subkeys {
            Some(_) => subkey::key_label(key),
            None => banking_key_name(key),
        }
    }

    fn execute(&mut self, _key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>> {
        // Re-render each wire request into the canonical ≤512 B slot text
        // the parser kernel consumes. The front end guarantees a
        // non-empty, single-key cohort, so the runner's uniformity
        // requirements hold by construction.
        let reqs: Vec<GeneratedRequest> = requests
            .iter()
            .filter_map(banking_request_from_http)
            .map(|b| GeneratedRequest {
                ty: b.ty,
                token: b.token,
                params: b.params,
                raw: raw_http(b.ty, b.token, &b.params),
            })
            .collect();
        if reqs.is_empty() {
            return Vec::new();
        }
        match run_cohort(
            &self.workload,
            &self.store,
            &mut self.sessions,
            &reqs,
            &self.gpu,
            &self.opts,
        ) {
            Ok(result) => {
                self.cohorts += 1;
                self.served += reqs.len() as u64;
                self.device_time_s += result.kernel_time_s();
                if let Some(m) = &self.metrics {
                    m.note_cohort(&result, reqs.len() as u64);
                    m.note_stream_group(1);
                }
                result.responses
            }
            Err(_) => {
                // A device fault answers the whole cohort with 500s (the
                // front end pads the short vec) instead of killing the
                // server.
                self.faults += 1;
                if let Some(m) = &self.metrics {
                    m.note_fault();
                }
                Vec::new()
            }
        }
    }

    fn execute_many(&mut self, cohorts: &[(u32, Vec<HttpRequest>)]) -> Vec<Vec<Vec<u8>>> {
        // The batched entry point: every cohort the reactor marked in one
        // poll goes through `run_cohorts_hyperq`, which keeps the device
        // saturated by running consecutive session-read-only cohorts as
        // concurrent streams while Login/Logout cohorts stay serial write
        // barriers. Results are bit-identical to calling `execute` per
        // cohort in order.
        let batches: Vec<Vec<GeneratedRequest>> = cohorts
            .iter()
            .map(|(_, requests)| {
                requests
                    .iter()
                    .filter_map(banking_request_from_http)
                    .map(|b| GeneratedRequest {
                        ty: b.ty,
                        token: b.token,
                        params: b.params,
                        raw: raw_http(b.ty, b.token, &b.params),
                    })
                    .collect()
            })
            .collect();
        if batches.iter().any(Vec::is_empty) {
            // An all-unmappable cohort cannot go to the device; fall back
            // to the per-cohort path, which answers it with padded 500s.
            return cohorts
                .iter()
                .map(|(key, reqs)| self.execute(*key, reqs))
                .collect();
        }
        let results = run_cohorts_hyperq(
            &self.workload,
            &self.store,
            &mut self.sessions,
            &batches,
            &self.gpu,
            &self.opts,
        );
        if let Some(m) = &self.metrics {
            // The same planner the runner schedules from, so the metric
            // can never drift from the real grouping: proven session
            // writers are serial barriers (stream group of 1), consecutive
            // proven-read-only cohorts launch as one concurrent group, and
            // off the device path every cohort degrades to serial.
            let shapes: Vec<(RequestType, usize)> =
                batches.iter().map(|b| (b[0].ty, b.len())).collect();
            let groups = plan_stream_groups(
                &self.workload,
                self.store.device_bytes(),
                &shapes,
                &self.opts,
            );
            for g in &groups {
                m.note_stream_group(g.len());
            }
        }
        batches
            .iter()
            .zip(results)
            .map(|(reqs, result)| match result {
                Ok(r) => {
                    self.cohorts += 1;
                    self.served += reqs.len() as u64;
                    self.device_time_s += r.kernel_time_s();
                    if let Some(m) = &self.metrics {
                        m.note_cohort(&r, reqs.len() as u64);
                    }
                    r.responses
                }
                Err(_) => {
                    self.faults += 1;
                    if let Some(m) = &self.metrics {
                        m.note_fault();
                    }
                    Vec::new()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_simt::gpu::GpuConfig;

    fn parse(raw: &[u8]) -> HttpRequest {
        HttpRequest::parse(raw).expect("valid")
    }

    #[test]
    fn http_maps_to_banking_request() {
        let req =
            parse(b"GET /bank/account_summary.php?userid=7 HTTP/1.1\r\nCookie: SID=99\r\n\r\n");
        let b = banking_request_from_http(&req).expect("known page");
        assert_eq!(b.ty, RequestType::AccountSummary);
        assert_eq!(b.token, 99);
        assert_eq!(b.params[0], 7);

        let unknown = parse(b"GET /bank/nope.php HTTP/1.1\r\n\r\n");
        assert!(banking_request_from_http(&unknown).is_none());
    }

    #[test]
    fn scalar_handler_serves_login_and_summary() {
        let store = BankStore::generate(16, 1);
        let sessions = SessionArrayHost::new(64, 0xBEEF);
        let mut h = ScalarHandler::new(store, sessions);

        let login = parse(b"POST /bank/login.php HTTP/1.1\r\nContent-Length: 8\r\n\r\nuserid=3");
        let key = h.classify(&login).expect("login classifies");
        assert_eq!(key, RequestType::Login.id());
        let resp = h.execute(key, std::slice::from_ref(&login));
        assert_eq!(resp.len(), 1);
        let text = String::from_utf8(resp[0].clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        let token: u32 = text
            .split("Set-Cookie: SID=")
            .nth(1)
            .and_then(|t| t.split_whitespace().next())
            .and_then(|t| t.parse().ok())
            .expect("login sets SID");

        let raw = format!(
            "GET /bank/account_summary.php?userid=3 HTTP/1.1\r\nCookie: SID={token}\r\n\r\n"
        );
        let summary = parse(raw.as_bytes());
        let key = h.classify(&summary).expect("summary classifies");
        let resp = h.execute(key, &[summary]);
        assert!(resp[0].starts_with(b"HTTP/1.1 200 OK"));
        assert_eq!(h.served, 2);
    }

    #[test]
    fn simt_handler_matches_native_modulo_padding() {
        let store = BankStore::generate(16, 1);
        let opts = CohortOptions {
            session_capacity: 64,
            ..CohortOptions::default()
        };
        let mut h = SimtHandler::new(
            Workload::build(),
            store.clone(),
            SessionArrayHost::new(64, opts.session_salt),
            Gpu::new(GpuConfig::gtx_titan()),
            opts,
        );
        let mut native_sessions = SessionArrayHost::new(64, h.opts.session_salt);

        let login = parse(b"POST /bank/login.php HTTP/1.1\r\nContent-Length: 8\r\n\r\nuserid=5");
        let key = h.classify(&login).expect("classifies");
        let device = h.execute(key, std::slice::from_ref(&login));
        let b = banking_request_from_http(&login).unwrap();
        let native = handle_native(&b, &store, &mut native_sessions);
        assert!(rhythm_http::padding::eq_modulo_padding(&device[0], &native));
        assert_eq!(h.cohorts, 1);
        assert!(h.device_time_s > 0.0);
    }

    #[test]
    fn device_metrics_track_cohorts_and_streams() {
        let store = BankStore::generate(16, 1);
        let opts = CohortOptions {
            session_capacity: 64,
            ..CohortOptions::default()
        };
        let registry = MetricRegistry::new();
        let mut h = SimtHandler::new(
            Workload::build(),
            store,
            SessionArrayHost::new(64, opts.session_salt),
            Gpu::new(GpuConfig::gtx_titan()),
            opts,
        )
        .with_metrics(&registry);

        let login = parse(b"POST /bank/login.php HTTP/1.1\r\nContent-Length: 8\r\n\r\nuserid=5");
        let key = h.classify(&login).expect("classifies");
        let resp = h.execute(key, std::slice::from_ref(&login));
        assert_eq!(resp.len(), 1);

        // Batched path: a login barrier followed by two read-only cohorts
        // that launch as one two-stream HyperQ group.
        let summary =
            parse(b"GET /bank/account_summary.php?userid=3 HTTP/1.1\r\nCookie: SID=7\r\n\r\n");
        let batch = vec![
            (RequestType::Login.id(), vec![login.clone()]),
            (RequestType::AccountSummary.id(), vec![summary.clone()]),
            (RequestType::AccountSummary.id(), vec![summary]),
        ];
        let out = h.execute_many(&batch);
        assert_eq!(out.len(), 3);

        let metrics = DeviceMetrics::register(&registry);
        assert_eq!(metrics.cohorts.get(), 4);
        assert_eq!(metrics.served.get(), 4);
        assert_eq!(metrics.faults.get(), 0);
        assert!(metrics.launches.get() >= 4);
        assert!(metrics.warp_instructions.get() > 0);
        let eff = metrics.simd_efficiency.get();
        assert!(eff > 0.0 && eff <= 1.0, "efficiency in (0, 1]: {eff}");
        let kernel = metrics.kernel_seconds.snapshot();
        assert_eq!(kernel.count(), 4);
        // Stream groups: one from `execute`, then barrier(1) + group(2).
        let streams = metrics.hyperq_streams.snapshot();
        assert_eq!(streams.count(), 3);
        assert_eq!(streams.max(), 2.0);
        assert_eq!(h.key_name(RequestType::Login.id()), "login.php");
        assert_eq!(h.key_name(999), "key_999");
    }
}
