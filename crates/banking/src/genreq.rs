//! Request generation (paper §5.3.1 "Input Generation").
//!
//! Produces randomized-but-deterministic requests: raw HTTP text for the
//! parser path and the equivalent parsed form for the native path. For
//! request types other than login, session identifiers are pre-created in
//! the session array for random user ids, exactly as the paper's harness
//! does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::native::BankingRequest;
use crate::session_array::SessionArrayHost;
use crate::templates::SESSION_COOKIE;
use crate::types::{RequestType, TABLE2};

/// One generated request: raw bytes plus the expected parsed form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GeneratedRequest {
    /// Request type.
    pub ty: RequestType,
    /// Session token carried in the cookie (0 for login).
    pub token: u32,
    /// Positional parameters (`params[0]` = userid).
    pub params: [u32; 4],
    /// Raw HTTP request text (≤ 512 bytes, the paper's request size).
    pub raw: Vec<u8>,
}

impl GeneratedRequest {
    /// The parsed form consumed by the native handlers.
    pub fn banking_request(&self) -> BankingRequest {
        BankingRequest::new(self.ty, self.token, self.params)
    }
}

/// Types that arrive as POST (form body); the rest are GET.
fn is_post(ty: RequestType) -> bool {
    matches!(
        ty,
        RequestType::Login
            | RequestType::BillPay
            | RequestType::PlaceCheckOrder
            | RequestType::PostPayee
            | RequestType::PostTransfer
            | RequestType::ChangeProfile
    )
}

/// The type-specific second parameter, if any.
fn second_param(ty: RequestType, rng: &mut StdRng) -> Option<u32> {
    match ty {
        RequestType::BillPay | RequestType::PostTransfer => Some(rng.gen_range(100..500_000)),
        RequestType::PlaceCheckOrder => Some(rng.gen_range(1..=5)),
        RequestType::CheckDetailHtml => Some(rng.gen_range(1000..9999)),
        RequestType::PostPayee => Some(rng.gen_range(1..=99)),
        _ => None,
    }
}

/// Deterministic request generator.
#[derive(Debug)]
pub struct RequestGenerator {
    rng: StdRng,
    num_users: u32,
}

impl RequestGenerator {
    /// A generator over `num_users` bank customers.
    pub fn new(num_users: u32, seed: u64) -> Self {
        RequestGenerator {
            rng: StdRng::seed_from_u64(seed),
            num_users,
        }
    }

    /// Generate one request of the given type. Non-login types create a
    /// session in `sessions` (panicking if the table is full, which
    /// indicates a mis-sized experiment).
    ///
    /// # Panics
    ///
    /// Panics when the session array is full.
    pub fn one(&mut self, ty: RequestType, sessions: &mut SessionArrayHost) -> GeneratedRequest {
        let userid = self.rng.gen_range(0..self.num_users);
        let token = if ty.is_login() {
            0
        } else {
            sessions
                .insert(userid)
                .expect("session array full during generation")
        };
        let mut params = [0u32; 4];
        params[0] = userid;
        if let Some(p1) = second_param(ty, &mut self.rng) {
            params[1] = p1;
        }
        let raw = raw_http(ty, token, &params);
        GeneratedRequest {
            ty,
            token,
            params,
            raw,
        }
    }

    /// Generate `count` requests of one type.
    pub fn uniform(
        &mut self,
        ty: RequestType,
        count: usize,
        sessions: &mut SessionArrayHost,
    ) -> Vec<GeneratedRequest> {
        (0..count).map(|_| self.one(ty, sessions)).collect()
    }

    /// Generate `count` requests following the Table 2 mix.
    pub fn mixed(
        &mut self,
        count: usize,
        sessions: &mut SessionArrayHost,
    ) -> Vec<GeneratedRequest> {
        (0..count)
            .map(|_| {
                let ty = self.sample_type();
                self.one(ty, sessions)
            })
            .collect()
    }

    /// Sample a request type from the Table 2 distribution.
    pub fn sample_type(&mut self) -> RequestType {
        let x: f64 = self.rng.gen_range(0.0..100.0);
        let mut acc = 0.0;
        for info in &TABLE2 {
            acc += info.mix_percent;
            if x < acc {
                return info.ty;
            }
        }
        RequestType::Login
    }
}

/// Render the raw HTTP text for a request.
pub fn raw_http(ty: RequestType, token: u32, params: &[u32; 4]) -> Vec<u8> {
    let file = ty.file_name();
    let mut form = format!("userid={}", params[0]);
    if params[1] != 0 {
        form.push_str(&format!("&a={}", params[1]));
    }
    let cookie = if token != 0 {
        format!("Cookie: {SESSION_COOKIE}={token}\r\n")
    } else {
        String::new()
    };
    let text = if is_post(ty) {
        format!(
            "POST /bank/{file} HTTP/1.1\r\nHost: bank.example.com\r\n{cookie}User-Agent: SPECWeb/2009\r\nContent-Length: {}\r\n\r\n{form}",
            form.len()
        )
    } else {
        format!(
            "GET /bank/{file}?{form} HTTP/1.1\r\nHost: bank.example.com\r\n{cookie}User-Agent: SPECWeb/2009\r\n\r\n"
        )
    };
    assert!(text.len() <= 512, "request exceeds the 512 B slot");
    text.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_http::HttpRequest;

    #[test]
    fn generation_is_deterministic() {
        let mut s1 = SessionArrayHost::new(256, 1);
        let mut s2 = SessionArrayHost::new(256, 1);
        let a = RequestGenerator::new(100, 5).mixed(50, &mut s1);
        let b = RequestGenerator::new(100, 5).mixed(50, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn raw_requests_parse_with_http_substrate() {
        let mut sessions = SessionArrayHost::new(512, 0xAA);
        let mut g = RequestGenerator::new(64, 9);
        for ty in RequestType::ALL {
            let r = g.one(ty, &mut sessions);
            let parsed = HttpRequest::parse(&r.raw).expect("valid http");
            assert_eq!(parsed.file_name(), ty.file_name());
            assert_eq!(
                parsed.params.get_u32("userid"),
                Some(r.params[0]),
                "{ty}: userid"
            );
            if r.token != 0 {
                assert_eq!(
                    parsed.cookies.get(SESSION_COOKIE),
                    Some(r.token.to_string().as_str())
                );
            }
        }
    }

    #[test]
    fn login_has_no_cookie() {
        let mut sessions = SessionArrayHost::new(64, 0);
        let mut g = RequestGenerator::new(8, 1);
        let r = g.one(RequestType::Login, &mut sessions);
        assert_eq!(r.token, 0);
        assert!(!String::from_utf8(r.raw).unwrap().contains("Cookie"));
        assert!(sessions.is_empty());
    }

    #[test]
    fn non_login_creates_session() {
        let mut sessions = SessionArrayHost::new(64, 0x77);
        let mut g = RequestGenerator::new(8, 2);
        let r = g.one(RequestType::Transfer, &mut sessions);
        assert_eq!(sessions.lookup(r.token), Some(r.params[0]));
    }

    #[test]
    fn mix_distribution_roughly_matches_table2() {
        let mut sessions = SessionArrayHost::new(65536, 0x3);
        let mut g = RequestGenerator::new(1000, 42);
        let reqs = g.mixed(20_000, &mut sessions);
        let logins = reqs.iter().filter(|r| r.ty.is_login()).count() as f64;
        let frac = logins / reqs.len() as f64 * 100.0;
        assert!((frac - 28.17).abs() < 2.0, "login fraction {frac}");
        let payees = reqs
            .iter()
            .filter(|r| r.ty == RequestType::PostPayee)
            .count() as f64;
        let frac = payees / reqs.len() as f64 * 100.0;
        assert!((frac - 1.05).abs() < 0.6, "post_payee fraction {frac}");
    }

    #[test]
    fn requests_fit_slot() {
        let mut sessions = SessionArrayHost::new(1024, 0xF);
        let mut g = RequestGenerator::new(1_000_000, 7);
        for _ in 0..200 {
            let ty = g.sample_type();
            let r = g.one(ty, &mut sessions);
            assert!(r.raw.len() <= 512);
        }
    }
}
