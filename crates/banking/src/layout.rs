//! Device-memory layout for one cohort and the kernel parameter
//! conventions shared by every banking kernel.
//!
//! A cohort of `N` requests owns five 2-D buffer regions (paper §5.3:
//! 512 B request slots, 1 KB backend requests, 4 KB backend responses,
//! and a power-of-two response buffer per type) plus the session array and
//! the device backend store. Each 2-D buffer can be laid out row-major
//! (lane-contiguous) or transposed (element-interleaved); kernels receive
//! `(lane_stride, elem_stride)` pairs so the *same program* runs either
//! layout — the instruction stream is identical, only the memory system
//! sees the difference.

use rhythm_simt::mem::DeviceMemory;
use rhythm_simt::MemError;

/// Bytes per raw request slot (paper: 512 B requests).
pub const REQBUF_BYTES: u32 = 512;
/// Bytes per backend request slot (paper: 1 KB).
pub const BREQ_BYTES: u32 = 1024;
/// Bytes per backend response slot (paper: 4 KB).
pub const BRESP_BYTES: u32 = 4096;
/// Words per parsed request struct.
pub const STRUCT_WORDS: u32 = 12;

// ---- launch parameter indices (every kernel uses the same table) -------

/// Cohort size `N`.
pub const P_COHORT: u16 = 0;
/// Layout flag (0 = row-major, 1 = transposed) — informational.
pub const P_LAYOUT: u16 = 1;
/// Response buffer base / slot size / lane stride / element stride.
pub const P_RESP_BASE: u16 = 2;
/// See [`P_RESP_BASE`].
pub const P_RESP_SIZE: u16 = 3;
/// See [`P_RESP_BASE`].
pub const P_RESP_LSTRIDE: u16 = 4;
/// See [`P_RESP_BASE`].
pub const P_RESP_ESTRIDE: u16 = 5;
/// Backend request buffer base / size / strides.
pub const P_BREQ_BASE: u16 = 6;
/// See [`P_BREQ_BASE`].
pub const P_BREQ_SIZE: u16 = 7;
/// See [`P_BREQ_BASE`].
pub const P_BREQ_LSTRIDE: u16 = 8;
/// See [`P_BREQ_BASE`].
pub const P_BREQ_ESTRIDE: u16 = 9;
/// Backend response buffer base / size / strides.
pub const P_BRESP_BASE: u16 = 10;
/// See [`P_BRESP_BASE`].
pub const P_BRESP_SIZE: u16 = 11;
/// See [`P_BRESP_BASE`].
pub const P_BRESP_LSTRIDE: u16 = 12;
/// See [`P_BRESP_BASE`].
pub const P_BRESP_ESTRIDE: u16 = 13;
/// Parsed request struct base (always column-major words).
pub const P_STRUCT_BASE: u16 = 14;
/// Session array base / capacity / token salt.
pub const P_SESSION_BASE: u16 = 15;
/// See [`P_SESSION_BASE`].
pub const P_SESSION_CAP: u16 = 16;
/// See [`P_SESSION_BASE`].
pub const P_SESSION_SALT: u16 = 17;
/// Device backend store base.
pub const P_STORE_BASE: u16 = 18;
/// Raw request buffer base / size / strides.
pub const P_REQBUF_BASE: u16 = 19;
/// See [`P_REQBUF_BASE`].
pub const P_REQBUF_SIZE: u16 = 20;
/// See [`P_REQBUF_BASE`].
pub const P_REQBUF_LSTRIDE: u16 = 21;
/// See [`P_REQBUF_BASE`].
pub const P_REQBUF_ESTRIDE: u16 = 22;
/// Number of users in the device backend store (bounds checking).
pub const P_STORE_USERS: u16 = 23;
/// Number of launch parameters.
pub const PARAM_COUNT: usize = 24;

// ---- request struct fields (word indices) --------------------------------

/// Request type id.
pub const F_TYPE: u32 = 0;
/// Session token from the cookie (0 when absent).
pub const F_TOKEN: u32 = 1;
/// Positional parameters p0..p3 (p0 = userid).
pub const F_P0: u32 = 2;
/// See [`F_P0`].
pub const F_P1: u32 = 3;
/// See [`F_P0`].
pub const F_P2: u32 = 4;
/// See [`F_P0`].
pub const F_P3: u32 = 5;
/// Status: 0 = ok, 1 = forbidden (error paths, paper §4.4).
pub const F_STATUS: u32 = 6;
/// Response length in bytes (set by the response-generation stage).
pub const F_RESP_LEN: u32 = 7;
/// Backend request length in bytes (set by backend-request stages).
pub const F_BREQ_LEN: u32 = 8;
/// Token created at login (response stage emits it in `Set-Cookie`).
pub const F_NEWTOKEN: u32 = 9;
/// Resolved user id (set by session validation).
pub const F_USERID: u32 = 10;

/// Byte layout of one cohort's device memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CohortLayout {
    /// Lanes (requests) per cohort.
    pub cohort: u32,
    /// Response slot bytes (power of two, per request type).
    pub resp_size: u32,
    /// Transposed (true) or row-major (false) buffers.
    pub transposed: bool,
    /// Session array capacity in nodes.
    pub session_capacity: u32,
    /// Session token salt.
    pub session_salt: u32,
    /// Raw request region base.
    pub reqbuf_base: u32,
    /// Parsed struct region base.
    pub struct_base: u32,
    /// Backend request region base.
    pub breq_base: u32,
    /// Backend response region base.
    pub bresp_base: u32,
    /// Response region base.
    pub resp_base: u32,
    /// Session array base.
    pub session_base: u32,
    /// Device backend store base.
    pub store_base: u32,
    /// Store size in bytes.
    pub store_bytes: u32,
    /// User records in the store (`store_bytes / RECORD_BYTES`).
    pub store_users: u32,
    /// Total device bytes needed.
    pub total_bytes: u32,
}

impl CohortLayout {
    /// Lay out the regions sequentially. `store_bytes` may be zero when
    /// the cohort never touches a device backend (Titan A).
    pub fn new(
        cohort: u32,
        resp_size: u32,
        session_capacity: u32,
        session_salt: u32,
        store_bytes: u32,
        transposed: bool,
    ) -> Self {
        let align = |x: u32| (x + 127) & !127;
        let reqbuf_base = 0;
        let struct_base = align(reqbuf_base + cohort * REQBUF_BYTES);
        let breq_base = align(struct_base + cohort * STRUCT_WORDS * 4);
        let bresp_base = align(breq_base + cohort * BREQ_BYTES);
        let resp_base = align(bresp_base + cohort * BRESP_BYTES);
        let session_base = align(resp_base + cohort * resp_size);
        let store_base = align(session_base + session_capacity * crate::session_array::NODE_BYTES);
        let total_bytes = align(store_base + store_bytes);
        CohortLayout {
            cohort,
            resp_size,
            transposed,
            session_capacity,
            session_salt,
            reqbuf_base,
            struct_base,
            breq_base,
            bresp_base,
            resp_base,
            session_base,
            store_base,
            store_bytes,
            store_users: store_bytes / crate::backend::RECORD_BYTES,
            total_bytes,
        }
    }

    /// The declared global-memory spans of this layout, in the form the
    /// effect-summary engine anchors data-dependent addresses against
    /// (`rhythm_verify::effects::RegionMap`). One span per region, in
    /// ascending order; the 128-byte alignment gaps between regions are
    /// deliberately excluded so a claim never silently bleeds into a
    /// neighbour.
    pub fn regions(&self) -> rhythm_verify::effects::RegionMap {
        let span = |base: u32, bytes: u32| (base as u64, base as u64 + bytes as u64);
        rhythm_verify::effects::RegionMap::new(vec![
            span(self.reqbuf_base, self.cohort * REQBUF_BYTES),
            span(self.struct_base, self.cohort * STRUCT_WORDS * 4),
            span(self.breq_base, self.cohort * BREQ_BYTES),
            span(self.bresp_base, self.cohort * BRESP_BYTES),
            span(self.resp_base, self.cohort * self.resp_size),
            span(
                self.session_base,
                self.session_capacity * crate::session_array::NODE_BYTES,
            ),
            span(self.store_base, self.store_bytes),
        ])
    }

    /// The session array's `[lo, hi)` byte span in device memory — the
    /// range whose write footprint decides HyperQ stream independence.
    pub fn session_span(&self) -> (u64, u64) {
        let lo = self.session_base as u64;
        let bytes = self.session_capacity as u64 * crate::session_array::NODE_BYTES as u64;
        (lo, lo + bytes)
    }

    /// `(lane_stride, elem_stride)` for a buffer of `slot` bytes under
    /// this layout.
    pub fn strides(&self, slot: u32) -> (u32, u32) {
        if self.transposed {
            (1, self.cohort)
        } else {
            (slot, 1)
        }
    }

    /// The standardized launch-parameter vector.
    pub fn params(&self) -> Vec<u32> {
        let (resp_ls, resp_es) = self.strides(self.resp_size);
        let (breq_ls, breq_es) = self.strides(BREQ_BYTES);
        let (bresp_ls, bresp_es) = self.strides(BRESP_BYTES);
        let (req_ls, req_es) = self.strides(REQBUF_BYTES);
        let mut p = vec![0u32; PARAM_COUNT];
        p[P_COHORT as usize] = self.cohort;
        p[P_LAYOUT as usize] = self.transposed as u32;
        p[P_RESP_BASE as usize] = self.resp_base;
        p[P_RESP_SIZE as usize] = self.resp_size;
        p[P_RESP_LSTRIDE as usize] = resp_ls;
        p[P_RESP_ESTRIDE as usize] = resp_es;
        p[P_BREQ_BASE as usize] = self.breq_base;
        p[P_BREQ_SIZE as usize] = BREQ_BYTES;
        p[P_BREQ_LSTRIDE as usize] = breq_ls;
        p[P_BREQ_ESTRIDE as usize] = breq_es;
        p[P_BRESP_BASE as usize] = self.bresp_base;
        p[P_BRESP_SIZE as usize] = BRESP_BYTES;
        p[P_BRESP_LSTRIDE as usize] = bresp_ls;
        p[P_BRESP_ESTRIDE as usize] = bresp_es;
        p[P_STRUCT_BASE as usize] = self.struct_base;
        p[P_SESSION_BASE as usize] = self.session_base;
        p[P_SESSION_CAP as usize] = self.session_capacity;
        p[P_SESSION_SALT as usize] = self.session_salt;
        p[P_STORE_BASE as usize] = self.store_base;
        p[P_REQBUF_BASE as usize] = self.reqbuf_base;
        p[P_REQBUF_SIZE as usize] = REQBUF_BYTES;
        p[P_REQBUF_LSTRIDE as usize] = req_ls;
        p[P_REQBUF_ESTRIDE as usize] = req_es;
        p[P_STORE_USERS as usize] = self.store_users;
        p
    }

    /// Address of word `field` of lane `lane`'s request struct (structs
    /// are always stored column-major so warp accesses coalesce).
    pub fn struct_addr(&self, lane: u32, field: u32) -> u32 {
        self.struct_base + (field * self.cohort + lane) * 4
    }

    /// Read a struct field from device memory.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds access.
    pub fn read_struct(&self, mem: &DeviceMemory, lane: u32, field: u32) -> Result<u32, MemError> {
        mem.read_word(self.struct_addr(lane, field))
    }

    /// Write a struct field into device memory.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds access.
    pub fn write_struct(
        &self,
        mem: &mut DeviceMemory,
        lane: u32,
        field: u32,
        value: u32,
    ) -> Result<(), MemError> {
        mem.write_word(self.struct_addr(lane, field), value)
    }

    /// Byte address of element `pos` of lane `lane` within the buffer at
    /// `base` with `slot` bytes per lane.
    pub fn elem_addr(&self, base: u32, slot: u32, lane: u32, pos: u32) -> u32 {
        let (ls, es) = self.strides(slot);
        base + lane * ls + pos * es
    }

    /// Gather lane `lane`'s logical buffer (respecting the layout) from
    /// device memory.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds access.
    pub fn read_lane(
        &self,
        mem: &DeviceMemory,
        base: u32,
        slot: u32,
        lane: u32,
    ) -> Result<Vec<u8>, MemError> {
        if self.transposed {
            (0..slot)
                .map(|pos| {
                    mem.read_byte(self.elem_addr(base, slot, lane, pos))
                        .map(|b| b as u8)
                })
                .collect()
        } else {
            mem.slice(base + lane * slot, slot).map(<[u8]>::to_vec)
        }
    }

    /// Scatter `data` into lane `lane`'s logical buffer.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds access.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the slot size.
    pub fn write_lane(
        &self,
        mem: &mut DeviceMemory,
        base: u32,
        slot: u32,
        lane: u32,
        data: &[u8],
    ) -> Result<(), MemError> {
        assert!(data.len() <= slot as usize, "lane data exceeds slot");
        if self.transposed {
            for (pos, &b) in data.iter().enumerate() {
                mem.write_byte(self.elem_addr(base, slot, lane, pos as u32), b as u32)?;
            }
            Ok(())
        } else {
            mem.load(base + lane * slot, data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let l = CohortLayout::new(256, 32 * 1024, 1024, 0xAB, 64 * 2048, true);
        assert!(l.struct_base >= l.reqbuf_base + 256 * REQBUF_BYTES);
        assert!(l.breq_base >= l.struct_base + 256 * STRUCT_WORDS * 4);
        assert!(l.bresp_base >= l.breq_base + 256 * BREQ_BYTES);
        assert!(l.resp_base >= l.bresp_base + 256 * BRESP_BYTES);
        assert!(l.session_base >= l.resp_base + 256 * 32 * 1024);
        assert!(l.store_base >= l.session_base + 1024 * 16);
        assert!(l.total_bytes >= l.store_base + 64 * 2048);
    }

    #[test]
    fn strides_by_layout() {
        let row = CohortLayout::new(128, 8192, 128, 0, 0, false);
        assert_eq!(row.strides(8192), (8192, 1));
        let col = CohortLayout::new(128, 8192, 128, 0, 0, true);
        assert_eq!(col.strides(8192), (1, 128));
    }

    #[test]
    fn params_vector_consistent() {
        let l = CohortLayout::new(64, 16384, 256, 7, 1024, true);
        let p = l.params();
        assert_eq!(p.len(), PARAM_COUNT);
        assert_eq!(p[P_COHORT as usize], 64);
        assert_eq!(p[P_RESP_SIZE as usize], 16384);
        assert_eq!(p[P_RESP_LSTRIDE as usize], 1);
        assert_eq!(p[P_RESP_ESTRIDE as usize], 64);
        assert_eq!(p[P_SESSION_SALT as usize], 7);
    }

    #[test]
    fn lane_roundtrip_both_layouts() {
        for transposed in [false, true] {
            let l = CohortLayout::new(8, 1024, 8, 0, 0, transposed);
            let mut mem = DeviceMemory::new(l.total_bytes as usize);
            l.write_lane(&mut mem, l.resp_base, l.resp_size, 3, b"hello lane three")
                .unwrap();
            let back = l.read_lane(&mem, l.resp_base, l.resp_size, 3).unwrap();
            assert_eq!(&back[..16], b"hello lane three");
            // Other lanes untouched.
            let other = l.read_lane(&mem, l.resp_base, l.resp_size, 2).unwrap();
            assert!(other.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn struct_fields_roundtrip() {
        let l = CohortLayout::new(16, 1024, 16, 0, 0, true);
        let mut mem = DeviceMemory::new(l.total_bytes as usize);
        l.write_struct(&mut mem, 5, F_TOKEN, 0xFEED).unwrap();
        l.write_struct(&mut mem, 5, F_P0, 42).unwrap();
        assert_eq!(l.read_struct(&mem, 5, F_TOKEN).unwrap(), 0xFEED);
        assert_eq!(l.read_struct(&mem, 5, F_P0).unwrap(), 42);
        assert_eq!(l.read_struct(&mem, 4, F_TOKEN).unwrap(), 0);
    }

    #[test]
    fn transposed_adjacent_lanes_adjacent_bytes() {
        let l = CohortLayout::new(32, 512, 32, 0, 0, true);
        let a0 = l.elem_addr(l.resp_base, 512, 0, 7);
        let a1 = l.elem_addr(l.resp_base, 512, 1, 7);
        assert_eq!(a1, a0 + 1, "same element, next lane → next byte");
    }
}
