//! BeSim-style banking backend: an in-memory store with a pipe-delimited
//! text protocol.
//!
//! SPECWeb2009 pairs the web frontend with "BeSim", a backend simulator
//! serving account data. We reproduce it as [`BankStore`]:
//!
//! * the **native** (CPU) handlers call [`BankStore::respond`] directly —
//!   the paper's "implement the backend as a function call" (§5.3.2);
//! * the **device** path serializes every user's command responses into
//!   fixed-size records in device global memory
//!   ([`BankStore::serialize_device`]), where the backend kernel
//!   (`kernels::backend`) answers requests without leaving the GPU —
//!   the paper's Titan B/C "device backend";
//! * **Titan A** runs the same text protocol across the modelled PCIe bus.
//!
//! Protocol: request `"<cmd>|<userid>|<args...>\n"`, response a
//! pipe-delimited field list terminated by `\n` (see [`BackendCmd`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Bytes reserved per command slot in a device store record.
pub const SLOT_BYTES: u32 = 256;
/// Command slots per user record.
pub const SLOTS: u32 = 7;
/// Bytes per user record in the device store (power of two for cheap
/// addressing: `record = store_base + userid * RECORD_BYTES`).
pub const RECORD_BYTES: u32 = 2048;

/// Backend commands; the numeric value is the on-wire command id.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BackendCmd {
    /// Credential check → `OK|<userid>` (errors reply `!ERR`).
    Auth = 0,
    /// Account list → `<n>|<bal_cents_0>|...`.
    Accounts = 1,
    /// Profile → `<name>|<address>|<email>|<phone>`.
    Profile = 2,
    /// Payment/transfer history → `<k>|<amt>|<payee>|...`.
    History = 3,
    /// Execute a payment → `OK|<confirmation>|<new_balance_cents>`.
    Pay = 4,
    /// Check order → `OK|<order_number>|<fee_cents>`.
    Order = 5,
    /// Registered payees → `<k>|<name_0>|...` (used by the quick-pay
    /// extension).
    Payees = 6,
}

impl BackendCmd {
    /// All commands in slot order.
    pub const ALL: [BackendCmd; 7] = [
        BackendCmd::Auth,
        BackendCmd::Accounts,
        BackendCmd::Profile,
        BackendCmd::History,
        BackendCmd::Pay,
        BackendCmd::Order,
        BackendCmd::Payees,
    ];

    /// On-wire command id.
    pub fn id(self) -> u32 {
        self as u32
    }

    /// Inverse of [`BackendCmd::id`].
    pub fn from_id(id: u32) -> Option<BackendCmd> {
        Self::ALL.get(id as usize).copied()
    }
}

/// One bank account.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Account {
    /// Account number.
    pub number: u32,
    /// Balance in cents.
    pub balance_cents: u32,
}

/// A registered payee.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Payee {
    /// Payee id.
    pub id: u32,
    /// Display name.
    pub name: String,
}

/// One transaction history entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Txn {
    /// Amount in cents.
    pub amount_cents: u32,
    /// Payee display name.
    pub payee: String,
}

/// One bank customer.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct User {
    /// User id (also the record index).
    pub id: u32,
    /// Display name.
    pub name: String,
    /// Street address.
    pub address: String,
    /// Email address.
    pub email: String,
    /// Phone number.
    pub phone: String,
    /// 2–4 accounts.
    pub accounts: Vec<Account>,
    /// 2–5 payees.
    pub payees: Vec<Payee>,
    /// 2–6 history entries.
    pub txns: Vec<Txn>,
}

const FIRST_NAMES: [&str; 8] = [
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Radia", "Ken",
];
const LAST_NAMES: [&str; 8] = [
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Perlman", "Thompson",
];
const STREETS: [&str; 6] = [
    "Maple Ave",
    "Oak St",
    "Elm Dr",
    "Birch Ln",
    "Cedar Ct",
    "Walnut Blvd",
];
const PAYEE_NAMES: [&str; 8] = [
    "Electric Company",
    "City Water",
    "Gas Works",
    "Telecom One",
    "Mortgage Trust",
    "Insurance Co",
    "Cable Plus",
    "Campus Gym",
];

/// The in-memory bank: deterministic synthetic data for `num_users`
/// customers.
///
/// # Example
///
/// ```
/// use rhythm_banking::backend::{BankStore, BackendCmd};
///
/// let store = BankStore::generate(128, 42);
/// let resp = store.respond(BackendCmd::Accounts, 7, &[]);
/// let n: usize = resp.split('|').next().unwrap().parse().unwrap();
/// assert!((2..=4).contains(&n));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BankStore {
    users: Vec<User>,
}

impl BankStore {
    /// Generate `num_users` users deterministically from `seed`.
    pub fn generate(num_users: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = (0..num_users)
            .map(|id| {
                let name = format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
                );
                let address = format!(
                    "{} {}, Springfield",
                    rng.gen_range(1..9999),
                    STREETS[rng.gen_range(0..STREETS.len())]
                );
                let email = format!("user{id}@example.com");
                let phone = format!(
                    "555-{:03}-{:04}",
                    rng.gen_range(100..999),
                    rng.gen_range(1000..9999)
                );
                let accounts = (0..rng.gen_range(2..=4))
                    .map(|i| Account {
                        number: id * 10 + i,
                        balance_cents: rng.gen_range(100..500_000_000),
                    })
                    .collect();
                let payees = (0..rng.gen_range(2..=5))
                    .map(|i| Payee {
                        id: i,
                        name: PAYEE_NAMES[rng.gen_range(0..PAYEE_NAMES.len())].to_string(),
                    })
                    .collect();
                let txns = (0..rng.gen_range(2..=6))
                    .map(|_| Txn {
                        amount_cents: rng.gen_range(100..500_000),
                        payee: PAYEE_NAMES[rng.gen_range(0..PAYEE_NAMES.len())].to_string(),
                    })
                    .collect();
                User {
                    id,
                    name,
                    address,
                    email,
                    phone,
                    accounts,
                    payees,
                    txns,
                }
            })
            .collect();
        BankStore { users }
    }

    /// Number of users.
    pub fn num_users(&self) -> u32 {
        self.users.len() as u32
    }

    /// Look up one user.
    pub fn user(&self, id: u32) -> Option<&User> {
        self.users.get(id as usize)
    }

    /// Answer one backend command — the "function call backend" used by
    /// the native CPU path. Unknown users yield `"!ERR"`.
    ///
    /// `args` carries command arguments (e.g. payment amount in cents);
    /// they influence the Pay/Order confirmations deterministically.
    pub fn respond(&self, cmd: BackendCmd, userid: u32, args: &[u32]) -> String {
        let Some(user) = self.user(userid) else {
            return "!ERR".to_string();
        };
        match cmd {
            BackendCmd::Auth => format!("OK|{}", user.id),
            BackendCmd::Accounts => {
                let mut s = user.accounts.len().to_string();
                for a in &user.accounts {
                    s.push('|');
                    s.push_str(&a.balance_cents.to_string());
                }
                s
            }
            BackendCmd::Profile => format!(
                "{}|{}|{}|{}",
                user.name, user.address, user.email, user.phone
            ),
            BackendCmd::History => {
                let mut s = user.txns.len().to_string();
                for t in &user.txns {
                    s.push('|');
                    s.push_str(&t.amount_cents.to_string());
                    s.push('|');
                    s.push_str(&t.payee);
                }
                s
            }
            BackendCmd::Pay => {
                let amount = args.first().copied().unwrap_or(0);
                let confirmation = confirmation_number(user.id, amount);
                let balance = user.accounts[0].balance_cents.saturating_sub(amount);
                format!("OK|{confirmation}|{balance}")
            }
            BackendCmd::Order => {
                let qty = args.first().copied().unwrap_or(1);
                let order = confirmation_number(user.id, qty.wrapping_mul(7919));
                format!("OK|{order}|{}", 1_95 * qty.max(1))
            }
            BackendCmd::Payees => {
                let mut s = user.payees.len().to_string();
                for p in &user.payees {
                    s.push('|');
                    s.push_str(&p.name);
                }
                s
            }
        }
    }

    /// Build the one-line request text for a command (what process stage 1
    /// kernels generate and the wire carries).
    pub fn request_text(cmd: BackendCmd, userid: u32, args: &[u32]) -> String {
        let mut s = format!("{}|{}", cmd.id(), userid);
        for a in args {
            s.push('|');
            s.push_str(&a.to_string());
        }
        s.push('\n');
        s
    }

    /// Parse a request line back into `(cmd, userid, args)`.
    pub fn parse_request(text: &str) -> Option<(BackendCmd, u32, Vec<u32>)> {
        let mut it = text.trim_end_matches('\n').split('|');
        let cmd = BackendCmd::from_id(it.next()?.parse().ok()?)?;
        let userid = it.next()?.parse().ok()?;
        let args = it.filter_map(|a| a.parse().ok()).collect();
        Some((cmd, userid, args))
    }

    /// Serialize the store for the device backend: one
    /// [`RECORD_BYTES`]-byte record per user, with the response text for
    /// command `c` at slot offset `c * SLOT_BYTES`, `\n`-terminated.
    ///
    /// Pay/Order responses are serialized with zero args; the device
    /// backend models a key-value cache hit (the paper's "local device
    /// backend emulates a high throughput key-value store").
    pub fn serialize_device(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.users.len() * RECORD_BYTES as usize];
        for user in &self.users {
            let base = user.id as usize * RECORD_BYTES as usize;
            for cmd in BackendCmd::ALL {
                let mut text = self.respond(cmd, user.id, &[]);
                text.push('\n');
                let bytes = text.as_bytes();
                assert!(
                    bytes.len() <= SLOT_BYTES as usize,
                    "slot overflow: {} bytes for cmd {:?}",
                    bytes.len(),
                    cmd
                );
                let off = base + (cmd.id() * SLOT_BYTES) as usize;
                out[off..off + bytes.len()].copy_from_slice(bytes);
            }
        }
        out
    }

    /// Total device-store size in bytes for this user count.
    pub fn device_bytes(&self) -> u32 {
        self.users.len() as u32 * RECORD_BYTES
    }
}

/// Deterministic confirmation number from user and amount.
pub fn confirmation_number(userid: u32, amount: u32) -> u32 {
    let mut x = userid
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(amount.wrapping_mul(0x85EB_CA6B));
    x ^= x >> 16;
    // Keep it positive-decimal-friendly and below 10 digits.
    x % 1_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = BankStore::generate(16, 7);
        let b = BankStore::generate(16, 7);
        assert_eq!(a, b);
        let c = BankStore::generate(16, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn user_shape_bounds() {
        let store = BankStore::generate(64, 1);
        for id in 0..64 {
            let u = store.user(id).unwrap();
            assert!((2..=4).contains(&u.accounts.len()));
            assert!((2..=5).contains(&u.payees.len()));
            assert!((2..=6).contains(&u.txns.len()));
        }
    }

    #[test]
    fn unknown_user_errs() {
        let store = BankStore::generate(4, 1);
        assert_eq!(store.respond(BackendCmd::Auth, 99, &[]), "!ERR");
    }

    #[test]
    fn accounts_response_parses() {
        let store = BankStore::generate(8, 2);
        let resp = store.respond(BackendCmd::Accounts, 3, &[]);
        let fields: Vec<_> = resp.split('|').collect();
        let n: usize = fields[0].parse().unwrap();
        assert_eq!(fields.len(), n + 1);
    }

    #[test]
    fn request_text_roundtrip() {
        let text = BankStore::request_text(BackendCmd::Pay, 42, &[1999]);
        assert_eq!(text, "4|42|1999\n");
        let (cmd, user, args) = BankStore::parse_request(&text).unwrap();
        assert_eq!(cmd, BackendCmd::Pay);
        assert_eq!(user, 42);
        assert_eq!(args, vec![1999]);
    }

    #[test]
    fn parse_request_rejects_garbage() {
        assert!(BankStore::parse_request("love|letters").is_none());
        assert!(BankStore::parse_request("9|1").is_none(), "unknown cmd id");
    }

    #[test]
    fn device_serialization_layout() {
        let store = BankStore::generate(8, 3);
        let img = store.serialize_device();
        assert_eq!(img.len(), 8 * RECORD_BYTES as usize);
        // User 5's Accounts slot contains its Accounts response.
        let expect = {
            let mut t = store.respond(BackendCmd::Accounts, 5, &[]);
            t.push('\n');
            t
        };
        let off = 5 * RECORD_BYTES as usize + (BackendCmd::Accounts.id() * SLOT_BYTES) as usize;
        assert_eq!(&img[off..off + expect.len()], expect.as_bytes());
    }

    #[test]
    fn pay_deducts_from_first_account() {
        let store = BankStore::generate(4, 9);
        let bal0 = store.user(1).unwrap().accounts[0].balance_cents;
        let resp = store.respond(BackendCmd::Pay, 1, &[500]);
        let fields: Vec<_> = resp.split('|').collect();
        assert_eq!(fields[0], "OK");
        let new_bal: u32 = fields[2].parse().unwrap();
        assert_eq!(new_bal, bal0.saturating_sub(500));
    }

    #[test]
    fn cmd_ids_roundtrip() {
        for cmd in BackendCmd::ALL {
            assert_eq!(BackendCmd::from_id(cmd.id()), Some(cmd));
        }
        assert_eq!(BackendCmd::from_id(7), None);
    }

    #[test]
    fn confirmation_is_deterministic_and_bounded() {
        assert_eq!(confirmation_number(5, 10), confirmation_number(5, 10));
        assert!(confirmation_number(u32::MAX, u32::MAX) < 1_000_000_000);
    }
}
