//! The [`Recorder`] trait and its two implementations: the zero-cost
//! [`NoopRecorder`] and the collecting [`TraceRecorder`].
//!
//! The trait is deliberately *observational*: a recorder can only be told
//! about events, never queried by instrumented code for anything that
//! could alter control flow (the one exception, [`Recorder::enabled`], is
//! a constant per implementation). This is what lets the pipeline and the
//! SIMT executor guarantee bit-identical results with and without a
//! recorder attached.
//!
//! Two clock domains coexist in one trace (see [`Clock`]):
//!
//! * **Virtual** — the pipeline simulation's discrete-event clock,
//!   stamped by the caller in microseconds of virtual time;
//! * **Wall** — host wall time for the SIMT worker pool, measured against
//!   the recorder's own origin via [`Recorder::wall_now_us`].

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::hist::StreamingHistogram;

/// Which clock an event's timestamp belongs to.
///
/// The Chrome exporter maps each domain to its own process group so the
/// two timelines never visually interleave.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Clock {
    /// The pipeline simulation's virtual time.
    Virtual,
    /// Host wall time relative to the recorder's origin.
    Wall,
}

/// One argument value attached to an event.
#[derive(Copy, Clone, Debug)]
pub enum ArgValue<'a> {
    /// Unsigned counter-like argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument (kernel names, FSM states, ...).
    Str(&'a str),
}

/// Owned counterpart of [`ArgValue`] stored by the collecting recorder.
#[derive(Clone, Debug)]
pub enum OwnedArg {
    /// Unsigned counter-like argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

impl ArgValue<'_> {
    fn to_owned_arg(self) -> OwnedArg {
        match self {
            ArgValue::U64(v) => OwnedArg::U64(v),
            ArgValue::F64(v) => OwnedArg::F64(v),
            ArgValue::Str(s) => OwnedArg::Str(s.to_string()),
        }
    }
}

/// Event phase, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Debug)]
pub enum Phase {
    /// A complete span with a known duration (`ph: "X"`).
    Span {
        /// Span duration in microseconds.
        dur_us: f64,
    },
    /// Span begin (`ph: "B"`); paired with a later [`Phase::End`] on the
    /// same track.
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// A zero-duration instant (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event (collecting recorder only).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Insertion sequence number (stable tie-break for equal timestamps).
    pub seq: u64,
    /// Clock domain of `ts_us`.
    pub clock: Clock,
    /// Track (rendered as one row/thread in the viewer).
    pub track: String,
    /// Event name (empty for [`Phase::End`]).
    pub name: String,
    /// Phase.
    pub phase: Phase,
    /// Timestamp in microseconds on `clock`.
    pub ts_us: f64,
    /// Attached arguments.
    pub args: Vec<(String, OwnedArg)>,
}

/// Sink for trace events and histogram samples.
///
/// Implementations must be cheap to call and must never panic on odd
/// inputs (NaN timestamps are dropped by the collecting recorder rather
/// than corrupting the trace). Instrumented code should guard argument
/// construction with [`Recorder::enabled`]:
///
/// ```
/// use rhythm_obs::{ArgValue, Clock, NoopRecorder, Recorder};
///
/// fn work<R: Recorder + ?Sized>(rec: &R) {
///     if rec.enabled() {
///         rec.instant(Clock::Virtual, "demo", "tick", 1.0, &[
///             ("n", ArgValue::U64(7)),
///         ]);
///     }
/// }
/// work(&NoopRecorder);
/// ```
pub trait Recorder: Sync {
    /// `false` for the no-op recorder: lets call sites skip argument
    /// construction entirely (and lets the optimizer erase the calls).
    fn enabled(&self) -> bool;

    /// A complete span `[start_us, start_us + dur_us]` on `track`.
    fn span(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        start_us: f64,
        dur_us: f64,
        args: &[(&str, ArgValue<'_>)],
    );

    /// Open a span on `track`; close it with [`Recorder::end`].
    fn begin(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, ArgValue<'_>)],
    );

    /// Close the innermost open span on `track`.
    fn end(&self, clock: Clock, track: &str, ts_us: f64);

    /// A zero-duration instant event.
    fn instant(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, ArgValue<'_>)],
    );

    /// A counter (gauge) sample.
    fn counter(&self, clock: Clock, track: &str, name: &str, ts_us: f64, value: f64);

    /// Feed one value into the named streaming histogram.
    fn sample(&self, hist: &str, value: f64);

    /// Microseconds of wall time since the recorder's origin (0 for
    /// recorders that don't keep a wall clock).
    fn wall_now_us(&self) -> f64;
}

/// The do-nothing recorder: every method is an empty inline body, so
/// instrumented code monomorphized against it compiles to the untraced
/// code exactly.
#[derive(Copy, Clone, Default, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn span(&self, _: Clock, _: &str, _: &str, _: f64, _: f64, _: &[(&str, ArgValue<'_>)]) {}
    #[inline(always)]
    fn begin(&self, _: Clock, _: &str, _: &str, _: f64, _: &[(&str, ArgValue<'_>)]) {}
    #[inline(always)]
    fn end(&self, _: Clock, _: &str, _: f64) {}
    #[inline(always)]
    fn instant(&self, _: Clock, _: &str, _: &str, _: f64, _: &[(&str, ArgValue<'_>)]) {}
    #[inline(always)]
    fn counter(&self, _: Clock, _: &str, _: &str, _: f64, _: f64) {}
    #[inline(always)]
    fn sample(&self, _: &str, _: f64) {}
    #[inline(always)]
    fn wall_now_us(&self) -> f64 {
        0.0
    }
}

/// Convert a virtual-time instant in seconds (the pipeline's unit) to the
/// microseconds used by trace timestamps.
#[inline]
pub fn s_to_us(seconds: f64) -> f64 {
    seconds * 1e6
}

/// The collecting recorder: buffers events and histogram samples behind
/// mutexes (one short critical section per event), then exports a Chrome
/// trace ([`TraceRecorder::chrome_json`]) and a plain-text summary
/// ([`TraceRecorder::summary`]).
#[derive(Debug)]
pub struct TraceRecorder {
    inner: Mutex<Inner>,
    hists: Mutex<BTreeMap<String, StreamingHistogram>>,
    origin: Instant,
}

#[derive(Debug)]
struct Inner {
    events: Vec<TraceEvent>,
    seq: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A fresh recorder; its wall-clock origin is `now`.
    pub fn new() -> Self {
        TraceRecorder {
            inner: Mutex::new(Inner {
                events: Vec::new(),
                seq: 0,
            }),
            hists: Mutex::new(BTreeMap::new()),
            origin: Instant::now(),
        }
    }

    fn push(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        phase: Phase,
        ts_us: f64,
        args: &[(&str, ArgValue<'_>)],
    ) {
        if ts_us.is_nan() {
            return; // never corrupt the trace with unordered timestamps
        }
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push(TraceEvent {
            seq,
            clock,
            track: track.to_string(),
            name: name.to_string(),
            phase,
            ts_us,
            args: args
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_owned_arg()))
                .collect(),
        });
    }

    /// Snapshot of the recorded events, ordered by track then timestamp
    /// (the order the Chrome exporter writes them in).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events = self
            .inner
            .lock()
            .expect("trace buffer poisoned")
            .events
            .clone();
        // Stable per-track time order: worker threads interleave pushes,
        // so buffer order is not time order within a track.
        events.sort_by(|a, b| {
            (a.clock, &a.track)
                .cmp(&(b.clock, &b.track))
                .then(a.ts_us.total_cmp(&b.ts_us))
                .then(a.seq.cmp(&b.seq))
        });
        events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .events
            .len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the named histogram, if any value was recorded for it.
    pub fn histogram(&self, name: &str) -> Option<StreamingHistogram> {
        self.hists
            .lock()
            .expect("histograms poisoned")
            .get(name)
            .cloned()
    }

    /// Snapshot of all histograms (name → histogram), sorted by name.
    pub fn histograms(&self) -> Vec<(String, StreamingHistogram)> {
        self.hists
            .lock()
            .expect("histograms poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        start_us: f64,
        dur_us: f64,
        args: &[(&str, ArgValue<'_>)],
    ) {
        self.push(
            clock,
            track,
            name,
            Phase::Span {
                dur_us: dur_us.max(0.0),
            },
            start_us,
            args,
        );
    }

    fn begin(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, ArgValue<'_>)],
    ) {
        self.push(clock, track, name, Phase::Begin, ts_us, args);
    }

    fn end(&self, clock: Clock, track: &str, ts_us: f64) {
        self.push(clock, track, "", Phase::End, ts_us, &[]);
    }

    fn instant(
        &self,
        clock: Clock,
        track: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, ArgValue<'_>)],
    ) {
        self.push(clock, track, name, Phase::Instant, ts_us, args);
    }

    fn counter(&self, clock: Clock, track: &str, name: &str, ts_us: f64, value: f64) {
        self.push(clock, track, name, Phase::Counter { value }, ts_us, &[]);
    }

    fn sample(&self, hist: &str, value: f64) {
        let mut hists = self.hists.lock().expect("histograms poisoned");
        hists
            .entry(hist.to_string())
            .or_insert_with(StreamingHistogram::for_positive_values)
            .record(value);
    }

    fn wall_now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.span(Clock::Virtual, "t", "s", 0.0, 1.0, &[]);
        r.sample("h", 1.0);
        assert_eq!(r.wall_now_us(), 0.0);
    }

    #[test]
    fn events_sorted_per_track() {
        let r = TraceRecorder::new();
        r.span(Clock::Virtual, "b", "second", 5.0, 1.0, &[]);
        r.span(Clock::Virtual, "a", "first", 9.0, 1.0, &[]);
        r.span(Clock::Virtual, "b", "first", 1.0, 1.0, &[]);
        let ev = r.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].track, "a");
        assert_eq!(ev[1].track, "b");
        assert_eq!(ev[1].name, "first");
        assert_eq!(ev[2].name, "second");
    }

    #[test]
    fn nan_timestamps_dropped() {
        let r = TraceRecorder::new();
        r.instant(Clock::Wall, "t", "bad", f64::NAN, &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn histograms_accumulate_by_name() {
        let r = TraceRecorder::new();
        r.sample("lat", 1e-3);
        r.sample("lat", 2e-3);
        r.sample("other", 5.0);
        let h = r.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 2);
        assert_eq!(r.histograms().len(), 2);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn wall_clock_monotonic() {
        let r = TraceRecorder::new();
        let a = r.wall_now_us();
        let b = r.wall_now_us();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
