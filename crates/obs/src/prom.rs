//! Prometheus text exposition (format version 0.0.4): a renderer for
//! `GET /metrics` bodies and a dependency-free validator used by tests
//! and CI.
//!
//! The renderer writes `# HELP` / `# TYPE` headers followed by sample
//! lines, escapes label values, and expands a
//! [`StreamingHistogram`](crate::StreamingHistogram) into the standard
//! cumulative `_bucket{le=...}` / `_sum` / `_count` series. The validator
//! re-parses a rendered document and checks name validity, label syntax
//! and escaping, value syntax, and header placement — the same checks a
//! scraping Prometheus would apply, minus protocol negotiation.

use std::collections::BTreeMap;

use crate::hist::StreamingHistogram;
use crate::metrics::MetricKind;

/// Whether `name` is a valid exposition metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid label name (`[a-zA-Z_][a-zA-Z0-9_]*`,
/// `__`-prefixed names are reserved).
pub fn valid_label_name(name: &str) -> bool {
    if name.starts_with("__") {
        return false;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escape help text: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Format an f64 sample value (`+Inf` / `-Inf` / `NaN` spellings per the
/// exposition format).
fn format_value(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// An in-progress exposition document.
///
/// # Example
///
/// ```
/// use rhythm_obs::{MetricKind, PromText, validate_prometheus_text};
///
/// let mut t = PromText::new();
/// t.header("requests_total", "Requests parsed", MetricKind::Counter);
/// t.sample_u64("requests_total", &[("shard", "0")], 17);
/// let text = t.finish();
/// assert!(validate_prometheus_text(&text).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Write the `# HELP` / `# TYPE` header for a metric family. Call
    /// once per family, before its samples.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name.
    pub fn header(&mut self, name: &str, help: &str, kind: MetricKind) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        escape_help(help, &mut self.out);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind.as_str());
        self.out.push('\n');
    }

    fn name_and_labels(&mut self, name: &str, labels: &[(&str, &str)]) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                debug_assert!(valid_label_name(k), "invalid label name {k:?}");
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                escape_label_value(v, &mut self.out);
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
    }

    /// Write one `f64` sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.name_and_labels(name, labels);
        format_value(value, &mut self.out);
        self.out.push('\n');
    }

    /// Write one integer sample line (counters render without a decimal
    /// point).
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.name_and_labels(name, labels);
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Expand a histogram into cumulative `name_bucket{le=...}` series
    /// plus `name_sum` and `name_count`, with `labels` on every line.
    /// The family header must have been written with
    /// [`MetricKind::Histogram`] for the *base* `name`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &StreamingHistogram) {
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (_, upper, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = format!("{upper}");
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.name_and_labels(&bucket, &with_le);
            self.out.push_str(&cumulative.to_string());
            self.out.push('\n');
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.name_and_labels(&bucket, &with_le);
        self.out.push_str(&h.count().to_string());
        self.out.push('\n');
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample_u64(&format!("{name}_count"), labels, h.count());
    }

    /// The finished document (always newline-terminated).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Summary of a validated exposition document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromCheck {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

fn parse_label_set(s: &str) -> Result<Vec<(String, String)>, String> {
    // `s` is the text between `{` and `}`.
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {s:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value for {name:?} not quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut closed_at = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {name:?}")),
                },
                '"' => {
                    closed_at = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = closed_at.ok_or_else(|| format!("unterminated label value for {name:?}"))?;
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        if rest.is_empty() {
            return Ok(labels);
        }
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            continue;
        }
        return Err(format!("expected ',' or end of label set, got {rest:?}"));
    }
}

fn parse_sample_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s.parse::<f64>().map_err(|_| format!("bad value {s:?}")),
    }
}

/// The base family name a sample belongs to: histogram samples use the
/// `_bucket` / `_sum` / `_count` suffixes of their declared family.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Validate a Prometheus text exposition document: metric and label name
/// validity, label escaping, value syntax, `# HELP`/`# TYPE` placement
/// and uniqueness, every sample belonging to a `# TYPE`-declared family,
/// and `le` presence on histogram bucket series.
///
/// # Errors
///
/// Returns a description of the first problem found, prefixed with its
/// 1-based line number.
pub fn validate_prometheus_text(text: &str) -> Result<PromCheck, String> {
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("document must end with a newline".into());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: Vec<String> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let err = |msg: String| format!("line {ln}: {msg}");
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, Some(h)))
                .unwrap_or((rest, None));
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?} in HELP")));
            }
            if helped.contains(&name.to_string()) {
                return Err(err(format!("duplicate HELP for {name:?}")));
            }
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| err("TYPE line without kind".into()))?;
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?} in TYPE")));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(err(format!("unknown metric type {kind:?}")));
            }
            if types.contains_key(name) {
                return Err(err(format!("duplicate TYPE for {name:?}")));
            }
            if sampled.iter().any(|s| s == name) {
                return Err(err(format!("TYPE for {name:?} after its samples")));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| err("sample line without value".into()))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(err(format!("invalid metric name {name:?}")));
        }
        let mut rest = &line[name_end..];
        let mut labels = Vec::new();
        if let Some(r) = rest.strip_prefix('{') {
            let close = r
                .rfind('}')
                .ok_or_else(|| err(format!("unterminated label set on {name:?}")))?;
            labels = parse_label_set(&r[..close]).map_err(err)?;
            rest = &r[close + 1..];
        }
        let mut parts = rest.split_whitespace();
        let value = parts
            .next()
            .ok_or_else(|| err(format!("sample {name:?} without value")))?;
        parse_sample_value(value).map_err(err)?;
        if let Some(ts) = parts.next() {
            ts.parse::<i64>()
                .map_err(|_| err(format!("bad timestamp {ts:?}")))?;
        }
        if parts.next().is_some() {
            return Err(err(format!("trailing garbage on sample {name:?}")));
        }
        let family = family_of(name, &types)
            .ok_or_else(|| err(format!("sample {name:?} has no TYPE declaration")))?;
        if name.ends_with("_bucket")
            && types.get(family).map(String::as_str) == Some("histogram")
            && !labels.iter().any(|(k, _)| k == "le")
        {
            return Err(err(format!("histogram bucket {name:?} without le label")));
        }
        sampled.push(family.to_string());
        samples += 1;
    }
    Ok(PromCheck {
        families: types.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validity() {
        assert!(valid_metric_name("rhythm_requests_total"));
        assert!(valid_metric_name(":ns:metric"));
        assert!(!valid_metric_name("0starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
        assert!(valid_label_name("shard"));
        assert!(!valid_label_name("__reserved"));
        assert!(!valid_label_name("le!"));
    }

    #[test]
    fn renderer_roundtrips_through_validator() {
        let mut t = PromText::new();
        t.header("acme_requests_total", "Requests", MetricKind::Counter);
        t.sample_u64("acme_requests_total", &[("shard", "0")], 10);
        t.sample_u64("acme_requests_total", &[("shard", "1")], 11);
        t.header(
            "acme_temp",
            "Temp with \"quotes\" \\ and\nnewline",
            MetricKind::Gauge,
        );
        t.sample("acme_temp", &[("site", "a\"b\\c\nd")], -3.25);
        let mut h = StreamingHistogram::new(1e-6, 8);
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        t.header("acme_latency_seconds", "Latency", MetricKind::Histogram);
        t.histogram("acme_latency_seconds", &[("shard", "0")], &h);
        let text = t.finish();
        let check = validate_prometheus_text(&text).expect("valid exposition");
        assert_eq!(check.families, 3);
        assert!(check.samples > 5);
        assert!(text.contains("le=\"+Inf\"} 100"));
        assert!(text.contains("acme_latency_seconds_count{shard=\"0\"} 100"));
        assert!(text.contains("site=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let mut h = StreamingHistogram::new(1.0, 1);
        for v in [1.5, 3.0, 3.5, 100.0] {
            h.record(v);
        }
        let mut t = PromText::new();
        t.header("x_seconds", "x", MetricKind::Histogram);
        t.histogram("x_seconds", &[], &h);
        let text = t.finish();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("x_seconds_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 4, "+Inf bucket equals count");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (doc, why) in [
            ("x_total 1\n", "sample without TYPE"),
            ("# TYPE x_total counter\nx_total 1", "missing final newline"),
            ("# TYPE x_total counter\nx_total nope\n", "bad value"),
            ("# TYPE x_total wat\n", "unknown type"),
            ("# TYPE x_total counter\n# TYPE x_total counter\n", "dup TYPE"),
            (
                "# TYPE x_total counter\nx_total{0bad=\"v\"} 1\n",
                "bad label name",
            ),
            (
                "# TYPE x_total counter\nx_total{l=\"\\q\"} 1\n",
                "bad escape",
            ),
            (
                "# TYPE x_total counter\nx_total 1\n# TYPE y_total counter\n# HELP x_total again\n# HELP x_total again\n",
                "dup HELP",
            ),
            (
                "# TYPE x_seconds histogram\nx_seconds_bucket 1\n",
                "bucket without le",
            ),
        ] {
            assert!(validate_prometheus_text(doc).is_err(), "{why}: {doc:?}");
        }
    }

    #[test]
    fn validator_accepts_timestamps_and_plain_comments() {
        let doc = "# a comment\n# TYPE up gauge\nup{job=\"x\"} 1 1712000000\n";
        let check = validate_prometheus_text(doc).expect("valid");
        assert_eq!(check.samples, 1);
    }
}
