//! `rhythm-obs` — observability substrate for the Rhythm pipeline and
//! SIMT interpreter.
//!
//! The crate has three layers, all dependency-free:
//!
//! * **[`Recorder`]** — a zero-cost-when-disabled sink for span, instant,
//!   counter, and histogram events. Instrumented code is generic over
//!   `R: Recorder + ?Sized`; with [`NoopRecorder`] every method is an
//!   empty `#[inline(always)]` body and the traced path monomorphizes to
//!   the untraced machine code. The trait is strictly observational, so a
//!   recorder can never perturb results — the pipeline's `PipelineReport`
//!   and the SIMT executor's responses stay bit-identical with tracing on
//!   or off.
//! * **[`StreamingHistogram`]** — HDR-style log-bucketed histograms
//!   (O(1) per sample, mergeable, bounded relative quantile error) that
//!   complement `rhythm-core`'s sorted-sample `LatencyStats`.
//! * **Live metrics** — [`Counter`] / [`Gauge`] / [`AtomicHistogram`]
//!   (the shared-atomic-bucket variant of [`StreamingHistogram`]) grouped
//!   in a [`MetricRegistry`], one per reactor shard and one per device:
//!   lock-free relaxed atomics on the hot path, scrape-time aggregation
//!   by merging snapshots. [`PromText`] renders a registry as Prometheus
//!   text exposition (checked by [`validate_prometheus_text`]), and
//!   [`FlightRecorder`] keeps an always-on fixed-size ring of recent
//!   spans, dumpable mid-run as a Chrome trace
//!   ([`flight_chrome_json`]).
//! * **Exporters** — [`TraceRecorder::chrome_json`] writes Chrome
//!   trace-event JSON loadable in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing` (virtual-time pipeline tracks under pid 1, wall
//!   -time host/SIMT tracks under pid 2), and
//!   [`TraceRecorder::summary`] renders a plain-text report with every
//!   histogram. [`validate_chrome_trace`] checks an exported document
//!   (valid JSON, non-decreasing per-track timestamps) without external
//!   dependencies.
//!
//! # Example
//!
//! ```
//! use rhythm_obs::{ArgValue, Clock, Recorder, TraceRecorder, validate_chrome_trace};
//!
//! let rec = TraceRecorder::new();
//! rec.span(Clock::Virtual, "stage:parser", "parse", 0.0, 12.5, &[
//!     ("batch", ArgValue::U64(32)),
//! ]);
//! rec.sample("request_latency_s", 3.2e-3);
//! let json = rec.chrome_json();
//! assert!(validate_chrome_trace(&json).is_ok());
//! println!("{}", rec.summary());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod counters;
mod flight;
mod hist;
mod metrics;
mod prom;
mod recorder;
mod summary;

pub use chrome::{parse_json, validate_chrome_trace, Json, TraceCheck, PID_VIRTUAL, PID_WALL};
pub use counters::{CacheCounters, CacheSnapshot, PoolCounters, PoolSnapshot};
pub use flight::{flight_chrome_json, FlightEvent, FlightRecorder};
pub use hist::StreamingHistogram;
pub use metrics::{
    AtomicHistogram, Counter, Gauge, MetricExport, MetricKind, MetricRegistry, MetricValue,
};
pub use prom::{
    valid_label_name, valid_metric_name, validate_prometheus_text, PromCheck, PromText,
};
pub use recorder::{
    s_to_us, ArgValue, Clock, NoopRecorder, OwnedArg, Phase, Recorder, TraceEvent, TraceRecorder,
};
