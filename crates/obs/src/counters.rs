//! Lock-free cumulative counters for caches and buffer pools.
//!
//! Hot paths (the SIMT plan cache, the warp-context arena) need
//! process-lifetime hit/miss accounting that costs one relaxed atomic
//! increment per event and can be snapshotted at any time without
//! stopping the world. Two shapes cover both users:
//!
//! * [`CacheCounters`] — hit/miss pairs for keyed caches (decode-plan
//!   cache, verifier verdict cache);
//! * [`PoolCounters`] — acquire/reuse/allocate triples for object pools,
//!   where `allocated == 0` over a window proves the steady state is
//!   allocation-free.
//!
//! Counters are observational, like the [`crate::Recorder`] trait: reading
//! them never perturbs the measured system.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative hit/miss counters for a keyed cache.
///
/// # Example
///
/// ```
/// use rhythm_obs::CacheCounters;
///
/// static COUNTERS: CacheCounters = CacheCounters::new();
/// COUNTERS.record_miss();
/// COUNTERS.record_hit();
/// COUNTERS.record_hit();
/// let snap = COUNTERS.snapshot();
/// assert_eq!((snap.hits, snap.misses), (2, 1));
/// assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A point-in-time copy of a [`CacheCounters`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build/compute the entry.
    pub misses: u64,
}

impl CacheSnapshot {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

impl CacheCounters {
    /// Fresh counters at zero (usable in `static` position).
    pub const fn new() -> Self {
        CacheCounters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Record one cache hit.
    #[inline]
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one cache miss.
    #[inline]
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the counters (each counter is read
    /// atomically; the pair is not a single atomic snapshot).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Cumulative counters for an object pool / arena.
///
/// Every checkout is an *acquire*; it is also either a *reuse* (served
/// from the free list) or an *allocate* (a fresh heap object was built).
/// `acquired == reused + allocated` always holds, so a window where
/// `allocated` did not move proves the pool ran allocation-free.
///
/// # Example
///
/// ```
/// use rhythm_obs::PoolCounters;
///
/// static POOL: PoolCounters = PoolCounters::new();
/// POOL.record_allocated();
/// POOL.record_reused();
/// let snap = POOL.snapshot();
/// assert_eq!(snap.acquired, 2);
/// assert_eq!(snap.reused, 1);
/// assert_eq!(snap.allocated, 1);
/// ```
#[derive(Debug, Default)]
pub struct PoolCounters {
    reused: AtomicU64,
    allocated: AtomicU64,
}

/// A point-in-time copy of a [`PoolCounters`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PoolSnapshot {
    /// Total checkouts (`reused + allocated`).
    pub acquired: u64,
    /// Checkouts served by recycling a pooled object.
    pub reused: u64,
    /// Checkouts that had to heap-allocate a fresh object.
    pub allocated: u64,
}

impl PoolSnapshot {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            acquired: self.acquired - earlier.acquired,
            reused: self.reused - earlier.reused,
            allocated: self.allocated - earlier.allocated,
        }
    }

    /// Fraction of checkouts served without allocating (0.0 when idle).
    pub fn reuse_rate(&self) -> f64 {
        if self.acquired == 0 {
            0.0
        } else {
            self.reused as f64 / self.acquired as f64
        }
    }
}

impl PoolCounters {
    /// Fresh counters at zero (usable in `static` position).
    pub const fn new() -> Self {
        PoolCounters {
            reused: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
        }
    }

    /// Record a checkout served from the free list.
    #[inline]
    pub fn record_reused(&self) {
        self.reused.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a checkout that allocated a fresh object.
    #[inline]
    pub fn record_allocated(&self) {
        self.allocated.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        let reused = self.reused.load(Ordering::Relaxed);
        let allocated = self.allocated.load(Ordering::Relaxed);
        PoolSnapshot {
            acquired: reused + allocated,
            reused,
            allocated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counters_accumulate_and_delta() {
        let c = CacheCounters::new();
        assert_eq!(c.snapshot(), CacheSnapshot::default());
        assert_eq!(c.snapshot().hit_rate(), 0.0);
        c.record_miss();
        let before = c.snapshot();
        c.record_hit();
        c.record_hit();
        let after = c.snapshot();
        assert_eq!(after.hits, 2);
        assert_eq!(after.misses, 1);
        assert_eq!(after.lookups(), 3);
        let delta = after.since(&before);
        assert_eq!(delta, CacheSnapshot { hits: 2, misses: 0 });
        assert!((delta.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pool_counters_acquired_is_sum() {
        let p = PoolCounters::new();
        p.record_allocated();
        p.record_reused();
        p.record_reused();
        let s = p.snapshot();
        assert_eq!(s.acquired, 3);
        assert_eq!(s.reused, 2);
        assert_eq!(s.allocated, 1);
        assert!((s.reuse_rate() - 2.0 / 3.0).abs() < 1e-12);
        let quiet = p.snapshot().since(&s);
        assert_eq!(quiet, PoolSnapshot::default());
        assert_eq!(quiet.reuse_rate(), 0.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = CacheCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.record_hit();
                    }
                });
            }
        });
        assert_eq!(c.snapshot().hits, 4000);
    }
}
