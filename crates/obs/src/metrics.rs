//! Live metrics: lock-free atomic counters and gauges, a
//! shared-atomic-bucket streaming histogram, and a named
//! [`MetricRegistry`].
//!
//! [`StreamingHistogram`](crate::StreamingHistogram) is single-writer —
//! ideal for offline reports, useless for a metric another thread wants
//! to scrape mid-run. The types here are the live counterparts: every
//! mutation is a relaxed atomic RMW on state owned by one registry, so a
//! reactor shard (or a device handler) records on its hot path with no
//! locks and no cross-shard cache traffic, while a scraper thread reads
//! concurrently and at worst observes a value a few instructions stale.
//!
//! The intended topology is **one registry per reactor shard and one per
//! device**: writers never share a cache line with another writer, and
//! cross-shard aggregation happens only at scrape time by merging
//! [`AtomicHistogram::snapshot`]s (see
//! [`StreamingHistogram::merge`](crate::StreamingHistogram::merge)).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::StreamingHistogram;
use crate::prom::valid_metric_name;

/// A monotonically increasing `u64` counter (relaxed atomics).
///
/// Mutators never observe each other's intermediate state; readers get a
/// value that was current at some recent instant.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite with an absolute value. Intended for single-writer
    /// publication of an externally accumulated monotonic total (e.g. a
    /// process-wide cache's hit count); the writer is responsible for
    /// monotonicity.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading `0.0`.
    pub const fn new() -> Self {
        // 0u64 is the bit pattern of +0.0.
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the reading.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the reading to `v` if larger (CAS loop; peak tracking).
    pub fn fetch_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Current reading.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The shared-atomic-bucket variant of
/// [`StreamingHistogram`](crate::StreamingHistogram): identical geometric
/// bucket layout, but every bucket is an `AtomicU64`, so threads record
/// concurrently without locks and a scraper snapshots mid-run.
///
/// Unlike the single-writer histogram the bucket array is allocated up
/// front (`octaves × sub` buckets — resizing is not lock-free); values
/// beyond the top bucket clamp into it, values at or below `min_value`
/// land in the underflow bucket, NaN is rejected. [`snapshot`] yields a
/// [`StreamingHistogram`] with the same configuration, so snapshots from
/// different shards merge with
/// [`merge`](crate::StreamingHistogram::merge).
///
/// Concurrent reads are lock-free and may observe a count that includes a
/// sample whose `sum` contribution has not landed yet (or vice versa);
/// each individual field is always a value that existed at some recent
/// instant, and per-bucket counts are monotone.
///
/// [`snapshot`]: AtomicHistogram::snapshot
#[derive(Debug)]
pub struct AtomicHistogram {
    min_value: f64,
    sub: u32,
    counts: Box<[AtomicU64]>,
    underflow: AtomicU64,
    rejected: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl AtomicHistogram {
    /// A histogram with `sub` buckets per octave covering
    /// `[min_value, min_value · 2^octaves)`; larger values clamp into the
    /// top bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `min_value` is positive and finite, `sub ≥ 1`, and
    /// `1 ≤ octaves ≤ 256`.
    pub fn new(min_value: f64, sub: u32, octaves: u32) -> Self {
        assert!(
            min_value > 0.0 && min_value.is_finite(),
            "min_value must be positive and finite"
        );
        assert!(sub >= 1, "need at least one sub-bucket per octave");
        assert!(
            (1..=256).contains(&octaves),
            "octaves must be in 1..=256 (256 covers any finite f64 ratio)"
        );
        let n = (octaves * sub) as usize;
        let counts: Box<[AtomicU64]> = (0..n).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            min_value,
            sub,
            counts,
            underflow: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The configuration used for request latencies in seconds: 1 µs
    /// floor, 8 sub-buckets per octave (≤ 9 % relative quantile error),
    /// 40 octaves (covers up to ~12 days).
    pub fn for_latency_seconds() -> Self {
        AtomicHistogram::new(1e-6, 8, 40)
    }

    /// Lower bound of bucket 0 (as in [`StreamingHistogram`]).
    pub fn min_value(&self) -> f64 {
        self.min_value
    }

    /// Sub-buckets per octave (as in [`StreamingHistogram`]).
    pub fn sub(&self) -> u32 {
        self.sub
    }

    /// Record one value (relaxed atomics; callable from `&self`).
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 accumulation via CAS (uncontended in the one-registry-per-
        // shard topology, so the loop almost always succeeds first try).
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let mut cur = self.min_bits.load(Ordering::Relaxed);
        while value < f64::from_bits(cur) {
            match self.min_bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while value > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        if value <= self.min_value {
            self.underflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Same geometry as StreamingHistogram::bucket_index, clamped to
        // the preallocated range.
        let octaves = (value / self.min_value).log2();
        let i = (octaves * self.sub as f64).floor();
        let i = if i >= self.counts.len() as f64 {
            self.counts.len() - 1
        } else {
            i as usize
        };
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded values (excluding rejected NaN samples).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a mergeable [`StreamingHistogram`] with
    /// the same bucket configuration.
    pub fn snapshot(&self) -> StreamingHistogram {
        let mut counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        StreamingHistogram::from_parts(
            self.min_value,
            self.sub,
            counts,
            self.underflow.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        )
    }
}

/// What a registered metric is, for `# TYPE` exposition lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-value-wins reading.
    Gauge,
    /// Bucketed value distribution.
    Histogram,
}

impl MetricKind {
    /// The exposition-format type keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time reading of one registered metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram snapshot.
    Histogram(StreamingHistogram),
}

impl MetricValue {
    /// The kind this value belongs to.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One exported metric: name, help text, and a point-in-time value.
#[derive(Clone, Debug)]
pub struct MetricExport {
    /// Metric name (validated at registration).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// The reading at export time.
    pub value: MetricValue,
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

/// A named collection of live metrics.
///
/// Registration takes a lock (a `Mutex` around a name map) and returns an
/// `Arc` handle; the hot path touches only the handle, never the
/// registry. Register once at setup, record through the handle forever —
/// the intended instantiation is one registry per reactor shard plus one
/// per device, with scrape-time export via [`MetricRegistry::export`].
#[derive(Debug, Default)]
pub struct MetricRegistry {
    slots: Mutex<BTreeMap<String, (String, Slot)>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Register (or fetch) a counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut slots = self.slots.lock().expect("registry poisoned");
        let (_, slot) = slots
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Slot::Counter(Arc::new(Counter::new()))));
        match slot {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with another kind"),
        }
    }

    /// Register (or fetch) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or if `name` is already
    /// registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut slots = self.slots.lock().expect("registry poisoned");
        let (_, slot) = slots
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Slot::Gauge(Arc::new(Gauge::new()))));
        match slot {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with another kind"),
        }
    }

    /// Register (or fetch) a histogram with the given bucket geometry
    /// (see [`AtomicHistogram::new`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name, if `name` is already registered
    /// as a different kind, or on an invalid bucket configuration.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        min_value: f64,
        sub: u32,
        octaves: u32,
    ) -> Arc<AtomicHistogram> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut slots = self.slots.lock().expect("registry poisoned");
        let (_, slot) = slots.entry(name.to_string()).or_insert_with(|| {
            (
                help.to_string(),
                Slot::Histogram(Arc::new(AtomicHistogram::new(min_value, sub, octaves))),
            )
        });
        match slot {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with another kind"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("registry poisoned").len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time readings of every registered metric, sorted by name.
    pub fn export(&self) -> Vec<MetricExport> {
        let slots = self.slots.lock().expect("registry poisoned");
        slots
            .iter()
            .map(|(name, (help, slot))| MetricExport {
                name: name.clone(),
                help: help.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.fetch_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.fetch_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn atomic_histogram_matches_streaming_on_same_samples() {
        let a = AtomicHistogram::new(1e-9, 8, 64);
        let mut s = StreamingHistogram::new(1e-9, 8);
        for i in 1..=5000u32 {
            let v = i as f64 * 1e-6;
            a.record(v);
            s.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), s.count());
        assert_eq!(snap.min(), s.min());
        assert_eq!(snap.max(), s.max());
        assert_eq!(snap.nonzero_buckets(), s.nonzero_buckets());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), s.quantile(q), "q{q}");
        }
    }

    #[test]
    fn atomic_histogram_concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(AtomicHistogram::for_latency_seconds());
        let threads = 4;
        let per = 10_000u64;
        std::thread::scope(|sc| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                sc.spawn(move || {
                    for i in 0..per {
                        h.record(((t * per + i) % 997 + 1) as f64 * 1e-5);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per);
        let bucket_total: u64 = snap.nonzero_buckets().iter().map(|&(_, _, c)| c).sum();
        assert_eq!(bucket_total, threads * per);
    }

    #[test]
    fn atomic_histogram_clamps_overflow_and_rejects_nan() {
        let h = AtomicHistogram::new(1.0, 1, 2); // buckets: [1,2) [2,4)
        h.record(1e12); // clamps into the top bucket
        h.record(f64::NAN);
        h.record(0.5); // underflow
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.rejected(), 1);
        assert_eq!(snap.max(), 1e12);
        let buckets = snap.nonzero_buckets();
        assert_eq!(buckets[0], (0.0, 1.0, 1), "underflow bucket");
        assert_eq!(buckets[1].2, 1, "clamped sample in top bucket");
    }

    #[test]
    fn registry_registers_and_exports_sorted() {
        let r = MetricRegistry::new();
        let c = r.counter("b_total", "a counter");
        let g = r.gauge("a_gauge", "a gauge");
        let h = r.histogram("c_seconds", "a histogram", 1e-6, 8, 40);
        c.add(3);
        g.set(1.5);
        h.record(1e-3);
        // Re-registration returns the same underlying metric.
        r.counter("b_total", "ignored").add(1);
        assert_eq!(c.get(), 4);
        assert_eq!(r.len(), 3);
        let exports = r.export();
        let names: Vec<&str> = exports.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a_gauge", "b_total", "c_seconds"]);
        match &exports[1].value {
            MetricValue::Counter(v) => assert_eq!(*v, 4),
            other => panic!("expected counter, got {other:?}"),
        }
        match &exports[2].value {
            MetricValue::Histogram(s) => assert_eq!(s.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn registry_rejects_kind_clash() {
        let r = MetricRegistry::new();
        let _ = r.counter("x_total", "counter");
        let _ = r.gauge("x_total", "gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_invalid_name() {
        let r = MetricRegistry::new();
        let _ = r.counter("0bad-name", "nope");
    }
}
