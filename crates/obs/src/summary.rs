//! Plain-text run summary: event/track totals plus every streaming
//! histogram rendered with quantiles and an ASCII bucket chart.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::hist::StreamingHistogram;
use crate::recorder::TraceRecorder;

/// Render one histogram as indented text lines.
fn render_hist(name: &str, h: &StreamingHistogram, out: &mut String) {
    let _ = writeln!(out, "histogram {name}");
    let _ = writeln!(
        out,
        "  count {}  rejected {}  mean {:.6e}  min {:.6e}  max {:.6e}",
        h.count(),
        h.rejected(),
        h.mean(),
        h.min(),
        h.max()
    );
    let _ = writeln!(
        out,
        "  p50 {:.6e}  p90 {:.6e}  p99 {:.6e}  p999 {:.6e}",
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999)
    );
    let buckets = h.nonzero_buckets();
    let peak = buckets.iter().map(|&(_, _, c)| c).max().unwrap_or(0);
    for (lo, hi, c) in buckets {
        let width = if peak == 0 {
            0
        } else {
            ((c as f64 / peak as f64) * 40.0).ceil() as usize
        };
        let _ = writeln!(
            out,
            "  [{lo:>12.4e}, {hi:>12.4e})  {c:>8}  {}",
            "#".repeat(width)
        );
    }
}

impl TraceRecorder {
    /// Render everything recorded so far as a human-readable report:
    /// per-clock event and track counts followed by each histogram.
    pub fn summary(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        let _ = writeln!(out, "== rhythm-obs run summary ==");
        let _ = writeln!(out, "events: {}", events.len());
        for clock in [crate::Clock::Virtual, crate::Clock::Wall] {
            let tracks: BTreeSet<&str> = events
                .iter()
                .filter(|e| e.clock == clock)
                .map(|e| e.track.as_str())
                .collect();
            let n = events.iter().filter(|e| e.clock == clock).count();
            let _ = writeln!(
                out,
                "  {clock:?}: {n} events on {} tracks{}",
                tracks.len(),
                if tracks.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", tracks.into_iter().collect::<Vec<_>>().join(", "))
                }
            );
        }
        let hists = self.histograms();
        if hists.is_empty() {
            let _ = writeln!(out, "histograms: none");
        } else {
            for (name, h) in &hists {
                render_hist(name, h, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::recorder::{Clock, Recorder, TraceRecorder};

    #[test]
    fn summary_lists_tracks_and_histograms() {
        let r = TraceRecorder::new();
        r.span(Clock::Virtual, "stage:parser", "parse", 0.0, 2.0, &[]);
        r.span(Clock::Wall, "simt:w0", "warp 0", 0.0, 3.0, &[]);
        for i in 1..=100 {
            r.sample("request_latency_s", i as f64 * 1e-4);
        }
        let s = r.summary();
        assert!(s.contains("stage:parser"), "{s}");
        assert!(s.contains("simt:w0"), "{s}");
        assert!(s.contains("histogram request_latency_s"), "{s}");
        assert!(s.contains("p99"), "{s}");
        assert!(s.contains('#'), "bucket chart rendered: {s}");
    }

    #[test]
    fn empty_summary_is_well_formed() {
        let r = TraceRecorder::new();
        let s = r.summary();
        assert!(s.contains("events: 0"), "{s}");
        assert!(s.contains("histograms: none"), "{s}");
    }
}
