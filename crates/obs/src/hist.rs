//! Log-bucketed streaming histograms (HDR-histogram style).
//!
//! [`crate::LatencyStats`-like] sorted-sample statistics keep every sample
//! in memory and can only be computed at the end of a run. The streaming
//! histogram complements them: O(1) per sample, fixed memory, mergeable,
//! and quantiles with a bounded *relative* error set by the sub-bucket
//! resolution — the standard trade for long-running servers where the
//! sample vector would grow without bound.
//!
//! Buckets are geometric: bucket `i` covers
//! `[min · 2^(i/sub), min · 2^((i+1)/sub))`, i.e. `sub` sub-buckets per
//! octave (power of two). With the default `sub = 8` the relative error
//! of any reported quantile is at most `2^(1/8) − 1 ≈ 9 %`.

/// A streaming histogram over positive values with geometric buckets.
///
/// Values ≤ the minimum trackable value land in an underflow bucket and
/// are reported as `min_value`; NaN values are counted in
/// [`StreamingHistogram::rejected`] and otherwise ignored (they carry no
/// ordering information). Negative values are treated as underflow.
///
/// # Example
///
/// ```
/// use rhythm_obs::StreamingHistogram;
///
/// let mut h = StreamingHistogram::for_positive_values();
/// for i in 1..=1000u32 {
///     h.record(i as f64 * 1e-6); // 1 µs .. 1 ms
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.50);
/// assert!((p50 / 500e-6 - 1.0).abs() < 0.15, "p50 ~ 500 µs: {p50}");
/// assert!(h.quantile(0.99) <= h.max());
/// ```
#[derive(Clone, Debug)]
pub struct StreamingHistogram {
    /// Lower bound of bucket 0; values at or below it underflow.
    min_value: f64,
    /// Sub-buckets per octave.
    sub: u32,
    /// Bucket counts (grown lazily as larger values arrive).
    counts: Vec<u64>,
    /// Values ≤ `min_value` (including zero and negatives).
    underflow: u64,
    /// NaN samples dropped.
    rejected: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// A histogram with explicit resolution: `min_value` is the smallest
    /// distinguishable value, `sub` the number of buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics unless `min_value` is positive and finite and `sub ≥ 1`.
    pub fn new(min_value: f64, sub: u32) -> Self {
        assert!(
            min_value > 0.0 && min_value.is_finite(),
            "min_value must be positive and finite"
        );
        assert!(sub >= 1, "need at least one sub-bucket per octave");
        StreamingHistogram {
            min_value,
            sub,
            counts: Vec::new(),
            underflow: 0,
            rejected: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default configuration for positive measurements (latencies in
    /// seconds, cycle counts, byte counts): 1 ns floor, 8 sub-buckets per
    /// octave (≤ 9 % relative quantile error), ~10 decades of range.
    pub fn for_positive_values() -> Self {
        StreamingHistogram::new(1e-9, 8)
    }

    /// Hard cap on bucket count: 256 octaves cover any finite f64 ratio,
    /// so the cap only clamps `+inf` (which would otherwise index out of
    /// any vector we could allocate).
    fn max_buckets(&self) -> usize {
        256 * self.sub as usize
    }

    fn bucket_index(&self, value: f64) -> usize {
        // log2(value / min) in units of 1/sub of an octave.
        let octaves = (value / self.min_value).log2();
        let i = (octaves * self.sub as f64).floor();
        if i >= self.max_buckets() as f64 {
            self.max_buckets() - 1
        } else {
            i as usize
        }
    }

    /// Upper edge of bucket `i` — the value reported for samples in it.
    fn bucket_upper(&self, i: usize) -> f64 {
        self.min_value * 2f64.powf((i + 1) as f64 / self.sub as f64)
    }

    /// Record one value.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            self.rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= self.min_value {
            self.underflow += 1;
            return;
        }
        let i = self.bucket_index(value);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// Total recorded values (excluding rejected NaN samples).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN samples dropped.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, with relative error bounded by
    /// the bucket resolution (`2^(1/sub) − 1`). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if target <= seen {
            return self.min_value.min(self.max).max(self.min);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if target <= seen {
                // Clamp to the observed extremes so tiny samples don't
                // report a bucket edge outside [min, max].
                return self.bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Reassemble a histogram from raw parts — the bridge from
    /// [`crate::AtomicHistogram::snapshot`], which reads its atomic
    /// buckets and rebuilds the equivalent single-writer histogram so
    /// snapshots from different shards can [`StreamingHistogram::merge`].
    ///
    /// `min`/`max` follow the internal empty-state convention
    /// (`+inf`/`-inf` when `count == 0`).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`StreamingHistogram::new`])
    /// or if `counts` exceeds the maximum bucket count.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        min_value: f64,
        sub: u32,
        counts: Vec<u64>,
        underflow: u64,
        rejected: u64,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Self {
        let mut h = StreamingHistogram::new(min_value, sub);
        assert!(
            counts.len() <= h.max_buckets(),
            "counts exceed the bucket cap"
        );
        h.counts = counts;
        h.underflow = underflow;
        h.rejected = rejected;
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        h
    }

    /// Sum of the recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Fold another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms use different bucket configurations.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        assert_eq!(self.min_value, other.min_value, "mismatched histograms");
        assert_eq!(self.sub, other.sub, "mismatched histograms");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.underflow += other.underflow;
        self.rejected += other.rejected;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The window between two cumulative snapshots: subtract `older`
    /// (an earlier snapshot of the same growing histogram) from `self`
    /// bucket by bucket. Counts, sum, underflow, and rejected subtract
    /// exactly (saturating, so a mismatched pair cannot underflow);
    /// `min`/`max` keep the newer snapshot's bounds — quantiles clamp to
    /// them, which only widens the reported range, never the buckets.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms use different bucket configurations.
    #[must_use]
    pub fn diff(&self, older: &StreamingHistogram) -> Self {
        assert_eq!(self.min_value, older.min_value, "mismatched histograms");
        assert_eq!(self.sub, older.sub, "mismatched histograms");
        let mut out = self.clone();
        for (i, &c) in older.counts.iter().enumerate() {
            if i < out.counts.len() {
                out.counts[i] = out.counts[i].saturating_sub(c);
            }
        }
        out.underflow = out.underflow.saturating_sub(older.underflow);
        out.rejected = out.rejected.saturating_sub(older.rejected);
        out.count = out.count.saturating_sub(older.count);
        out.sum = (out.sum - older.sum).max(0.0);
        out
    }

    /// Non-empty buckets as `(lower_edge, upper_edge, count)`, lowest
    /// first; the underflow bucket appears as `(0, min_value, n)`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::new();
        if self.underflow > 0 {
            out.push((0.0, self.min_value, self.underflow));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let lo = if i == 0 {
                    self.min_value
                } else {
                    self.bucket_upper(i - 1)
                };
                out.push((lo, self.bucket_upper(i), c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let h = StreamingHistogram::for_positive_values();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = StreamingHistogram::new(1e-9, 8);
        let bound = 2f64.powf(1.0 / 8.0) - 1.0;
        for i in 1..=10_000u32 {
            h.record(i as f64 * 1e-6);
        }
        for (q, exact) in [(0.5, 5000e-6), (0.95, 9500e-6), (0.99, 9900e-6)] {
            let got = h.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel <= bound + 1e-9, "q{q}: got {got}, exact {exact}");
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn nan_rejected_negative_underflows() {
        let mut h = StreamingHistogram::for_positive_values();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(0.0);
        h.record(1e-3);
        assert_eq!(h.rejected(), 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -1.0);
        // Underflow bucket present.
        assert_eq!(h.nonzero_buckets()[0].2, 2);
    }

    #[test]
    fn single_sample_quantiles_are_that_sample_bucket() {
        let mut h = StreamingHistogram::for_positive_values();
        h.record(42e-3);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((v / 42e-3 - 1.0).abs() < 0.1, "q{q} = {v}");
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = StreamingHistogram::new(1e-9, 8);
        let mut b = StreamingHistogram::new(1e-9, 8);
        let mut all = StreamingHistogram::new(1e-9, 8);
        for i in 1..=100u32 {
            let v = i as f64 * 1e-5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
        assert_eq!(a.max(), all.max());
    }

    #[test]
    #[should_panic(expected = "mismatched histograms")]
    fn merge_rejects_mismatched_config() {
        let mut a = StreamingHistogram::new(1e-9, 8);
        let b = StreamingHistogram::new(1e-9, 16);
        a.merge(&b);
    }

    #[test]
    fn diff_isolates_the_window_between_snapshots() {
        let mut older = StreamingHistogram::new(1e-6, 8);
        for _ in 0..100 {
            older.record(1e-3);
        }
        let mut newer = older.clone();
        for _ in 0..10 {
            newer.record(50e-3);
        }
        let w = newer.diff(&older);
        assert_eq!(w.count(), 10);
        assert!((w.sum() - 0.5).abs() < 1e-9, "sum {}", w.sum());
        assert!(w.quantile(0.5) > 10e-3, "window sees only the slow tail");
        // Diffing a snapshot against itself is empty.
        let empty = newer.diff(&newer);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.nonzero_buckets(), vec![]);
    }

    #[test]
    #[should_panic(expected = "mismatched histograms")]
    fn diff_rejects_mismatched_config() {
        let a = StreamingHistogram::new(1e-9, 8);
        let b = StreamingHistogram::new(1e-9, 16);
        let _ = a.diff(&b);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_min_value_rejected() {
        let _ = StreamingHistogram::new(0.0, 8);
    }
}
