//! The flight recorder: an always-on, fixed-size ring buffer of recent
//! spans and transitions, dumpable as a valid Chrome trace at any moment.
//!
//! Offline [`TraceRecorder`](crate::TraceRecorder) runs capture a whole
//! run but grow without bound and are only read at shutdown. The flight
//! recorder is the live complement: each reactor shard owns one, records
//! a bounded sample of recent events into preallocated slots (no
//! allocation, no locks on the hot path — one relaxed `fetch_add` plus a
//! handful of relaxed stores per event), and overwrites the oldest event
//! when full. A scraper thread can dump the ring at any time; per-slot
//! sequence numbers (a seqlock) let the dump detect and skip slots that
//! were mid-overwrite, so a dump taken under load never shows torn
//! events.
//!
//! Event names are interned up front ([`FlightRecorder::intern`]) so the
//! record path stores a `u32` id instead of formatting strings.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

const KIND_SPAN: u32 = 0;
const KIND_INSTANT: u32 = 1;

#[derive(Debug, Default)]
struct Slot {
    /// Seqlock: odd while a writer is mid-update; bumped twice per write.
    seq: AtomicU32,
    name: AtomicU32,
    track: AtomicU32,
    kind: AtomicU32,
    ts_us: AtomicU64,
    dur_us: AtomicU64,
    arg: AtomicU64,
}

/// One event copied out of the ring by [`FlightRecorder::events`].
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Interned event name.
    pub name: String,
    /// Track (rendered as a Chrome trace `tid`).
    pub track: u32,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// One free-form numeric argument (e.g. a request count).
    pub arg: u64,
    /// Whether this is a span (`true`) or an instant (`false`).
    pub span: bool,
}

/// A fixed-capacity single-writer ring buffer of recent spans/instants.
///
/// One recorder per reactor shard: the owning shard records, any thread
/// may call [`FlightRecorder::events`] / [`flight_chrome_json`]
/// concurrently. (With multiple concurrent writers the per-slot seqlock
/// still prevents torn reads, but two writers that lap each other onto
/// the same slot may interleave fields; the single-writer-per-shard
/// topology avoids that by construction.)
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Total events ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
    /// Sampling tick counter (see [`FlightRecorder::tick`]).
    ticks: AtomicU64,
    names: RwLock<Vec<String>>,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            names: RwLock::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Intern an event name, returning the id to pass to
    /// [`FlightRecorder::span`] / [`FlightRecorder::instant`]. Call at
    /// setup time, not on the hot path (takes a write lock; idempotent).
    pub fn intern(&self, name: &str) -> u32 {
        let mut names = self.names.write().expect("names poisoned");
        if let Some(i) = names.iter().position(|n| n == name) {
            return i as u32;
        }
        names.push(name.to_string());
        (names.len() - 1) as u32
    }

    /// Microseconds since this recorder's epoch (timestamps for
    /// [`FlightRecorder::span`]).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Sampling helper: returns `true` on every `every`-th call (always
    /// `true` for `every ≤ 1`). Lets callers keep high-frequency events
    /// (per-poll ticks) at a bounded rate while low-frequency events
    /// (cohort launches) record unconditionally.
    pub fn tick(&self, every: u64) -> bool {
        if every <= 1 {
            return true;
        }
        self.ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }

    /// Total events recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events overwritten (lifetime total minus capacity, floored at 0).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    fn record(&self, name: u32, track: u32, kind: u32, ts_us: u64, dur_us: u64, arg: u64) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[i];
        slot.seq.fetch_add(1, Ordering::Release); // odd: in progress
        slot.name.store(name, Ordering::Relaxed);
        slot.track.store(track, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release); // even: stable
    }

    /// Record a completed span (`ts_us`/`dur_us` from
    /// [`FlightRecorder::now_us`]).
    pub fn span(&self, name: u32, track: u32, ts_us: u64, dur_us: u64, arg: u64) {
        self.record(name, track, KIND_SPAN, ts_us, dur_us, arg);
    }

    /// Record an instant (a state transition, a shed, an admin hit).
    pub fn instant(&self, name: u32, track: u32, ts_us: u64, arg: u64) {
        self.record(name, track, KIND_INSTANT, ts_us, 0, arg);
    }

    /// Copy the ring's stable events out, oldest first by timestamp.
    /// Slots that are mid-overwrite at read time are skipped rather than
    /// returned torn.
    pub fn events(&self) -> Vec<FlightEvent> {
        let names = self.names.read().expect("names poisoned");
        let live = (self.recorded() as usize).min(self.slots.len());
        let mut out = Vec::with_capacity(live);
        for slot in self.slots.iter().take(live) {
            // Seqlock read: retry a few times, skip if the writer keeps
            // lapping us (it can only be mid-write on one slot at once).
            let mut ok = None;
            for _ in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 % 2 != 0 {
                    continue;
                }
                let ev = (
                    slot.name.load(Ordering::Relaxed),
                    slot.track.load(Ordering::Relaxed),
                    slot.kind.load(Ordering::Relaxed),
                    slot.ts_us.load(Ordering::Relaxed),
                    slot.dur_us.load(Ordering::Relaxed),
                    slot.arg.load(Ordering::Relaxed),
                );
                if slot.seq.load(Ordering::Acquire) == s1 {
                    ok = Some(ev);
                    break;
                }
            }
            if let Some((name, track, kind, ts_us, dur_us, arg)) = ok {
                out.push(FlightEvent {
                    name: names
                        .get(name as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("event{name}")),
                    track,
                    ts_us,
                    dur_us,
                    arg,
                    span: kind == KIND_SPAN,
                });
            }
        }
        out.sort_by_key(|e| (e.track, e.ts_us));
        out
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render one or more shards' flight recorders as a Chrome trace-event
/// JSON document (loadable in Perfetto, checkable with
/// [`validate_chrome_trace`](crate::validate_chrome_trace)).
///
/// Each `(name, recorder)` pair becomes one trace *process* (pid is the
/// index plus one, named via metadata); tracks become threads within it.
/// Events are written sorted per track, so per-track timestamps are
/// non-decreasing.
pub fn flight_chrome_json(shards: &[(String, &FlightRecorder)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (i, (name, rec)) in shards.iter().enumerate() {
        let pid = i as u64 + 1;
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\""
        ));
        escape_json(name, &mut out);
        out.push_str("\"}}");
        for e in rec.events() {
            out.push_str(&format!(
                ",{{\"ph\":\"{}\",\"pid\":{pid},\"tid\":{},\"ts\":{}",
                if e.span { "X" } else { "i" },
                e.track,
                e.ts_us
            ));
            if e.span {
                out.push_str(&format!(",\"dur\":{}", e.dur_us));
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"name\":\"");
            escape_json(&e.name, &mut out);
            out.push_str(&format!("\",\"args\":{{\"v\":{}}}}}", e.arg));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_chrome_trace;

    #[test]
    fn ring_keeps_most_recent_events() {
        let r = FlightRecorder::new(4);
        let launch = r.intern("launch");
        assert_eq!(r.intern("launch"), launch, "intern is idempotent");
        for i in 0..10u64 {
            r.span(launch, 0, i * 10, 5, i);
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let events = r.events();
        assert_eq!(events.len(), 4);
        let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
        assert_eq!(args, [6, 7, 8, 9], "oldest overwritten, order by ts");
    }

    #[test]
    fn sampling_tick() {
        let r = FlightRecorder::new(1);
        assert!(r.tick(0) && r.tick(1), "every<=1 always samples");
        let hits = (0..100).filter(|_| r.tick(10)).count();
        assert_eq!(hits, 10);
    }

    #[test]
    fn dump_is_a_valid_chrome_trace() {
        let a = FlightRecorder::new(16);
        let b = FlightRecorder::new(16);
        let cohort = a.intern("cohorts x2");
        let shed = a.intern("shed \"503\"");
        a.span(cohort, 1, 100, 50, 64);
        a.instant(shed, 0, 120, 1);
        let poll = b.intern("poll");
        b.span(poll, 0, 10, 2, 0);
        let json = flight_chrome_json(&[("shard 0".into(), &a), ("shard 1".into(), &b)]);
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.events, 3);
        assert!(check.names.iter().any(|n| n == "cohorts x2"));
        assert!(check.names.iter().any(|n| n == "shed \"503\""));
    }

    #[test]
    fn concurrent_dump_never_sees_torn_slots() {
        let r = std::sync::Arc::new(FlightRecorder::new(8));
        let name = r.intern("spin");
        let writer = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    // ts and arg move together; a torn read would pair a
                    // new ts with an old arg.
                    r.span(name, 0, i, 1, i);
                }
            })
        };
        for _ in 0..200 {
            for e in r.events() {
                assert_eq!(e.ts_us, e.arg, "torn slot escaped the seqlock");
            }
        }
        writer.join().unwrap();
    }
}
