//! Chrome trace-event JSON export (loadable in Perfetto and
//! `chrome://tracing`) and a dependency-free validator used by tests and
//! the CI smoke step.
//!
//! The exporter maps the recorder's two clock domains to two trace
//! *processes* — pid 1 "pipeline (virtual time)" and pid 2
//! "host (wall time)" — and each track to a named *thread* within its
//! process, so Perfetto renders one row per pipeline stage / cohort
//! context / SIMT worker. Events are written sorted by track and
//! timestamp, so per-track timestamps are non-decreasing by construction
//! (a property the validator checks).

use std::collections::BTreeMap;

use crate::recorder::{Clock, OwnedArg, Phase, TraceRecorder};

/// pid used for virtual-time (pipeline) tracks.
pub const PID_VIRTUAL: u64 = 1;
/// pid used for wall-time (host/SIMT worker) tracks.
pub const PID_WALL: u64 = 2;

fn pid_of(clock: Clock) -> u64 {
    match clock {
        Clock::Virtual => PID_VIRTUAL,
        Clock::Wall => PID_WALL,
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format a finite f64 as JSON (JSON has no NaN/inf; callers guarantee
/// finiteness, with a 0 fallback to keep the document well-formed).
fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

fn arg_value(v: &OwnedArg, out: &mut String) {
    match v {
        OwnedArg::U64(n) => out.push_str(&format!("{n}")),
        OwnedArg::F64(f) => number(*f, out),
        OwnedArg::Str(s) => {
            out.push('"');
            escape(s, out);
            out.push('"');
        }
    }
}

impl TraceRecorder {
    /// Render the recorded events as a Chrome trace-event JSON document.
    ///
    /// Open the result in [Perfetto](https://ui.perfetto.dev) ("Open trace
    /// file") or `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let events = self.events();

        // Assign tids per (clock, track) in sorted order (deterministic).
        let mut tids: BTreeMap<(Clock, String), u64> = BTreeMap::new();
        for e in &events {
            let next = tids.len() as u64 + 1;
            tids.entry((e.clock, e.track.clone())).or_insert(next);
        }

        let mut out = String::with_capacity(events.len() * 96 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(s);
        };

        // Metadata: process and thread names.
        for (pid, name) in [
            (PID_VIRTUAL, "pipeline (virtual time)"),
            (PID_WALL, "host (wall time)"),
        ] {
            emit(
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut out,
            );
        }
        for ((clock, track), tid) in &tids {
            let pid = pid_of(*clock);
            let mut line = String::new();
            line.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\""
            ));
            escape(track, &mut line);
            line.push_str("\"}}");
            emit(&line, &mut out);
        }

        for e in &events {
            let pid = pid_of(e.clock);
            let tid = tids[&(e.clock, e.track.clone())];
            let mut line = String::new();
            let (ph, extra): (&str, String) = match &e.phase {
                Phase::Span { dur_us } => {
                    let mut d = String::new();
                    number(*dur_us, &mut d);
                    ("X", format!(",\"dur\":{d}"))
                }
                Phase::Begin => ("B", String::new()),
                Phase::End => ("E", String::new()),
                Phase::Instant => ("i", ",\"s\":\"t\"".to_string()),
                Phase::Counter { .. } => ("C", String::new()),
            };
            line.push_str(&format!(
                "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
            ));
            number(e.ts_us, &mut line);
            line.push_str(extra.as_str());
            line.push_str(",\"name\":\"");
            escape(&e.name, &mut line);
            line.push('"');
            match &e.phase {
                Phase::Counter { value } => {
                    line.push_str(",\"args\":{\"value\":");
                    number(*value, &mut line);
                    line.push('}');
                }
                _ if !e.args.is_empty() => {
                    line.push_str(",\"args\":{");
                    for (i, (k, v)) in e.args.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        line.push('"');
                        escape(k, &mut line);
                        line.push_str("\":");
                        arg_value(v, &mut line);
                    }
                    line.push('}');
                }
                _ => {}
            }
            line.push('}');
            emit(&line, &mut out);
        }
        out.push_str("\n]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Validation: a minimal JSON reader, enough to check trace well-formedness
// without external dependencies.
// ---------------------------------------------------------------------------

/// A parsed JSON value (validator-internal shape, exposed for tests).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not emitted by our exporter;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document (full input must be one value plus whitespace).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary of a validated Chrome trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCheck {
    /// Non-metadata events.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: usize,
    /// Names seen on span/instant events (sorted, deduplicated).
    pub names: Vec<String>,
}

/// Validate a Chrome trace-event JSON document: parses the JSON, checks
/// the `traceEvents` shape, and checks that timestamps are non-decreasing
/// within every `(pid, tid)` track.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(a)) => a,
        _ => return Err("missing traceEvents array".into()),
    };
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut count = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no timeline timestamp
        }
        count += 1;
        let pid = e
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if !ts.is_finite() {
            return Err(format!("event {i}: non-finite ts"));
        }
        if let Some(&prev) = last_ts.get(&(pid, tid)) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} decreases on track ({pid},{tid}) after {prev}"
                ));
            }
        }
        last_ts.insert((pid, tid), ts);
        if matches!(ph, "X" | "B" | "i") {
            if let Some(n) = e.get("name").and_then(Json::as_str) {
                names.push(n.to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    Ok(TraceCheck {
        events: count,
        tracks: last_ts.len(),
        names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ArgValue, Recorder};

    #[test]
    fn export_round_trips_through_validator() {
        let r = TraceRecorder::new();
        r.span(
            Clock::Virtual,
            "stage:parser",
            "parse",
            10.0,
            5.0,
            &[
                ("batch", ArgValue::U64(64)),
                ("kind", ArgValue::Str("k\"x")),
            ],
        );
        r.begin(
            Clock::Virtual,
            "ctx0",
            "form",
            0.0,
            &[("fill", ArgValue::F64(0.25))],
        );
        r.end(Clock::Virtual, "ctx0", 4.0);
        r.instant(Clock::Virtual, "ctx0", "launch", 4.0, &[]);
        r.counter(Clock::Virtual, "dispatch", "backlog_depth", 2.0, 3.0);
        r.span(Clock::Wall, "simt:w0", "warp 0", 0.0, 9.0, &[]);

        let json = r.chrome_json();
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.events, 6);
        assert_eq!(check.tracks, 4, "parser, ctx0, dispatch + one wall track");
        assert!(check.names.iter().any(|n| n == "parse"));
        assert!(check.names.iter().any(|n| n == "warp 0"));
    }

    #[test]
    fn validator_rejects_decreasing_timestamps() {
        let bad = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":1,"ts":10,"dur":1,"name":"a"},
            {"ph":"X","pid":1,"tid":1,"ts":5,"dur":1,"name":"b"}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn validator_rejects_syntax_errors() {
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(parse_json("{\"a\":1} x").is_err(), "trailing garbage");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"s":"q\"\\\nA","b":true,"n":null}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("q\"\\\nA"));
        match v.get("a") {
            Some(Json::Arr(a)) => {
                assert_eq!(a.len(), 3);
                assert_eq!(a[2].as_f64(), Some(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn empty_recorder_exports_valid_trace() {
        let r = TraceRecorder::new();
        let check = validate_chrome_trace(&r.chrome_json()).expect("valid");
        assert_eq!(check.events, 0);
    }
}
