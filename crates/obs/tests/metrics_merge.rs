//! Histogram merge properties and the Prometheus exposition golden file.
//!
//! The merge tests pin down the property the sharded `/metrics` endpoint
//! relies on: merging per-shard histograms is *exactly* the histogram of
//! the concatenated samples (same buckets, same quantiles), with the
//! usual bounded relative quantile error against the true sorted-sample
//! quantiles. The golden test freezes the exposition format byte-for-byte
//! so accidental format drift (escaping, HELP/TYPE lines, bucket
//! cumulation) fails CI.

use rhythm_obs::{
    validate_prometheus_text, AtomicHistogram, MetricKind, PromText, StreamingHistogram,
};

/// Deterministic pseudo-random stream (xorshift64*), so the tests need no
/// RNG dependency and the golden file is stable.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn sample_latency(state: &mut u64) -> f64 {
    // 1 µs .. ~100 ms, roughly log-uniform.
    let u = (xorshift(state) % 1_000_000) as f64 / 1_000_000.0;
    1e-6 * 10f64.powf(u * 5.0)
}

#[test]
fn merge_of_shard_histograms_equals_concatenated_histogram() {
    let shards = 4;
    let per_shard = 10_000;
    let mut state = 0x5EED_1234_5678_9ABCu64;
    let mut parts: Vec<StreamingHistogram> = Vec::new();
    let mut combined = StreamingHistogram::new(1e-6, 8);
    for _ in 0..shards {
        let mut h = StreamingHistogram::new(1e-6, 8);
        for _ in 0..per_shard {
            let v = sample_latency(&mut state);
            h.record(v);
            combined.record(v);
        }
        parts.push(h);
    }
    let mut merged = StreamingHistogram::new(1e-6, 8);
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged.count(), combined.count());
    assert_eq!(merged.min(), combined.min());
    assert_eq!(merged.max(), combined.max());
    assert_eq!(merged.nonzero_buckets(), combined.nonzero_buckets());
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(merged.quantile(q), combined.quantile(q), "q{q}");
    }
    // Sums may differ by float addition order only.
    let rel = (merged.sum() - combined.sum()).abs() / combined.sum();
    assert!(rel < 1e-9, "sum drift {rel}");
}

#[test]
fn atomic_snapshots_merge_like_their_single_writer_twins() {
    let mut state = 0xC0FFEEu64;
    let shards: Vec<AtomicHistogram> = (0..3).map(|_| AtomicHistogram::new(1e-6, 8, 64)).collect();
    let mut combined = StreamingHistogram::new(1e-6, 8);
    for i in 0..9_000 {
        let v = sample_latency(&mut state);
        shards[i % 3].record(v);
        combined.record(v);
    }
    let mut merged = StreamingHistogram::new(1e-6, 8);
    for s in &shards {
        merged.merge(&s.snapshot());
    }
    assert_eq!(merged.count(), combined.count());
    assert_eq!(merged.nonzero_buckets(), combined.nonzero_buckets());
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(merged.quantile(q), combined.quantile(q), "q{q}");
    }
}

#[test]
fn merged_quantiles_stay_within_the_resolution_bound() {
    let sub = 8u32;
    let bound = 2f64.powf(1.0 / sub as f64) - 1.0;
    let mut state = 0xDEAD_BEEFu64;
    let mut samples: Vec<f64> = Vec::new();
    let mut parts: Vec<StreamingHistogram> =
        (0..4).map(|_| StreamingHistogram::new(1e-6, sub)).collect();
    for i in 0..40_000 {
        let v = sample_latency(&mut state);
        parts[i % 4].record(v);
        samples.push(v);
    }
    let mut merged = StreamingHistogram::new(1e-6, sub);
    for p in &parts {
        merged.merge(p);
    }
    samples.sort_by(f64::total_cmp);
    for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
        let exact =
            samples[((q * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
        let got = merged.quantile(q);
        let rel = (got - exact).abs() / exact;
        assert!(
            rel <= bound + 1e-9,
            "q{q}: merged {got} vs exact {exact} (rel {rel} > {bound})"
        );
    }
}

/// Render the frozen document the golden file pins down.
fn golden_document() -> String {
    let mut t = PromText::new();
    t.header(
        "rhythm_requests_total",
        "Complete requests parsed off sockets",
        MetricKind::Counter,
    );
    t.sample_u64("rhythm_requests_total", &[("shard", "0")], 1280);
    t.sample_u64("rhythm_requests_total", &[("shard", "1")], 1275);
    t.header(
        "rhythm_connections",
        "Currently admitted connections",
        MetricKind::Gauge,
    );
    t.sample("rhythm_connections", &[("shard", "0")], 12.0);
    t.header(
        "rhythm_escapes",
        "Label escaping: backslash \\ quote \" newline\nend",
        MetricKind::Gauge,
    );
    t.sample("rhythm_escapes", &[("path", "a\"b\\c\nd")], 1.5);
    let mut h = StreamingHistogram::new(1e-3, 1);
    for v in [0.0015, 0.003, 0.003, 0.02, 0.5] {
        h.record(v);
    }
    t.header(
        "rhythm_request_latency_seconds",
        "End-to-end request latency",
        MetricKind::Histogram,
    );
    t.histogram(
        "rhythm_request_latency_seconds",
        &[("type", "login.php")],
        &h,
    );
    t.finish()
}

#[test]
fn prometheus_exposition_matches_golden_file() {
    let rendered = golden_document();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "exposition format drifted from tests/golden/metrics.prom \
         (run with UPDATE_GOLDEN=1 to regenerate intentionally)"
    );
    let check = validate_prometheus_text(&rendered).expect("golden document is valid");
    assert_eq!(check.families, 4);
    // Escaped label value survives a validator round-trip.
    assert!(rendered.contains("path=\"a\\\"b\\\\c\\nd\""));
    // HELP escaping: newline folded to \n, backslash doubled.
    assert!(rendered.contains("backslash \\\\ quote \" newline\\nend"));
}
