//! Property tests for the SIMT substrate: CFG analysis, executor
//! equivalence, coalescing monotonicity, and the stream scheduler.

use proptest::prelude::*;

use rhythm_simt::exec::scalar::{execute_scalar, ScalarRun};
use rhythm_simt::exec::simt::execute_simt;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::ir::{
    immediate_post_dominators, BinOp, Block, Op, Program, ProgramBuilder, Reg, Terminator,
    EXIT_BLOCK,
};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::streams::{schedule, StreamOp};

/// Build a random but structurally valid CFG: every block jumps or
/// branches to blocks, the last block halts.
fn arb_program(max_blocks: usize) -> impl Strategy<Value = Program> {
    (2..max_blocks)
        .prop_flat_map(|n| {
            (
                Just(n),
                prop::collection::vec((0..n as u32, 0..n as u32, any::<bool>()), n - 1),
            )
        })
        .prop_map(|(n, edges)| {
            let mut blocks = Vec::with_capacity(n);
            for (i, &(t, f, cond)) in edges.iter().enumerate() {
                let term = if cond {
                    Terminator::Br {
                        cond: Reg(0),
                        then_bb: t,
                        else_bb: f,
                    }
                } else {
                    Terminator::Jmp(t)
                };
                blocks.push(Block {
                    label: None,
                    ops: vec![Op::Imm {
                        dst: Reg(0),
                        value: i as u32,
                    }],
                    term,
                });
            }
            blocks.push(Block {
                label: None,
                ops: vec![],
                term: Terminator::Halt,
            });
            Program::from_parts("arb", blocks, 1, 0).expect("structurally valid")
        })
}

proptest! {
    /// Every block's IPDom is either EXIT or a block that post-dominates
    /// it: removing the ipdom from the CFG must disconnect the block from
    /// exit (checked by reachability).
    #[test]
    fn ipdom_postdominates(p in arb_program(10)) {
        let ip = immediate_post_dominators(&p);
        let n = p.blocks().len();
        // Reachability to exit avoiding a removed node.
        let reaches_exit = |from: usize, removed: Option<usize>| -> bool {
            let mut seen = vec![false; n];
            let mut stack = vec![from];
            while let Some(b) = stack.pop() {
                if Some(b) == removed {
                    continue;
                }
                if seen[b] {
                    continue;
                }
                seen[b] = true;
                match &p.block(b as u32).term {
                    Terminator::Halt => return true,
                    t => stack.extend(t.successors().iter().map(|&s| s as usize)),
                }
            }
            false
        };
        for (b, &d) in ip.iter().enumerate().take(n) {
            if d == EXIT_BLOCK {
                continue;
            }
            let d = d as usize;
            prop_assert_ne!(d, b, "ipdom is strict");
            if reaches_exit(b, None) {
                prop_assert!(
                    !reaches_exit(b, Some(d)),
                    "block {} reaches exit without its ipdom {}",
                    b,
                    d
                );
            }
        }
    }

    /// Scalar and SIMT executors write identical memory for arbitrary
    /// (terminating) control flow driven by lane-dependent data.
    #[test]
    fn executors_agree_on_branchy_kernels(
        lanes in 1u32..66,
        seed in any::<u32>(),
        iters in 1u32..8,
    ) {
        let mut b = ProgramBuilder::new("p");
        let gid = b.global_id();
        let s = b.imm(seed | 1);
        let acc = b.bin(BinOp::Mul, gid, s);
        let n = b.imm(iters);
        b.for_loop(n, |b, i| {
            let three = b.imm(3);
            let m = b.bin(BinOp::RemU, acc, three);
            let zero = b.imm(0);
            let is0 = b.bin(BinOp::Eq, m, zero);
            b.if_then_else(
                is0,
                |b| {
                    let c = b.imm(0x9E37);
                    b.bin_into(acc, BinOp::Add, acc, c);
                },
                |b| {
                    let one = b.imm(1);
                    let m1 = b.bin(BinOp::Eq, m, one);
                    b.if_then_else(
                        m1,
                        |b| {
                            let c = b.imm(3);
                            b.bin_into(acc, BinOp::Mul, acc, c);
                        },
                        |b| {
                            let c = b.imm(7);
                            b.bin_into(acc, BinOp::Xor, acc, c);
                        },
                    );
                },
            );
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, gid, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();

        let pool = ConstPool::new();
        let mut simt = DeviceMemory::new(lanes as usize * 4);
        execute_simt(&p, &LaunchConfig::new(lanes, []), &mut simt, &pool).unwrap();
        let mut scalar = DeviceMemory::new(lanes as usize * 4);
        let cfg = LaunchConfig::new(1, []);
        for id in 0..lanes {
            execute_scalar(&ScalarRun::new(&p, id), &cfg, &mut scalar, &pool, None).unwrap();
        }
        prop_assert_eq!(simt.as_bytes(), scalar.as_bytes());
    }

    /// Coalescing: a warp byte-store at stride k needs a number of
    /// transactions that never decreases with the stride (up to the
    /// transaction size).
    #[test]
    fn transactions_monotone_in_stride(strides in prop::collection::vec(1u32..512, 2..6)) {
        let tx = |stride: u32| -> u64 {
            let mut b = ProgramBuilder::new("s");
            let gid = b.global_id();
            let k = b.imm(stride);
            let addr = b.bin(BinOp::Mul, gid, k);
            b.st_global_byte(addr, 0, gid);
            b.halt();
            let p = b.build().unwrap();
            let mut mem = DeviceMemory::new(512 * 32 + 8);
            let pool = ConstPool::new();
            let stats = execute_simt(&p, &LaunchConfig::new(32, []), &mut mem, &pool).unwrap();
            stats.mem_transactions
        };
        let mut sorted = strides.clone();
        sorted.sort_unstable();
        let txs: Vec<u64> = sorted.iter().map(|&s| tx(s)).collect();
        for w in txs.windows(2) {
            prop_assert!(w[0] <= w[1], "coalescing cannot improve with larger stride: {txs:?} for {sorted:?}");
        }
    }

    /// Stream scheduling: a single hardware queue is the worst case (any
    /// queue count beats it); with at least as many queues as stream ids,
    /// streams never collide (zero false-dependency stalls). Note that
    /// between two multi-queue configurations the modulo assignment can
    /// go either way — exactly the hash-collision behaviour of the real
    /// CUDA driver's stream-to-queue mapping.
    #[test]
    fn hyperq_never_hurts(
        ops in prop::collection::vec((0u32..6, 1u32..100), 1..24),
        q2 in 2u32..33,
    ) {
        let ops: Vec<StreamOp> = ops
            .into_iter()
            .map(|(stream, d)| StreamOp {
                stream,
                duration_s: d as f64 * 1e-6,
                label: "k",
            })
            .collect();
        let few = schedule(&ops, 1, 16);
        let many = schedule(&ops, q2, 16);
        prop_assert!(many.makespan_s <= few.makespan_s + 1e-12);
        let ample = schedule(&ops, 33, 16);
        prop_assert_eq!(ample.false_dependency_stalls, 0, "one queue per stream");
        prop_assert!(ample.makespan_s <= many.makespan_s + 1e-12);

        // Same-stream ops never overlap.
        for (i, a) in ops.iter().enumerate() {
            for (j, b) in ops.iter().enumerate().skip(i + 1) {
                if a.stream == b.stream {
                    let (ta, tb) = (&many.timings[i], &many.timings[j]);
                    prop_assert!(tb.start_s >= ta.end_s - 1e-12);
                }
            }
        }
    }

    /// DeviceMemory loads/slices round-trip arbitrary data at arbitrary
    /// in-range offsets.
    #[test]
    fn device_memory_roundtrip(
        data in prop::collection::vec(any::<u8>(), 1..256),
        pad in 0u32..64,
    ) {
        let mut mem = DeviceMemory::new(data.len() + pad as usize);
        mem.load(pad.min(mem.len() as u32 - data.len() as u32), &data).unwrap();
        let off = pad.min(mem.len() as u32 - data.len() as u32);
        prop_assert_eq!(mem.slice(off, data.len() as u32).unwrap(), &data[..]);
    }
}
