//! Property tests pitting `immediate_post_dominators` against a
//! brute-force oracle.
//!
//! The oracle defines post-domination from first principles: `d` strictly
//! post-dominates `b` iff `b` can reach the (virtual) exit, and removing
//! `d` from the CFG disconnects `b` from it. The immediate post-dominator
//! is then the unique element of that set which every other element
//! post-dominates (the "closest" one). This is `O(n^3)` per program —
//! fine for test-sized CFGs — and shares no code with the
//! Cooper–Harvey–Kennedy implementation it checks.

use proptest::prelude::*;

use rhythm_simt::ir::{
    immediate_post_dominators, BinOp, Block, Op, Program, ProgramBuilder, Reg, Terminator,
    EXIT_BLOCK,
};

/// Random but structurally valid CFG: every block jumps or branches to
/// arbitrary blocks, the last block halts.
fn arb_program(max_blocks: usize) -> impl Strategy<Value = Program> {
    (2..max_blocks)
        .prop_flat_map(|n| {
            (
                Just(n),
                prop::collection::vec((0..n as u32, 0..n as u32, any::<bool>()), n - 1),
            )
        })
        .prop_map(|(n, edges)| {
            let mut blocks = Vec::with_capacity(n);
            for &(t, f, cond) in &edges {
                let term = if cond {
                    Terminator::Br {
                        cond: Reg(0),
                        then_bb: t,
                        else_bb: f,
                    }
                } else {
                    Terminator::Jmp(t)
                };
                blocks.push(Block {
                    label: None,
                    ops: vec![Op::Imm {
                        dst: Reg(0),
                        value: 0,
                    }],
                    term,
                });
            }
            blocks.push(Block {
                label: None,
                ops: vec![],
                term: Terminator::Halt,
            });
            Program::from_parts("arb", blocks, 1, 0).expect("structurally valid")
        })
}

/// Structured CFGs from the builder's `if`/`loop` combinators — the
/// shapes real kernels have (diamonds, nested loops, shared joins).
fn structured_program(codes: &[u8]) -> Program {
    fn emit(b: &mut ProgramBuilder, codes: &[u8], depth: usize) {
        let Some((&c, rest)) = codes.split_first() else {
            return;
        };
        let lane = b.lane_id();
        let one = b.imm(1);
        let cond = b.bin(BinOp::And, lane, one);
        match c % 4 {
            0 => {
                b.if_then(cond, |b| {
                    if depth < 3 {
                        emit(b, rest, depth + 1);
                    }
                });
            }
            1 => {
                b.if_then_else(
                    cond,
                    |b| {
                        if depth < 3 {
                            emit(b, rest, depth + 1);
                        }
                    },
                    |b| {
                        let _ = b.imm(7);
                    },
                );
            }
            2 => {
                let n = b.imm(2);
                b.for_loop(n, |b, _i| {
                    if depth < 3 {
                        emit(b, rest, depth + 1);
                    }
                });
            }
            _ => {
                let _ = b.bin(BinOp::Add, lane, one);
                emit(b, rest, depth);
            }
        }
        // Sequence: spend the rest of the codes at this depth too, so we
        // get sibling regions sharing a join, not just nesting.
        if depth == 0 && rest.len() > 1 {
            emit(b, &rest[rest.len() / 2..], depth);
        }
    }
    let mut b = ProgramBuilder::new("structured");
    emit(&mut b, codes, 0);
    b.halt();
    b.build().expect("builder emits valid programs")
}

/// `b` reaches the virtual exit without passing through `removed`.
fn reaches_exit(p: &Program, from: usize, removed: Option<usize>) -> bool {
    let n = p.blocks().len();
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    while let Some(b) = stack.pop() {
        if Some(b) == removed || seen[b] {
            continue;
        }
        seen[b] = true;
        match &p.block(b as u32).term {
            Terminator::Halt => return true,
            t => stack.extend(t.successors().iter().map(|&s| s as usize)),
        }
    }
    false
}

/// Brute-force immediate post-dominator of `b`, or `EXIT_BLOCK`.
fn oracle_ipdom(p: &Program, b: usize) -> u32 {
    if !reaches_exit(p, b, None) {
        return EXIT_BLOCK;
    }
    let n = p.blocks().len();
    // Strict post-dominators: removing d cuts b off from exit.
    let spdom: Vec<usize> = (0..n)
        .filter(|&d| d != b && !reaches_exit(p, b, Some(d)))
        .collect();
    if spdom.is_empty() {
        return EXIT_BLOCK;
    }
    // The immediate one is post-dominated by every other element.
    let mut candidates: Vec<usize> = spdom
        .iter()
        .copied()
        .filter(|&d| {
            spdom
                .iter()
                .all(|&other| other == d || !reaches_exit(p, d, Some(other)))
        })
        .collect();
    assert_eq!(
        candidates.len(),
        1,
        "post-dominators of bb{b} do not form a chain: {spdom:?}"
    );
    candidates.pop().unwrap() as u32
}

fn assert_matches_oracle(p: &Program) {
    let ip = immediate_post_dominators(p);
    for (b, &got) in ip.iter().enumerate() {
        assert_eq!(
            got,
            oracle_ipdom(p, b),
            "ipdom mismatch at bb{} of {} blocks",
            b,
            p.blocks().len()
        );
    }
}

proptest! {
    /// CHK-on-reverse-CFG agrees with the brute-force reachability oracle
    /// on arbitrary (including irreducible and non-terminating) CFGs.
    #[test]
    fn ipdom_matches_bruteforce_oracle(p in arb_program(12)) {
        assert_matches_oracle(&p);
    }

    /// Same oracle over builder-structured programs: nested diamonds,
    /// counted loops, and sibling regions sharing joins.
    #[test]
    fn ipdom_matches_oracle_on_structured_cfgs(codes in prop::collection::vec(any::<u8>(), 1..8)) {
        let p = structured_program(&codes);
        assert_matches_oracle(&p);
    }
}
