//! Integration tests for the device model: program serialization,
//! disassembly, timing-model algebra, and the launch API surface.

use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::ir::{BinOp, Program, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::stats::KernelStats;

fn sample_program() -> Program {
    let mut b = ProgramBuilder::new("sample");
    let gid = b.global_id();
    let n = b.imm(8);
    let acc = b.imm(0);
    b.for_loop(n, |b, i| {
        b.bin_into(acc, BinOp::Add, acc, i);
    });
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 0, acc);
    b.halt();
    b.build().unwrap()
}

#[test]
fn disassembly_lists_every_block() {
    let p = sample_program();
    let d = p.disassemble();
    for i in 0..p.blocks().len() {
        assert!(d.contains(&format!("bb{i}:")), "missing bb{i} in\n{d}");
    }
    assert!(d.contains("kernel sample"));
    assert!(d.contains("Halt"));
}

#[test]
fn timing_model_is_monotone_in_cycles_and_bytes() {
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let mk = |cycles: u64, bytes: u64| KernelStats {
        warp_cycles: cycles,
        max_warp_cycles: cycles / 10,
        dram_bytes: bytes,
        ..Default::default()
    };
    let base = gpu.sustained_time(&mk(1_000_000, 1_000_000));
    assert!(gpu.sustained_time(&mk(2_000_000, 1_000_000)) > base);
    assert!(gpu.sustained_time(&mk(1_000_000, 1_000_000_000)) > base);
    // Isolated-launch time is at least the sustained time.
    let res = gpu.time(mk(1_000_000, 1_000_000));
    assert!(res.time_s >= base - 1e-12);
}

#[test]
fn memory_bound_flag_tracks_regime() {
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let compute_heavy = KernelStats {
        warp_cycles: 100_000_000,
        dram_bytes: 1_000,
        ..Default::default()
    };
    assert!(!gpu.time(compute_heavy).memory_bound);
    let memory_heavy = KernelStats {
        warp_cycles: 1_000,
        dram_bytes: 10_000_000_000,
        ..Default::default()
    };
    assert!(gpu.time(memory_heavy).memory_bound);
}

#[test]
fn launch_respects_device_tx_bytes() {
    // The launch overrides the config's tx_bytes with the device's, so
    // transaction counts are device-defined.
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let mut b = ProgramBuilder::new("stride64");
    let gid = b.global_id();
    let stride = b.imm(64);
    let addr = b.bin(BinOp::Mul, gid, stride);
    b.st_global_byte(addr, 0, gid);
    b.halt();
    let p = b.build().unwrap();
    let mut mem = DeviceMemory::new(64 * 32);
    let mut cfg = LaunchConfig::new(32, []);
    cfg.tx_bytes = 7; // bogus; must be overridden to 128
    let res = gpu.launch(&p, &cfg, &mut mem, &ConstPool::new()).unwrap();
    // 32 lanes at stride 64 over 128-byte segments → 16 transactions.
    assert_eq!(res.stats.mem_transactions, 16);
}

#[test]
fn underfilled_launches_cost_at_least_one_warp_critical_path() {
    let gpu = Gpu::new(GpuConfig::gtx_titan());
    let p = sample_program();
    let mut mem = DeviceMemory::new(4 * 32);
    let res = gpu
        .launch(&p, &LaunchConfig::new(1, []), &mut mem, &ConstPool::new())
        .unwrap();
    let expected_floor =
        res.stats.max_warp_cycles as f64 / gpu.config().clock_hz + gpu.config().launch_overhead_s;
    assert!(res.time_s >= expected_floor - 1e-12);
}

#[test]
fn gtx_690_is_slower_than_titan_for_same_stats() {
    let titan = Gpu::new(GpuConfig::gtx_titan());
    let g690 = Gpu::new(GpuConfig::gtx_690());
    let stats = KernelStats {
        warp_cycles: 50_000_000,
        dram_bytes: 100_000_000,
        ..Default::default()
    };
    assert!(g690.sustained_time(&stats) > titan.sustained_time(&stats));
}
