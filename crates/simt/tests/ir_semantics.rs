//! Pin the IR doc-comment contracts to actual executor behavior, so the
//! docs in `ir/mod.rs` cannot silently drift from `exec/`:
//!
//! * `Shl`/`Shr` take shift amounts modulo 32 (not saturate, not trap).
//! * `DivU` by zero yields `u32::MAX`; `RemU` by zero yields the dividend.
//! * `Width::Byte` loads zero-extend and stores write the low byte only.
//! * `WarpRedMax` reduces over the *active* lanes of the warp, broadcasts
//!   to those lanes, is the identity on the scalar executor, and costs
//!   `log2(warp) = 5` warp issues.
//! * `AtomicAdd` returns the old value, with same-address lanes
//!   serialized in lane order.

use rhythm_simt::exec::scalar::{execute_scalar, ScalarRun};
use rhythm_simt::exec::simt::execute_simt;
use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::ir::{BinOp, MemSpace, Program, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};

fn run(p: &Program, lanes: u32, bytes: usize) -> DeviceMemory {
    let mut mem = DeviceMemory::new(bytes);
    execute_simt(
        p,
        &LaunchConfig::new(lanes, []),
        &mut mem,
        &ConstPool::new(),
    )
    .unwrap();
    mem
}

fn word(mem: &DeviceMemory, addr: usize) -> u32 {
    u32::from_le_bytes(mem.as_bytes()[addr..addr + 4].try_into().unwrap())
}

#[test]
fn shifts_take_amount_modulo_32_in_the_executor() {
    let mut b = ProgramBuilder::new("shifts");
    let one = b.imm(1);
    let thirty_three = b.imm(33);
    let l = b.bin(BinOp::Shl, one, thirty_three); // 1 << (33 % 32) == 2
    let four = b.imm(4);
    let r = b.bin(BinOp::Shr, four, thirty_three); // 4 >> 1 == 2
    let a0 = b.imm(0);
    b.st_global_word(a0, 0, l);
    b.st_global_word(a0, 4, r);
    b.halt();
    let mem = run(&b.build().unwrap(), 1, 8);
    assert_eq!(word(&mem, 0), 2);
    assert_eq!(word(&mem, 4), 2);
}

#[test]
fn division_by_zero_follows_gpu_semantics_in_the_executor() {
    let mut b = ProgramBuilder::new("divzero");
    let seven = b.imm(7);
    let zero = b.imm(0);
    let q = b.bin(BinOp::DivU, seven, zero); // u32::MAX, no trap
    let r = b.bin(BinOp::RemU, seven, zero); // the dividend
    let a0 = b.imm(0);
    b.st_global_word(a0, 0, q);
    b.st_global_word(a0, 4, r);
    b.halt();
    let mem = run(&b.build().unwrap(), 1, 8);
    assert_eq!(word(&mem, 0), u32::MAX);
    assert_eq!(word(&mem, 4), 7);
}

#[test]
fn byte_accesses_zero_extend_loads_and_truncate_stores() {
    let mut b = ProgramBuilder::new("bytes");
    let v = b.imm(0x1234_56FE);
    let a0 = b.imm(0);
    b.st_global_byte(a0, 0, v); // only 0xFE lands
    let back = b.ld_global_byte(a0, 0); // 0x0000_00FE, high bits zero
    b.st_global_word(a0, 4, back);
    b.halt();
    let mem = run(&b.build().unwrap(), 1, 8);
    assert_eq!(mem.as_bytes()[0], 0xFE);
    assert_eq!(&mem.as_bytes()[1..4], &[0, 0, 0], "store is one byte wide");
    assert_eq!(word(&mem, 4), 0xFE, "load zero-extends");
}

#[test]
fn warp_red_max_reduces_over_active_lanes_only() {
    // Odd lanes branch into the reduction; even lanes are masked off.
    // Active lanes see max(lane | odd) = 31; inactive slots stay zero.
    let mut b = ProgramBuilder::new("active_max");
    let lane = b.lane_id();
    let one = b.imm(1);
    let odd = b.bin(BinOp::And, lane, one);
    b.if_then(odd, |b| {
        let m = b.warp_red_max(lane);
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, lane, four);
        b.st_global_word(addr, 0, m);
    });
    b.halt();
    let mem = run(&b.build().unwrap(), 32, 128);
    for lane in 0..32usize {
        let expect = if lane % 2 == 1 { 31 } else { 0 };
        assert_eq!(word(&mem, lane * 4), expect, "lane {lane}");
    }
}

#[test]
fn warp_red_max_is_identity_on_the_scalar_executor() {
    let mut b = ProgramBuilder::new("scalar_identity");
    let gid = b.global_id();
    let three = b.imm(3);
    let v = b.bin(BinOp::Mul, gid, three);
    let m = b.warp_red_max(v);
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, gid, four);
    b.st_global_word(addr, 0, m);
    b.halt();
    let p = b.build().unwrap();

    let pool = ConstPool::new();
    let mut mem = DeviceMemory::new(128);
    let cfg = LaunchConfig::new(1, []);
    for id in 0..32 {
        execute_scalar(&ScalarRun::new(&p, id), &cfg, &mut mem, &pool, None).unwrap();
    }
    // Identity: each lane keeps its own value, nobody sees the max.
    for lane in 0..32usize {
        assert_eq!(word(&mem, lane * 4), lane as u32 * 3, "lane {lane}");
    }
}

#[test]
fn warp_red_max_costs_five_warp_issues() {
    let build = |reduce: bool| {
        let mut b = ProgramBuilder::new("cost");
        let lane = b.lane_id();
        let v = if reduce {
            b.warp_red_max(lane)
        } else {
            let z = b.imm(0);
            b.bin(BinOp::Or, lane, z)
        };
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, lane, four);
        b.st_global_word(addr, 0, v);
        b.halt();
        b.build().unwrap()
    };
    let stats = |p: &Program| {
        let mut mem = DeviceMemory::new(128);
        execute_simt(p, &LaunchConfig::new(32, []), &mut mem, &ConstPool::new()).unwrap()
    };
    let with = stats(&build(true));
    let without = stats(&build(false));
    // Doc contract: log2(32) = 5 issues total for the butterfly, i.e. 4
    // beyond the single issue any op costs (the baseline uses Or+Imm, so
    // subtract that extra Imm issue).
    assert_eq!(
        with.warp_instructions,
        without.warp_instructions - 1 + 4,
        "WarpRedMax should cost 5 warp issues where a plain ALU op costs 1"
    );
}

#[test]
fn atomic_add_serializes_same_address_lanes_in_lane_order() {
    // Every lane adds (lane+1) to one counter and records the old value
    // it observed. Serialization in lane order makes the old values the
    // exact prefix sums — any other interleaving would break some lane.
    let mut b = ProgramBuilder::new("prefix");
    let lane = b.lane_id();
    let one = b.imm(1);
    let inc = b.bin(BinOp::Add, lane, one);
    let counter = b.imm(0);
    let old = b.atomic_add(MemSpace::Global, counter, 0, inc);
    let four = b.imm(4);
    let slot = b.bin(BinOp::Mul, lane, four);
    b.st_global_word(slot, 4, old);
    b.halt();
    let mem = run(&b.build().unwrap(), 32, 4 + 128);

    let mut prefix = 0u32;
    for lane in 0..32u32 {
        assert_eq!(
            word(&mem, 4 + lane as usize * 4),
            prefix,
            "lane {lane} old value"
        );
        prefix += lane + 1;
    }
    assert_eq!(word(&mem, 0), prefix, "counter holds the full sum");
}
