//! Exact accounting for the decode-plan cache and the warp arena.
//!
//! These assertions need sole ownership of the process-global counters
//! (`plan_cache_stats`, `warp_arena_stats`), so they live in one stateful
//! integration test: integration tests get their own process, and a single
//! `#[test]` fn serializes every counter-sensitive step.

use std::sync::Arc;

use rhythm_simt::exec::LaunchConfig;
use rhythm_simt::gpu::{Gpu, GpuConfig};
use rhythm_simt::ir::{BinOp, ProgramBuilder};
use rhythm_simt::mem::{ConstPool, DeviceMemory};
use rhythm_simt::{plan_cache_stats, plan_for, warp_arena_stats};

fn kernel(name: &str) -> rhythm_simt::Program {
    let mut b = ProgramBuilder::new(name);
    let g = b.global_id();
    let three = b.imm(3);
    let n = b.bin(BinOp::RemU, g, three);
    let acc = b.imm(0);
    b.for_loop(n, |b, i| {
        b.bin_into(acc, BinOp::Add, acc, i);
    });
    let four = b.imm(4);
    let addr = b.bin(BinOp::Mul, g, four);
    b.st_global_word(addr, 0, acc);
    b.halt();
    b.build().unwrap()
}

#[test]
fn plan_cache_and_warp_arena_exact_accounting() {
    let p = kernel("accounting_kernel");
    let lanes = 256u32; // 8 warps
    let cfg = LaunchConfig::new(lanes, []);
    let pool = ConstPool::new();

    // --- Plan cache: first fetch decodes, every later fetch hits. ---
    let c0 = plan_cache_stats();
    let plan_a = plan_for(&p);
    let c1 = plan_cache_stats().since(&c0);
    assert_eq!((c1.hits, c1.misses), (0, 1), "first fetch is the only miss");

    let plan_b = plan_for(&p);
    assert!(Arc::ptr_eq(&plan_a, &plan_b), "refetch shares the plan");
    let c2 = plan_cache_stats().since(&c0);
    assert_eq!((c2.hits, c2.misses), (1, 1));
    assert!(c2.hit_rate() > 0.49 && c2.hit_rate() < 0.51);

    // --- Launching through a Gpu uses the same cache (no re-decode). ---
    let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(2));
    assert!(gpu.plan_cache(), "cache is on by default");
    let mut mem = DeviceMemory::new(lanes as usize * 4);
    gpu.launch(&p, &cfg, &mut mem, &pool).unwrap();
    let c3 = plan_cache_stats().since(&c0);
    assert_eq!(c3.misses, 1, "launch must not decode again");
    assert_eq!(c3.hits, 2);

    // A cache-disabled device decodes fresh without touching the counters.
    let uncached = gpu.clone().with_plan_cache(false);
    assert!(!uncached.plan_cache());
    let mut mem2 = DeviceMemory::new(lanes as usize * 4);
    let r2 = uncached.launch(&p, &cfg, &mut mem2, &pool).unwrap();
    let c4 = plan_cache_stats().since(&c0);
    assert_eq!(
        (c4.hits, c4.misses),
        (c3.hits, c3.misses),
        "uncached launch leaves the cache untouched"
    );
    assert_eq!(mem2.as_bytes(), mem.as_bytes(), "cache toggle is invisible");

    // --- Warp arena: steady state allocates nothing. ---
    // Use a serial device so the lease schedule is deterministic (with
    // concurrent workers the arena's population depends on whether worker
    // leases actually overlapped while warming up). One warm-up launch
    // grows a pooled context to this kernel's buffer sizes.
    let serial = Gpu::new(GpuConfig::gtx_titan().with_workers(1));
    let mut mem3 = DeviceMemory::new(lanes as usize * 4);
    serial.launch(&p, &cfg, &mut mem3, &pool).unwrap();

    let a0 = warp_arena_stats();
    let mut results = Vec::new();
    for _ in 0..5 {
        let mut m = DeviceMemory::new(lanes as usize * 4);
        let r = serial.launch(&p, &cfg, &mut m, &pool).unwrap();
        results.push((r, m));
    }
    let steady = warp_arena_stats().since(&a0);
    assert!(steady.acquired >= 5, "each launch leases warp contexts");
    assert_eq!(
        steady.allocated, 0,
        "steady-state cached launches must run allocation-free \
         (every warp context recycled from the arena)"
    );
    assert_eq!(steady.reused, steady.acquired);
    assert!((steady.reuse_rate() - 1.0).abs() < 1e-12);

    // And the recycled contexts still produce bit-identical results.
    for (r, m) in &results {
        assert_eq!(r, &results[0].0);
        assert_eq!(m.as_bytes(), results[0].1.as_bytes());
    }
    assert_eq!(mem3.as_bytes(), mem.as_bytes());
    assert_eq!(r2.stats, results[0].0.stats);
}
