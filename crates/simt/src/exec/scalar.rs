//! Scalar executor: runs a kernel one lane at a time.
//!
//! This models a general purpose CPU core executing the same program the
//! GPU runs — the paper's "standalone C implementation". It also emits
//! dynamic basic-block traces, the raw material for the request-similarity
//! study (Figure 2).

use crate::ir::{BlockId, MemSpace, Op, Program, Terminator, Width};
use crate::mem::{ConstPool, DeviceMemory, MemError};
use crate::stats::ScalarStats;

use super::{ExecError, LaunchConfig};

/// One scalar execution request.
#[derive(Clone, Debug)]
pub struct ScalarRun<'a> {
    /// The kernel to execute.
    pub program: &'a Program,
    /// The value returned by `Op::GlobalId` (the request slot).
    pub global_id: u32,
}

impl<'a> ScalarRun<'a> {
    /// Run for `program` acting as global lane `global_id`.
    pub fn new(program: &'a Program, global_id: u32) -> Self {
        ScalarRun { program, global_id }
    }
}

/// Execute one lane to completion.
///
/// `trace`, when supplied, receives the dynamic sequence of [`BlockId`]s
/// entered — the basic-block trace used by `rhythm-trace` for merging.
///
/// # Errors
///
/// Fails on out-of-bounds memory access, writes to constant memory,
/// missing launch parameters, or when `cfg.max_instructions` is exceeded.
///
/// # Example
///
/// ```
/// use rhythm_simt::ir::{ProgramBuilder, BinOp};
/// use rhythm_simt::exec::{scalar::{execute_scalar, ScalarRun}, LaunchConfig};
/// use rhythm_simt::mem::{ConstPool, DeviceMemory};
///
/// let mut b = ProgramBuilder::new("store42");
/// let v = b.imm(42);
/// let a = b.imm(0);
/// b.st_global_word(a, 0, v);
/// b.halt();
/// let p = b.build()?;
///
/// let mut mem = DeviceMemory::new(16);
/// let pool = ConstPool::new();
/// let cfg = LaunchConfig::new(1, []);
/// let stats = execute_scalar(&ScalarRun::new(&p, 0), &cfg, &mut mem, &pool, None)?;
/// assert_eq!(mem.read_word(0)?, 42);
/// assert_eq!(stats.instructions, 4); // 3 ops + halt
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_scalar(
    run: &ScalarRun<'_>,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    mut trace: Option<&mut Vec<BlockId>>,
) -> Result<ScalarStats, ExecError> {
    let program = run.program;
    let mut regs = vec![0u32; program.num_regs() as usize];
    let mut local = vec![0u8; cfg.local_bytes as usize];
    let mut shared = vec![0u8; cfg.shared_bytes as usize];
    let mut stats = ScalarStats::default();

    let mut block = program.entry();
    loop {
        if let Some(t) = trace.as_deref_mut() {
            t.push(block);
        }
        stats.blocks += 1;
        let b = program.block(block);
        for op in &b.ops {
            stats.instructions += 1;
            if stats.instructions > cfg.max_instructions {
                return Err(ExecError::Budget {
                    executed: stats.instructions,
                });
            }
            step(
                op,
                &mut regs,
                &mut local,
                &mut shared,
                mem,
                pool,
                cfg,
                run.global_id,
                &mut stats,
            )?;
        }
        stats.instructions += 1; // the terminator
        match b.term {
            Terminator::Jmp(t) => block = t,
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                block = if regs[cond.0 as usize] != 0 {
                    then_bb
                } else {
                    else_bb
                };
            }
            Terminator::Halt => break,
        }
    }
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn step(
    op: &Op,
    regs: &mut [u32],
    local: &mut [u8],
    shared: &mut [u8],
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    cfg: &LaunchConfig,
    global_id: u32,
    stats: &mut ScalarStats,
) -> Result<(), ExecError> {
    let r = |regs: &[u32], reg: crate::ir::Reg| regs[reg.0 as usize];
    match *op {
        Op::Imm { dst, value } => regs[dst.0 as usize] = value,
        Op::Mov { dst, src } => regs[dst.0 as usize] = r(regs, src),
        Op::Bin { op, dst, a, b } => {
            regs[dst.0 as usize] = op.eval(r(regs, a), r(regs, b));
        }
        Op::Un { op, dst, a } => regs[dst.0 as usize] = op.eval(r(regs, a)),
        Op::LaneId { dst } => regs[dst.0 as usize] = 0,
        Op::GlobalId { dst } => regs[dst.0 as usize] = global_id,
        Op::Param { dst, index } => {
            let v = cfg
                .params
                .get(index as usize)
                .copied()
                .ok_or(ExecError::MissingParam { index })?;
            regs[dst.0 as usize] = v;
        }
        Op::Ld {
            width,
            space,
            dst,
            addr,
            offset,
        } => {
            stats.loads += 1;
            let a = r(regs, addr).wrapping_add(offset);
            regs[dst.0 as usize] = load(space, width, a, local, shared, mem, pool)?;
        }
        Op::St {
            width,
            space,
            src,
            addr,
            offset,
        } => {
            stats.stores += 1;
            let a = r(regs, addr).wrapping_add(offset);
            store(space, width, a, r(regs, src), local, shared, mem)?;
        }
        Op::WarpRedMax { dst, src } => {
            // A warp of one: the reduction is the identity.
            regs[dst.0 as usize] = r(regs, src);
        }
        Op::AtomicAdd {
            dst,
            space,
            addr,
            offset,
            src,
        } => {
            stats.loads += 1;
            stats.stores += 1;
            let a = r(regs, addr).wrapping_add(offset);
            let old = load(space, Width::Word, a, local, shared, mem, pool)?;
            store(
                space,
                Width::Word,
                a,
                old.wrapping_add(r(regs, src)),
                local,
                shared,
                mem,
            )?;
            regs[dst.0 as usize] = old;
        }
    }
    Ok(())
}

pub(crate) fn load(
    space: MemSpace,
    width: Width,
    addr: u32,
    local: &[u8],
    shared: &[u8],
    mem: &DeviceMemory,
    pool: &ConstPool,
) -> Result<u32, ExecError> {
    let out = match space {
        MemSpace::Global => match width {
            Width::Byte => mem.read_byte(addr)?,
            Width::Word => mem.read_word(addr)?,
        },
        MemSpace::Const => match width {
            Width::Byte => pool.read_byte(addr)?,
            Width::Word => pool.read_word(addr)?,
        },
        MemSpace::Local => read_buf(local, MemSpace::Local, width, addr)?,
        MemSpace::Shared => read_buf(shared, MemSpace::Shared, width, addr)?,
    };
    Ok(out)
}

pub(crate) fn store(
    space: MemSpace,
    width: Width,
    addr: u32,
    value: u32,
    local: &mut [u8],
    shared: &mut [u8],
    mem: &mut DeviceMemory,
) -> Result<(), ExecError> {
    match space {
        MemSpace::Global => match width {
            Width::Byte => mem.write_byte(addr, value)?,
            Width::Word => mem.write_word(addr, value)?,
        },
        MemSpace::Const => {
            return Err(MemError::ReadOnly {
                space: MemSpace::Const,
            }
            .into())
        }
        MemSpace::Local => write_buf(local, MemSpace::Local, width, addr, value)?,
        MemSpace::Shared => write_buf(shared, MemSpace::Shared, width, addr, value)?,
    }
    Ok(())
}

pub(crate) fn read_buf(
    buf: &[u8],
    space: MemSpace,
    width: Width,
    addr: u32,
) -> Result<u32, MemError> {
    let a = addr as usize;
    let w = width.bytes() as usize;
    if a + w > buf.len() {
        return Err(MemError::OutOfBounds {
            space,
            addr,
            len: w as u32,
            size: buf.len(),
        });
    }
    Ok(match width {
        Width::Byte => buf[a] as u32,
        Width::Word => u32::from_le_bytes([buf[a], buf[a + 1], buf[a + 2], buf[a + 3]]),
    })
}

pub(crate) fn write_buf(
    buf: &mut [u8],
    space: MemSpace,
    width: Width,
    addr: u32,
    value: u32,
) -> Result<(), MemError> {
    let a = addr as usize;
    let w = width.bytes() as usize;
    if a + w > buf.len() {
        return Err(MemError::OutOfBounds {
            space,
            addr,
            len: w as u32,
            size: buf.len(),
        });
    }
    match width {
        Width::Byte => buf[a] = value as u8,
        Width::Word => buf[a..a + 4].copy_from_slice(&value.to_le_bytes()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, ProgramBuilder};

    fn run(p: &Program, mem: &mut DeviceMemory, params: Vec<u32>) -> ScalarStats {
        let pool = ConstPool::new();
        let mut cfg = LaunchConfig::new(1, params);
        cfg.max_instructions = 1_000_000;
        execute_scalar(&ScalarRun::new(p, 7), &cfg, mem, &pool, None).unwrap()
    }

    #[test]
    fn loop_executes_n_times() {
        let mut b = ProgramBuilder::new("sum");
        let n = b.param(0);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let a = b.imm(0);
        b.st_global_word(a, 0, acc);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(8);
        run(&p, &mut mem, vec![5]);
        assert_eq!(mem.read_word(0).unwrap(), 10); // 0+1+2+3+4
    }

    #[test]
    fn global_id_visible() {
        let mut b = ProgramBuilder::new("gid");
        let g = b.global_id();
        let a = b.imm(0);
        b.st_global_word(a, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        run(&p, &mut mem, vec![]);
        assert_eq!(mem.read_word(0).unwrap(), 7);
    }

    #[test]
    fn trace_records_blocks() {
        let mut b = ProgramBuilder::new("t");
        let n = b.imm(2);
        b.for_loop(n, |b, _| {
            b.imm(0);
        });
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(1, []);
        let mut trace = Vec::new();
        execute_scalar(
            &ScalarRun::new(&p, 0),
            &cfg,
            &mut mem,
            &pool,
            Some(&mut trace),
        )
        .unwrap();
        assert_eq!(trace[0], p.entry());
        // header visits = 3 (two taken + one exit), body visits = 2
        let headers = trace.iter().filter(|&&x| x == 1).count();
        assert_eq!(headers, 3);
    }

    #[test]
    fn budget_guard_trips() {
        let mut b = ProgramBuilder::new("inf");
        let loop_bb = b.new_block("loop");
        b.jump(loop_bb);
        b.switch_to(loop_bb);
        b.imm(0);
        b.jump(loop_bb);
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let pool = ConstPool::new();
        let mut cfg = LaunchConfig::new(1, []);
        cfg.max_instructions = 1000;
        let err = execute_scalar(&ScalarRun::new(&p, 0), &cfg, &mut mem, &pool, None).unwrap_err();
        assert!(matches!(err, ExecError::Budget { .. }));
    }

    #[test]
    fn missing_param_reported() {
        let mut b = ProgramBuilder::new("p");
        b.param(3);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(1, vec![1, 2]);
        let err = execute_scalar(&ScalarRun::new(&p, 0), &cfg, &mut mem, &pool, None).unwrap_err();
        assert_eq!(err, ExecError::MissingParam { index: 3 });
    }

    #[test]
    fn const_store_rejected() {
        let mut b = ProgramBuilder::new("w");
        let a = b.imm(0);
        let v = b.imm(1);
        b.st(Width::Byte, MemSpace::Const, a, 0, v);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(1, []);
        let err = execute_scalar(&ScalarRun::new(&p, 0), &cfg, &mut mem, &pool, None).unwrap_err();
        assert!(matches!(err, ExecError::Mem(MemError::ReadOnly { .. })));
    }

    #[test]
    fn atomic_add_returns_old() {
        let mut b = ProgramBuilder::new("a");
        let a = b.imm(0);
        let v = b.imm(5);
        let old = b.atomic_add(MemSpace::Global, a, 0, v);
        let out = b.imm(4);
        b.st_global_word(out, 0, old);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(8);
        mem.write_word(0, 10).unwrap();
        run(&p, &mut mem, vec![]);
        assert_eq!(mem.read_word(0).unwrap(), 15);
        assert_eq!(mem.read_word(4).unwrap(), 10);
    }

    #[test]
    fn write_decimal_and_read_back() {
        let mut b = ProgramBuilder::new("dec");
        let base = b.imm(0);
        let lane = b.lane_id();
        let ls = b.imm(32);
        let es = b.imm(1);
        let cur = b.cursor(base, lane, ls, es);
        let v = b.imm(9041);
        b.write_decimal(&cur, v, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32);
        run(&p, &mut mem, vec![]);
        assert_eq!(mem.slice(0, 4).unwrap(), b"9041");
    }

    #[test]
    fn write_decimal_zero() {
        let mut b = ProgramBuilder::new("dec0");
        let base = b.imm(0);
        let lane = b.lane_id();
        let ls = b.imm(32);
        let es = b.imm(1);
        let cur = b.cursor(base, lane, ls, es);
        let v = b.imm(0);
        b.write_decimal(&cur, v, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32);
        run(&p, &mut mem, vec![]);
        assert_eq!(mem.slice(0, 1).unwrap(), b"0");
    }

    #[test]
    fn read_decimal_parses() {
        let mut b = ProgramBuilder::new("atoi");
        let a = b.imm(0);
        let (v, len) = b.read_decimal_global(a);
        let out = b.imm(16);
        b.st_global_word(out, 0, v);
        b.st_global_word(out, 4, len);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32);
        mem.load(0, b"3804|rest").unwrap();
        run(&p, &mut mem, vec![]);
        assert_eq!(mem.read_word(16).unwrap(), 3804);
        assert_eq!(mem.read_word(20).unwrap(), 4);
    }

    #[test]
    fn const_str_copy() {
        let mut pool = ConstPool::new();
        let (off, len) = pool.intern_str("HTTP/1.1 200 OK");
        let mut b = ProgramBuilder::new("c");
        let base = b.imm(0);
        let lane = b.lane_id();
        let ls = b.imm(64);
        let es = b.imm(1);
        let cur = b.cursor(base, lane, ls, es);
        b.write_const_str(&cur, off, len);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64);
        let cfg = LaunchConfig::new(1, []);
        execute_scalar(&ScalarRun::new(&p, 0), &cfg, &mut mem, &pool, None).unwrap();
        assert_eq!(mem.slice(0, len).unwrap(), b"HTTP/1.1 200 OK");
    }
}
