//! Pre-decoded execution plans for the SIMT interpreter.
//!
//! The legacy interpreter walks the boxed [`Op`] enum straight out of
//! [`Program`]: every dynamic instruction re-reads `Reg` indices, re-computes
//! `lane * num_regs + r` addressing, and re-runs [`crate::ir::CfgInfo`]
//! analysis once per launch. For cohort servers the same ~30 banking kernels
//! are launched thousands of times, so all of that work is pure overhead.
//!
//! An [`ExecPlan`] flattens a validated program once:
//!
//! * every basic block's ops land in one dense [`DecodedOp`] array
//!   (`PlanBlock` holds a `[start, end)` window into it) — no per-block
//!   `Vec<Op>` pointer chasing in the inner loop;
//! * register operands are pre-multiplied by [`WARP_SIZE`] so the executor's
//!   structure-of-arrays register file (`regs[r * 32 + lane]`) is indexed
//!   with a single add, and a register's 32 lanes form one contiguous,
//!   vectorizable slice;
//! * branch reconvergence points (immediate post-dominators) are resolved at
//!   decode time into [`DecodedTerm::Br::reconv`], eliminating the per-launch
//!   CFG analysis entirely.
//!
//! Plans are immutable and shared: [`plan_for`] memoizes them in a
//! process-wide cache keyed by [`Program::fingerprint`] (the same key
//! `rhythm-verify` uses for verdicts), so steady-state launches skip decode.
//! Cache hit/miss totals are exported through [`plan_cache_stats`] as a
//! [`rhythm_obs::CacheSnapshot`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rhythm_obs::{CacheCounters, CacheSnapshot};

use crate::ir::{BinOp, BlockId, CfgInfo, MemSpace, Op, Program, Terminator, UnOp, Width};

use super::WARP_SIZE;

/// A register operand resolved for the executor's SoA register file: the
/// IR register index pre-multiplied by [`WARP_SIZE`], so lane `l` of the
/// register lives at `regs[slot + l]`.
pub type RegSlot = u32;

/// One pre-decoded straight-line instruction.
///
/// Mirrors [`Op`] one-to-one (the decode is a pure representation change;
/// semantics, faults, and cost accounting are defined by the executor), but
/// with register operands as [`RegSlot`]s and no heap indirection.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field meanings match `crate::ir::Op`
pub enum DecodedOp {
    Imm {
        dst: RegSlot,
        value: u32,
    },
    Mov {
        dst: RegSlot,
        src: RegSlot,
    },
    Bin {
        op: BinOp,
        dst: RegSlot,
        a: RegSlot,
        b: RegSlot,
    },
    Un {
        op: UnOp,
        dst: RegSlot,
        a: RegSlot,
    },
    LaneId {
        dst: RegSlot,
    },
    GlobalId {
        dst: RegSlot,
    },
    Param {
        dst: RegSlot,
        index: u16,
    },
    Ld {
        width: Width,
        space: MemSpace,
        dst: RegSlot,
        addr: RegSlot,
        offset: u32,
    },
    St {
        width: Width,
        space: MemSpace,
        src: RegSlot,
        addr: RegSlot,
        offset: u32,
    },
    WarpRedMax {
        dst: RegSlot,
        src: RegSlot,
    },
    AtomicAdd {
        dst: RegSlot,
        space: MemSpace,
        addr: RegSlot,
        offset: u32,
        src: RegSlot,
    },
}

/// A pre-decoded block terminator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DecodedTerm {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch with its reconvergence point (the branch block's
    /// immediate post-dominator, [`crate::ir::EXIT_BLOCK`] when control only
    /// rejoins at kernel exit) resolved at decode time.
    Br {
        /// Condition register slot (nonzero = taken).
        cond: RegSlot,
        /// Target when the condition is nonzero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
        /// Immediate post-dominator of the branch block.
        reconv: BlockId,
    },
    /// The lane finishes kernel execution.
    Halt,
}

/// One basic block of an [`ExecPlan`]: a window into the plan's flat op
/// array plus the decoded terminator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PlanBlock {
    /// First op index in the plan's flat op array.
    pub start: u32,
    /// One past the last op index in the plan's flat op array.
    pub end: u32,
    /// The block terminator.
    pub term: DecodedTerm,
}

/// A byte-copy loop recognized at decode time: the exact header + body
/// shape [`crate::ir::ProgramBuilder::write_const_str`] emits (a
/// `for_loop` whose body loads one constant-pool byte and stores it
/// through a `BufCursor`). The executor may commit the whole loop as one
/// wide copy — a `memcpy`-style block operation — instead of
/// interpreting ~12 warp instructions per byte, provided the runtime
/// preconditions hold (see `exec::simt::try_wide_copy`); otherwise it
/// falls back to byte-at-a-time interpretation with identical faults.
///
/// All register fields are [`RegSlot`]s. Detection requires every one of
/// the fifteen registers to be pairwise distinct, so the closed-form
/// register commit at loop exit cannot clobber a reused slot; the
/// builder always emits fresh registers, and any aliasing simply leaves
/// the loop un-annotated (correct, just slower).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WideCopy {
    /// Loop condition `c = i <u n` (the header's branch register).
    pub cond: RegSlot,
    /// Induction variable / constant-pool cursor offset `i`.
    pub idx: RegSlot,
    /// Trip-count bound `n` (loop runs while `i <u n`).
    pub len: RegSlot,
    /// Constant-pool base offset of the source string.
    pub src: RegSlot,
    /// Cursor element stride (distance between consecutive elements of
    /// one lane's buffer).
    pub elem_stride: RegSlot,
    /// Cursor buffer base address.
    pub base: RegSlot,
    /// Cursor per-lane term (`lane * lane_stride`).
    pub lane_term: RegSlot,
    /// Cursor element position, advanced by one per byte written.
    pub pos: RegSlot,
    /// The `for_loop` increment constant (must hold 1 at runtime).
    pub one: RegSlot,
    /// Body temp `a = src + i` (constant-pool byte address).
    pub src_addr: RegSlot,
    /// Body temp: the loaded byte.
    pub ch: RegSlot,
    /// Body temp `scaled = pos * elem_stride`.
    pub scaled: RegSlot,
    /// Body temp `t = base + lane_term`.
    pub lane_base: RegSlot,
    /// Body temp `addr = t + scaled` (the store address).
    pub addr: RegSlot,
    /// Body temp: `cursor_write_byte`'s own `imm(1)`.
    pub one2: RegSlot,
    /// The loop body block.
    pub body: BlockId,
    /// The loop exit block (the header branch's else target).
    pub exit: BlockId,
}

/// A fully pre-decoded, immutable execution plan for one [`Program`].
///
/// Build once with [`ExecPlan::build`] (or fetch a shared cached instance
/// with [`plan_for`]) and execute any number of launches against it.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    name: String,
    fingerprint: u64,
    entry: BlockId,
    num_regs: u16,
    ops: Vec<DecodedOp>,
    blocks: Vec<PlanBlock>,
    /// Parallel to `blocks`: the wide-copy annotation for blocks that are
    /// recognized byte-copy loop headers.
    wide_copies: Vec<Option<WideCopy>>,
    /// Static packing profile: the widest sub-warp packing the program's
    /// op mix admits (1 when it contains atomics, else 4).
    pack_max: u32,
}

#[inline]
fn slot(r: crate::ir::Reg) -> RegSlot {
    r.0 as u32 * WARP_SIZE
}

impl ExecPlan {
    /// Decode a validated program into a flat execution plan.
    ///
    /// Runs the immediate-post-dominator analysis once and bakes each
    /// branch's reconvergence block into its [`DecodedTerm`].
    pub fn build(program: &Program) -> ExecPlan {
        let cfg = CfgInfo::analyze(program);
        let total_ops: usize = program.blocks().iter().map(|b| b.ops.len()).sum();
        let mut ops = Vec::with_capacity(total_ops);
        let mut blocks = Vec::with_capacity(program.blocks().len());
        for (bi, block) in program.blocks().iter().enumerate() {
            let start = ops.len() as u32;
            for op in &block.ops {
                ops.push(decode_op(op));
            }
            let term = match block.term {
                Terminator::Jmp(t) => DecodedTerm::Jmp(t),
                Terminator::Halt => DecodedTerm::Halt,
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => DecodedTerm::Br {
                    cond: slot(cond),
                    then_bb,
                    else_bb,
                    reconv: cfg.ipdom(bi as BlockId),
                },
            };
            blocks.push(PlanBlock {
                start,
                end: ops.len() as u32,
                term,
            });
        }
        let wide_copies = (0..blocks.len())
            .map(|h| detect_wide_copy(&blocks, &ops, h as BlockId))
            .collect();
        let pack_max = if ops.iter().any(|o| matches!(o, DecodedOp::AtomicAdd { .. })) {
            // Atomic return values observe lane/warp execution order, so a
            // packed gang could legally see different old values than the
            // unpacked schedule; keep such kernels unpacked.
            1
        } else {
            4
        };
        ExecPlan {
            name: program.name().to_string(),
            fingerprint: program.fingerprint(),
            entry: program.entry(),
            num_regs: program.num_regs(),
            ops,
            blocks,
            wide_copies,
            pack_max,
        }
    }

    /// Kernel name, for traces and reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fingerprint of the source program (the plan-cache key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Size of the per-lane register file.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// All decoded blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[PlanBlock] {
        &self.blocks
    }

    /// One decoded block by id.
    #[inline]
    pub fn block(&self, id: BlockId) -> &PlanBlock {
        &self.blocks[id as usize]
    }

    /// The decoded ops of one block.
    #[inline]
    pub fn block_ops(&self, b: &PlanBlock) -> &[DecodedOp] {
        &self.ops[b.start as usize..b.end as usize]
    }

    /// Total static op count (terminators excluded).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The wide-copy annotation for block `id`, when it is a recognized
    /// byte-copy loop header.
    #[inline]
    pub fn wide_copy(&self, id: BlockId) -> Option<&WideCopy> {
        self.wide_copies[id as usize].as_ref()
    }

    /// Number of blocks annotated as wide-copy loop headers.
    pub fn num_wide_copies(&self) -> usize {
        self.wide_copies.iter().flatten().count()
    }

    /// Static packing profile: the widest sub-warp packing width this
    /// program admits (a power of two ≤ 4). Programs containing atomics
    /// report 1; everything else reports 4. Dynamic legality (race
    /// freedom across packed requests) is `rhythm-verify`'s job — see
    /// `pack_width` there.
    pub fn pack_max(&self) -> u32 {
        self.pack_max
    }
}

/// Match block `h` (plus its loop body) against the exact byte-copy
/// template `ProgramBuilder::write_const_str` expands to:
///
/// ```text
/// header h: c = LtU i, n            br c, body, exit (reconv = exit)
/// body:     a      = Add src, i
///           ch     = Ld Const Byte [a+0]
///           scaled = Mul pos, elem_stride
///           t      = Add base, lane_term
///           addr   = Add t, scaled
///                    St Global Byte [addr+0], ch
///           one2   = Imm 1
///           pos    = Add pos, one2
///           i      = Add i, one     jmp h
/// ```
///
/// Only the constant-pool load variant is matched (`write_global_str`
/// and `write_decimal` load from Global/Local and stay interpreted).
/// Any structural mismatch — including register aliasing between the
/// fifteen slots — returns `None`, leaving the loop on the byte-at-a-time
/// path.
fn detect_wide_copy(blocks: &[PlanBlock], ops: &[DecodedOp], h: BlockId) -> Option<WideCopy> {
    let hb = &blocks[h as usize];
    let DecodedTerm::Br {
        cond,
        then_bb: body,
        else_bb: exit,
        ..
    } = hb.term
    else {
        return None;
    };
    // A self-looping or degenerate branch (body == exit) never matches:
    // the interpreted loop would not terminate through the header.
    if body == exit || (body as usize) >= blocks.len() {
        return None;
    }
    let &[DecodedOp::Bin {
        op: BinOp::LtU,
        dst: c,
        a: i,
        b: n,
    }] = &ops[hb.start as usize..hb.end as usize]
    else {
        return None;
    };
    if c != cond {
        return None;
    }
    let bb = &blocks[body as usize];
    if bb.term != DecodedTerm::Jmp(h) {
        return None;
    }
    let &[DecodedOp::Bin {
        op: BinOp::Add,
        dst: src_addr,
        a: src,
        b: i2,
    }, DecodedOp::Ld {
        width: Width::Byte,
        space: MemSpace::Const,
        dst: ch,
        addr: src_addr2,
        offset: 0,
    }, DecodedOp::Bin {
        op: BinOp::Mul,
        dst: scaled,
        a: pos,
        b: elem_stride,
    }, DecodedOp::Bin {
        op: BinOp::Add,
        dst: lane_base,
        a: base,
        b: lane_term,
    }, DecodedOp::Bin {
        op: BinOp::Add,
        dst: addr,
        a: lane_base2,
        b: scaled2,
    }, DecodedOp::St {
        width: Width::Byte,
        space: MemSpace::Global,
        src: ch2,
        addr: addr2,
        offset: 0,
    }, DecodedOp::Imm {
        dst: one2,
        value: 1,
    }, DecodedOp::Bin {
        op: BinOp::Add,
        dst: pos2,
        a: pos3,
        b: one2b,
    }, DecodedOp::Bin {
        op: BinOp::Add,
        dst: i3,
        a: i4,
        b: one,
    }] = &ops[bb.start as usize..bb.end as usize]
    else {
        return None;
    };
    // Dataflow consistency: each temp feeds exactly the op the template
    // expects, and the two `bin_into` updates write their own sources.
    if i2 != i
        || src_addr2 != src_addr
        || lane_base2 != lane_base
        || scaled2 != scaled
        || ch2 != ch
        || addr2 != addr
        || pos2 != pos
        || pos3 != pos
        || one2b != one2
        || i3 != i
        || i4 != i
    {
        return None;
    }
    let regs = [
        c,
        i,
        n,
        src,
        elem_stride,
        base,
        lane_term,
        pos,
        one,
        src_addr,
        ch,
        scaled,
        lane_base,
        addr,
        one2,
    ];
    for (k, &r) in regs.iter().enumerate() {
        if regs[k + 1..].contains(&r) {
            return None;
        }
    }
    Some(WideCopy {
        cond: c,
        idx: i,
        len: n,
        src,
        elem_stride,
        base,
        lane_term,
        pos,
        one,
        src_addr,
        ch,
        scaled,
        lane_base,
        addr,
        one2,
        body,
        exit,
    })
}

fn decode_op(op: &Op) -> DecodedOp {
    match *op {
        Op::Imm { dst, value } => DecodedOp::Imm {
            dst: slot(dst),
            value,
        },
        Op::Mov { dst, src } => DecodedOp::Mov {
            dst: slot(dst),
            src: slot(src),
        },
        Op::Bin { op, dst, a, b } => DecodedOp::Bin {
            op,
            dst: slot(dst),
            a: slot(a),
            b: slot(b),
        },
        Op::Un { op, dst, a } => DecodedOp::Un {
            op,
            dst: slot(dst),
            a: slot(a),
        },
        Op::LaneId { dst } => DecodedOp::LaneId { dst: slot(dst) },
        Op::GlobalId { dst } => DecodedOp::GlobalId { dst: slot(dst) },
        Op::Param { dst, index } => DecodedOp::Param {
            dst: slot(dst),
            index,
        },
        Op::Ld {
            width,
            space,
            dst,
            addr,
            offset,
        } => DecodedOp::Ld {
            width,
            space,
            dst: slot(dst),
            addr: slot(addr),
            offset,
        },
        Op::St {
            width,
            space,
            src,
            addr,
            offset,
        } => DecodedOp::St {
            width,
            space,
            src: slot(src),
            addr: slot(addr),
            offset,
        },
        Op::WarpRedMax { dst, src } => DecodedOp::WarpRedMax {
            dst: slot(dst),
            src: slot(src),
        },
        Op::AtomicAdd {
            dst,
            space,
            addr,
            offset,
            src,
        } => DecodedOp::AtomicAdd {
            dst: slot(dst),
            space,
            addr: slot(addr),
            offset,
            src: slot(src),
        },
    }
}

/// Process-wide decode cache: `Program::fingerprint() -> Arc<ExecPlan>`.
static PLAN_CACHE: OnceLock<Mutex<HashMap<u64, Arc<ExecPlan>>>> = OnceLock::new();
/// Cumulative hit/miss totals for [`plan_for`].
static PLAN_CACHE_COUNTERS: CacheCounters = CacheCounters::new();

/// Fetch the shared pre-decoded plan for `program`, building and caching it
/// on first use.
///
/// Keyed by [`Program::fingerprint`]; two structurally equal programs share
/// one plan. The cache lives for the process (kernels are a small, fixed
/// set in the cohort-server workloads this models), and every lookup is
/// counted in [`plan_cache_stats`].
pub fn plan_for(program: &Program) -> Arc<ExecPlan> {
    let key = program.fingerprint();
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("plan cache poisoned");
    if let Some(plan) = map.get(&key) {
        PLAN_CACHE_COUNTERS.record_hit();
        return Arc::clone(plan);
    }
    // Decode outside the fast path; holding the lock while decoding keeps
    // duplicate concurrent decodes of the same kernel from racing.
    let plan = Arc::new(ExecPlan::build(program));
    map.insert(key, Arc::clone(&plan));
    PLAN_CACHE_COUNTERS.record_miss();
    plan
}

/// Cumulative decode-cache hit/miss totals for this process.
pub fn plan_cache_stats() -> CacheSnapshot {
    PLAN_CACHE_COUNTERS.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ProgramBuilder, EXIT_BLOCK};

    fn diamond(name: &str) -> Program {
        let mut b = ProgramBuilder::new(name);
        let g = b.global_id();
        let one = b.imm(1);
        let odd = b.bin(BinOp::And, g, one);
        let out = b.reg();
        b.if_then_else(odd, |b| b.imm_into(out, 7), |b| b.imm_into(out, 9));
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, out);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn decode_preserves_structure() {
        let p = diamond("plan_structure");
        let plan = ExecPlan::build(&p);
        assert_eq!(plan.name(), p.name());
        assert_eq!(plan.fingerprint(), p.fingerprint());
        assert_eq!(plan.entry(), p.entry());
        assert_eq!(plan.num_regs(), p.num_regs());
        assert_eq!(plan.blocks().len(), p.blocks().len());
        let static_ops: usize = p.blocks().iter().map(|b| b.ops.len()).sum();
        assert_eq!(plan.num_ops(), static_ops);
        // Per-block windows tile the flat array exactly.
        let mut expect_start = 0u32;
        for (pb, b) in plan.blocks().iter().zip(p.blocks()) {
            assert_eq!(pb.start, expect_start);
            assert_eq!((pb.end - pb.start) as usize, b.ops.len());
            assert_eq!(plan.block_ops(pb).len(), b.ops.len());
            expect_start = pb.end;
        }
    }

    #[test]
    fn register_slots_are_premultiplied() {
        let mut b = ProgramBuilder::new("plan_slots");
        let x = b.imm(5);
        let y = b.bin(BinOp::Add, x, x);
        let _ = y;
        b.halt();
        let p = b.build().unwrap();
        let plan = ExecPlan::build(&p);
        let entry = plan.block(p.entry());
        match plan.block_ops(entry)[1] {
            DecodedOp::Bin { op, dst, a, b } => {
                assert_eq!(op, BinOp::Add);
                assert_eq!(dst % WARP_SIZE, 0);
                assert_eq!(a % WARP_SIZE, 0);
                assert_eq!(a, b, "both operands read the same register");
            }
            other => panic!("expected decoded Bin, got {other:?}"),
        }
    }

    #[test]
    fn branch_reconvergence_is_baked_in() {
        let p = diamond("plan_reconv");
        let cfg = CfgInfo::analyze(&p);
        let plan = ExecPlan::build(&p);
        let mut saw_br = false;
        for (bi, pb) in plan.blocks().iter().enumerate() {
            if let DecodedTerm::Br { reconv, .. } = pb.term {
                saw_br = true;
                assert_eq!(reconv, cfg.ipdom(bi as BlockId));
                assert_ne!(reconv, EXIT_BLOCK, "diamond rejoins before exit");
            }
        }
        assert!(saw_br, "diamond kernel must contain a branch");
    }

    #[test]
    fn plan_cache_hits_on_refetch() {
        // A unique kernel name gives a fingerprint this process has never
        // cached, so the first fetch is a miss and the second is a hit.
        let p = diamond("plan_cache_hit_test_kernel");
        let before = plan_cache_stats();
        let a = plan_for(&p);
        let b = plan_for(&p);
        assert!(Arc::ptr_eq(&a, &b), "refetch must share the cached plan");
        // Counters are process-global and other tests in this binary run
        // concurrently, so assert lower bounds here; the exact-delta checks
        // live in the `exec_plan` integration test (own process).
        let delta = plan_cache_stats().since(&before);
        assert!(delta.misses >= 1, "first fetch of a fresh kernel misses");
        assert!(delta.hits >= 1, "refetch hits");
    }

    /// A kernel whose whole body is one `write_const_str` copy loop:
    /// each lane writes `len` bytes at `base + lane * len`.
    fn const_copy(name: &str, len: u32) -> Program {
        let mut b = ProgramBuilder::new(name);
        let lane = b.lane_id();
        let base = b.imm(0);
        let lane_stride = b.imm(len);
        let elem_stride = b.imm(1);
        let cur = b.cursor(base, lane, lane_stride, elem_stride);
        b.write_const_str(&cur, 0, len);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn wide_copy_detected_on_const_str_loop() {
        let p = const_copy("plan_wide_copy_detect", 24);
        let plan = ExecPlan::build(&p);
        assert_eq!(plan.num_wide_copies(), 1, "exactly one copy-loop header");
        let (h, wc) = plan
            .blocks()
            .iter()
            .enumerate()
            .find_map(|(bi, _)| plan.wide_copy(bi as BlockId).map(|w| (bi as BlockId, *w)))
            .expect("annotated header");
        // The annotation points back at the real loop structure.
        assert_eq!(plan.block(wc.body).term, DecodedTerm::Jmp(h));
        match plan.block(h).term {
            DecodedTerm::Br {
                cond,
                then_bb,
                else_bb,
                ..
            } => {
                assert_eq!(cond, wc.cond);
                assert_eq!(then_bb, wc.body);
                assert_eq!(else_bb, wc.exit);
            }
            other => panic!("header must branch, got {other:?}"),
        }
        // All fifteen captured registers are pairwise distinct.
        let regs = [
            wc.cond,
            wc.idx,
            wc.len,
            wc.src,
            wc.elem_stride,
            wc.base,
            wc.lane_term,
            wc.pos,
            wc.one,
            wc.src_addr,
            wc.ch,
            wc.scaled,
            wc.lane_base,
            wc.addr,
            wc.one2,
        ];
        for (k, &r) in regs.iter().enumerate() {
            assert!(!regs[k + 1..].contains(&r), "register aliasing in capture");
        }
    }

    #[test]
    fn wide_copy_rejects_global_source_loop() {
        // `write_global_str` has the same shape but loads from Global —
        // its bytes are mutable during the loop, so it must stay on the
        // interpreted path.
        let mut b = ProgramBuilder::new("plan_wide_copy_global_miss");
        let lane = b.lane_id();
        let base = b.imm(512);
        let lane_stride = b.imm(16);
        let elem_stride = b.imm(1);
        let cur = b.cursor(base, lane, lane_stride, elem_stride);
        let src = b.imm(0);
        let n = b.imm(16);
        b.write_global_str(&cur, src, n);
        b.halt();
        let p = b.build().unwrap();
        let plan = ExecPlan::build(&p);
        assert_eq!(plan.num_wide_copies(), 0);
    }

    #[test]
    fn pack_max_profiles_atomics() {
        let copy = ExecPlan::build(&const_copy("plan_pack_max_copy", 8));
        assert_eq!(copy.pack_max(), 4);
        let mut b = ProgramBuilder::new("plan_pack_max_atomic");
        let addr = b.imm(0);
        let one = b.imm(1);
        let _old = b.atomic_add(MemSpace::Global, addr, 0, one);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(ExecPlan::build(&p).pack_max(), 1);
    }
}
