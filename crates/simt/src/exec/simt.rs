//! SIMT executor: warps of 32 lanes in lockstep with stack-based
//! reconvergence and a memory-coalescing transaction model.
//!
//! This is the substitute for real CUDA hardware: it executes the same
//! kernel IR the scalar executor runs, but 32 lanes at a time, charging
//! * one issue cycle per warp instruction (the SIMT amortization win),
//! * one extra cycle per global-memory transaction after coalescing
//!   lane addresses into aligned segments (the data-layout effect), and
//! * serialization cycles for divergent constant reads and same-address
//!   atomics.
//!
//! Divergent branches push entries onto a per-warp reconvergence stack and
//! rejoin at the branch block's immediate post-dominator, the scheme used
//! by real hardware and by GPGPU-Sim.
//!
//! Warps between barriers are independent, so [`execute_simt_workers`] can
//! execute them concurrently on a host worker pool while keeping results
//! bit-for-bit identical to the serial [`execute_simt`] path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rhythm_obs::{ArgValue, Clock, NoopRecorder, Recorder};

use crate::ir::{BlockId, CfgInfo, MemSpace, Op, Program, Reg, Terminator, Width, EXIT_BLOCK};
use crate::mem::{ConstPool, DeviceMemory, MemError, SharedMem};
use crate::stats::{DivergenceStats, KernelStats};

use super::scalar::{read_buf, write_buf};
use super::{ExecError, LaunchConfig, WARP_SIZE};

/// DRAM sector granularity for traffic accounting (GDDR5 32-byte sectors).
pub const SECTOR_BYTES: u32 = 32;

/// One entry of the per-warp reconvergence stack.
#[derive(Copy, Clone, Debug)]
struct StackEntry {
    /// Next block to execute for this entry's lanes.
    block: BlockId,
    /// Active lanes (bit i = lane i of the warp).
    mask: u32,
    /// Block at which this entry pops and its lanes rejoin the entry
    /// below; [`EXIT_BLOCK`] for the bottom entry and branches whose paths
    /// only rejoin at kernel exit.
    reconv: BlockId,
}

/// Execute a kernel launch on the SIMT engine, one warp at a time.
///
/// Lanes within a warp run in lockstep; warps run sequentially on the
/// calling thread (their cycle counts are combined by the device timing
/// model in [`crate::gpu`]). Use [`execute_simt_workers`] to spread the
/// warps over a host thread pool.
///
/// # Errors
///
/// Fails on memory faults, missing params, a tripped instruction budget,
/// or a divergence-stack invariant violation (which would indicate a bug).
///
/// # Example
///
/// ```
/// use rhythm_simt::ir::{ProgramBuilder, BinOp};
/// use rhythm_simt::exec::{simt::execute_simt, LaunchConfig};
/// use rhythm_simt::mem::{ConstPool, DeviceMemory};
///
/// // Every lane stores its global id to global[id*4].
/// let mut b = ProgramBuilder::new("ids");
/// let g = b.global_id();
/// let four = b.imm(4);
/// let addr = b.bin(BinOp::Mul, g, four);
/// b.st_global_word(addr, 0, g);
/// b.halt();
/// let p = b.build()?;
///
/// let mut mem = DeviceMemory::new(64 * 4);
/// let pool = ConstPool::new();
/// let stats = execute_simt(&p, &LaunchConfig::new(64, vec![]), &mut mem, &pool)?;
/// assert_eq!(stats.warps, 2);
/// assert_eq!(mem.read_word(63 * 4)?, 63);
/// assert!(stats.simd_efficiency(32) > 0.99, "no divergence here");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_simt(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
) -> Result<KernelStats, ExecError> {
    execute_simt_workers(program, cfg, mem, pool, 1)
}

/// Execute a kernel launch with its warps spread over `workers` host
/// threads (`0` = one per available core, `1` = serial, identical to
/// [`execute_simt`]).
///
/// Warps between barriers are independent, so they are handed to a worker
/// pool through a dynamic (work-stealing) counter. Results are bit-for-bit
/// identical to serial execution for well-formed cohort kernels:
///
/// * warps write disjoint lanes of global memory, which the lock-free
///   [`SharedMem`] view supports without ordering constraints;
/// * every [`KernelStats`] counter is a sum or max over per-warp values,
///   so the deterministic per-warp merge order makes the totals exact;
/// * cross-warp `AtomicAdd` to one address never loses updates (striped
///   RMW locks), though the *old values* observed by racing warps — and
///   racy non-atomic cross-warp accesses — depend on scheduling.
///
/// # Errors
///
/// Same failures as [`execute_simt`]. When several warps fault, the error
/// of the lowest-numbered faulting warp is reported, independent of worker
/// count. Unlike serial execution, warps numbered after a faulting warp
/// may already have executed and written memory by the time the error is
/// returned.
pub fn execute_simt_workers(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    workers: usize,
) -> Result<KernelStats, ExecError> {
    execute_simt_workers_traced(program, cfg, mem, pool, workers, &NoopRecorder)
}

/// Emit one per-warp wall-time span on the executing worker's track. The
/// recorder only *observes* execution (the stats are copied out after the
/// warp finishes), so traced and untraced runs stay bit-identical.
fn trace_warp<R: Recorder + ?Sized>(
    rec: &R,
    worker: usize,
    kernel: &str,
    warp: u32,
    start_us: f64,
    result: &Result<WarpStats, ExecError>,
) {
    let dur_us = rec.wall_now_us() - start_us;
    let track = format!("simt:w{worker}");
    match result {
        Ok(s) => {
            rec.span(
                Clock::Wall,
                &track,
                &format!("{kernel} warp {warp}"),
                start_us,
                dur_us,
                &[
                    ("warp", ArgValue::U64(warp as u64)),
                    ("warp_instructions", ArgValue::U64(s.warp_instructions)),
                    ("lane_instructions", ArgValue::U64(s.lane_instructions)),
                    (
                        "divergent_branches",
                        ArgValue::U64(s.divergence.divergent_branches),
                    ),
                    ("warp_cycles", ArgValue::U64(s.warp_cycles)),
                ],
            );
            rec.sample("warp_cycles", s.warp_cycles as f64);
        }
        Err(_) => {
            rec.span(
                Clock::Wall,
                &track,
                &format!("{kernel} warp {warp} (fault)"),
                start_us,
                dur_us,
                &[("warp", ArgValue::U64(warp as u64))],
            );
        }
    }
}

/// [`execute_simt_workers`] with per-warp tracing: each warp's execution
/// becomes a wall-time span on its worker's track (`simt:w0`, `simt:w1`,
/// ...) named `"<kernel> warp <w>"`, carrying instruction, divergence,
/// and cycle counters as span args, plus a `warp_cycles` streaming
/// histogram sample.
///
/// Tracing never touches execution state, so results are bit-identical to
/// the untraced path at every worker count — only which worker track a
/// warp's span lands on varies from run to run.
///
/// # Errors
///
/// Same failures as [`execute_simt_workers`].
pub fn execute_simt_workers_traced<R: Recorder + ?Sized>(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    workers: usize,
    rec: &R,
) -> Result<KernelStats, ExecError> {
    let cfginfo = CfgInfo::analyze(program);
    let nwarps = cfg.warps() as usize;
    let workers = resolve_workers(workers).min(nwarps.max(1));
    let gmem = mem.shared();

    let mut per_warp: Vec<(u32, Result<WarpStats, ExecError>)> = if workers <= 1 {
        let mut warp = WarpState::new(program, cfg);
        let mut out = Vec::with_capacity(nwarps);
        for w in 0..cfg.warps() {
            let base = w * WARP_SIZE;
            let count = (cfg.lanes - base).min(WARP_SIZE);
            warp.reset(base, count);
            let start_us = if rec.enabled() {
                rec.wall_now_us()
            } else {
                0.0
            };
            let r = warp.run(program, &cfginfo, cfg, &gmem, pool);
            if rec.enabled() {
                trace_warp(rec, 0, program.name(), w, start_us, &r);
            }
            let stop = r.is_err();
            out.push((w, r));
            if stop {
                break;
            }
        }
        out
    } else {
        // Dynamic self-scheduling: each worker claims the next unstarted
        // warp. Claims are monotonic, so every warp below the highest
        // claimed index runs to completion even if a later warp faults —
        // which is what makes lowest-faulting-warp error selection
        // deterministic.
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let outs: Vec<Vec<(u32, Result<WarpStats, ExecError>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let gmem = &gmem;
                    let next = &next;
                    let abort = &abort;
                    let cfginfo = &cfginfo;
                    s.spawn(move || {
                        let mut warp = WarpState::new(program, cfg);
                        let mut out = Vec::new();
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let w = next.fetch_add(1, Ordering::Relaxed);
                            if w >= nwarps {
                                break;
                            }
                            let w = w as u32;
                            let base = w * WARP_SIZE;
                            let count = (cfg.lanes - base).min(WARP_SIZE);
                            warp.reset(base, count);
                            let start_us = if rec.enabled() {
                                rec.wall_now_us()
                            } else {
                                0.0
                            };
                            let r = warp.run(program, cfginfo, cfg, gmem, pool);
                            if rec.enabled() {
                                trace_warp(rec, worker, program.name(), w, start_us, &r);
                            }
                            if r.is_err() {
                                abort.store(true, Ordering::Relaxed);
                            }
                            out.push((w, r));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("warp worker panicked"))
                .collect()
        });
        let mut merged: Vec<_> = outs.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(w, _)| w);
        merged
    };

    let mut total = KernelStats {
        lanes: cfg.lanes,
        warps: cfg.warps(),
        ..Default::default()
    };
    for (_, r) in per_warp.drain(..) {
        let stats = r?;
        total.warp_instructions += stats.warp_instructions;
        total.lane_instructions += stats.lane_instructions;
        total.mem_accesses += stats.mem_accesses;
        total.mem_transactions += stats.mem_transactions;
        total.dram_bytes += stats.dram_bytes;
        total.const_replays += stats.const_replays;
        total.atomic_serializations += stats.atomic_serializations;
        total.warp_cycles += stats.warp_cycles;
        total.max_warp_cycles = total.max_warp_cycles.max(stats.warp_cycles);
        total.divergence.merge(&stats.divergence);
    }
    Ok(total)
}

/// Resolve a worker-count knob: `0` means one worker per available core.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Reusable per-warp execution state (register file, local/shared memory).
struct WarpState {
    /// Flat register file: `regs[lane * num_regs + r]`.
    regs: Vec<u32>,
    /// Flat per-lane local memory: `local[lane * local_bytes ..]`.
    local: Vec<u8>,
    /// Per-warp shared memory.
    shared: Vec<u8>,
    num_regs: usize,
    local_bytes: usize,
    base: u32,
    count: u32,
    /// Scratch for gathering lane addresses on memory ops.
    addrs: Vec<(u32, u32)>,
    /// Scratch for segment ids.
    segs: Vec<u32>,
}

#[derive(Default)]
struct WarpStats {
    warp_instructions: u64,
    lane_instructions: u64,
    mem_accesses: u64,
    mem_transactions: u64,
    dram_bytes: u64,
    const_replays: u64,
    atomic_serializations: u64,
    warp_cycles: u64,
    divergence: DivergenceStats,
}

impl WarpState {
    fn new(program: &Program, cfg: &LaunchConfig) -> Self {
        let num_regs = program.num_regs() as usize;
        WarpState {
            regs: vec![0; num_regs * WARP_SIZE as usize],
            local: vec![0; cfg.local_bytes as usize * WARP_SIZE as usize],
            shared: vec![0; cfg.shared_bytes as usize],
            num_regs,
            local_bytes: cfg.local_bytes as usize,
            base: 0,
            count: 0,
            addrs: Vec::with_capacity(WARP_SIZE as usize),
            segs: Vec::with_capacity(WARP_SIZE as usize * 2),
        }
    }

    fn reset(&mut self, base: u32, count: u32) {
        self.base = base;
        self.count = count;
        self.regs.fill(0);
        self.local.fill(0);
        self.shared.fill(0);
    }

    #[inline]
    fn reg(&self, lane: u32, r: Reg) -> u32 {
        self.regs[lane as usize * self.num_regs + r.0 as usize]
    }

    #[inline]
    fn set_reg(&mut self, lane: u32, r: Reg, v: u32) {
        self.regs[lane as usize * self.num_regs + r.0 as usize] = v;
    }

    fn full_mask(&self) -> u32 {
        if self.count >= 32 {
            u32::MAX
        } else {
            (1u32 << self.count) - 1
        }
    }

    fn run(
        &mut self,
        program: &Program,
        cfg: &CfgInfo,
        launch: &LaunchConfig,
        gmem: &SharedMem<'_>,
        pool: &ConstPool,
    ) -> Result<WarpStats, ExecError> {
        let mut stats = WarpStats::default();
        let mut stack: Vec<StackEntry> = vec![StackEntry {
            block: program.entry(),
            mask: self.full_mask(),
            reconv: EXIT_BLOCK,
        }];
        let mut halted: u32 = 0;

        while let Some(top) = stack.last_mut() {
            top.mask &= !halted;
            if top.mask == 0 {
                stack.pop();
                continue;
            }
            if top.block == top.reconv {
                stats.divergence.reconvergences += 1;
                stack.pop();
                continue;
            }
            if top.block == EXIT_BLOCK {
                return Err(ExecError::Reconvergence(
                    "union entry surfaced at exit with live lanes",
                ));
            }
            let mask = top.mask;
            let cur = top.block;
            let block = program.block(cur);

            for op in &block.ops {
                stats.warp_instructions += 1;
                stats.lane_instructions += mask.count_ones() as u64;
                stats.warp_cycles += 1;
                if stats.warp_instructions > launch.max_instructions {
                    return Err(ExecError::Budget {
                        executed: stats.warp_instructions,
                    });
                }
                self.exec_op(op, mask, launch, gmem, pool, &mut stats)?;
            }

            // Terminator: also one issue.
            stats.warp_instructions += 1;
            stats.lane_instructions += mask.count_ones() as u64;
            stats.warp_cycles += 1;

            match block.term {
                Terminator::Jmp(t) => {
                    let top = stack.last_mut().expect("stack nonempty");
                    top.block = t;
                }
                Terminator::Halt => {
                    halted |= mask;
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    stats.divergence.branches += 1;
                    let mut mask_t = 0u32;
                    for lane in iter_lanes(mask) {
                        if self.reg(lane, cond) != 0 {
                            mask_t |= 1 << lane;
                        }
                    }
                    let mask_f = mask & !mask_t;
                    let top = stack.last_mut().expect("stack nonempty");
                    if mask_f == 0 {
                        top.block = then_bb;
                    } else if mask_t == 0 {
                        top.block = else_bb;
                    } else {
                        stats.divergence.divergent_branches += 1;
                        let r = cfg.ipdom(cur);
                        top.block = r;
                        if else_bb != r {
                            stack.push(StackEntry {
                                block: else_bb,
                                mask: mask_f,
                                reconv: r,
                            });
                        }
                        if then_bb != r {
                            stack.push(StackEntry {
                                block: then_bb,
                                mask: mask_t,
                                reconv: r,
                            });
                        }
                        stats.divergence.max_stack_depth =
                            stats.divergence.max_stack_depth.max(stack.len() as u32);
                    }
                }
            }
        }
        Ok(stats)
    }

    fn exec_op(
        &mut self,
        op: &Op,
        mask: u32,
        launch: &LaunchConfig,
        gmem: &SharedMem<'_>,
        pool: &ConstPool,
        stats: &mut WarpStats,
    ) -> Result<(), ExecError> {
        match *op {
            Op::Imm { dst, value } => {
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, value);
                }
            }
            Op::Mov { dst, src } => {
                for lane in iter_lanes(mask) {
                    let v = self.reg(lane, src);
                    self.set_reg(lane, dst, v);
                }
            }
            Op::Bin { op, dst, a, b } => {
                for lane in iter_lanes(mask) {
                    let v = op.eval(self.reg(lane, a), self.reg(lane, b));
                    self.set_reg(lane, dst, v);
                }
            }
            Op::Un { op, dst, a } => {
                for lane in iter_lanes(mask) {
                    let v = op.eval(self.reg(lane, a));
                    self.set_reg(lane, dst, v);
                }
            }
            Op::LaneId { dst } => {
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, lane);
                }
            }
            Op::GlobalId { dst } => {
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, self.base + lane);
                }
            }
            Op::Param { dst, index } => {
                let v = launch
                    .params
                    .get(index as usize)
                    .copied()
                    .ok_or(ExecError::MissingParam { index })?;
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, v);
                }
            }
            Op::Ld {
                width,
                space,
                dst,
                addr,
                offset,
            } => {
                self.addrs.clear();
                for lane in iter_lanes(mask) {
                    let a = self.reg(lane, addr).wrapping_add(offset);
                    self.addrs.push((lane, a));
                }
                let addrs = std::mem::take(&mut self.addrs);
                for &(lane, a) in &addrs {
                    let lo = lane as usize * self.local_bytes;
                    let v = warp_load(
                        space,
                        width,
                        a,
                        &self.local[lo..lo + self.local_bytes],
                        &self.shared,
                        gmem,
                        pool,
                    )?;
                    self.set_reg(lane, dst, v);
                }
                self.charge_access(space, width, &addrs, launch, stats);
                self.addrs = addrs;
            }
            Op::St {
                width,
                space,
                src,
                addr,
                offset,
            } => {
                self.addrs.clear();
                for lane in iter_lanes(mask) {
                    let a = self.reg(lane, addr).wrapping_add(offset);
                    self.addrs.push((lane, a));
                }
                let addrs = std::mem::take(&mut self.addrs);
                for &(lane, a) in &addrs {
                    let v = self.reg(lane, src);
                    let lo = lane as usize * self.local_bytes;
                    warp_store(
                        space,
                        width,
                        a,
                        v,
                        &mut self.local[lo..lo + self.local_bytes],
                        &mut self.shared,
                        gmem,
                    )?;
                }
                self.charge_access(space, width, &addrs, launch, stats);
                self.addrs = addrs;
            }
            Op::WarpRedMax { dst, src } => {
                // Butterfly reduction over active lanes: log2(32) = 5 steps
                // through shared memory.
                let mut m = 0u32;
                for lane in iter_lanes(mask) {
                    m = m.max(self.reg(lane, src));
                }
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, m);
                }
                // 5 extra warp issues beyond the one already charged.
                stats.warp_instructions += 4;
                stats.lane_instructions += 4 * mask.count_ones() as u64;
                stats.warp_cycles += 4;
            }
            Op::AtomicAdd {
                dst,
                space,
                addr,
                offset,
                src,
            } => {
                self.addrs.clear();
                for lane in iter_lanes(mask) {
                    let a = self.reg(lane, addr).wrapping_add(offset);
                    self.addrs.push((lane, a));
                }
                let addrs = std::mem::take(&mut self.addrs);
                // Lanes are serviced in lane order; same-address lanes
                // serialize (each sees the previous lane's update). Global
                // adds go through the shared view's locked RMW so
                // cross-warp atomics never lose updates under concurrent
                // warp workers.
                for &(lane, a) in &addrs {
                    let add = self.reg(lane, src);
                    let old = if space == MemSpace::Global {
                        gmem.atomic_add_word(a, add)?
                    } else {
                        let lo = lane as usize * self.local_bytes;
                        let old = warp_load(
                            space,
                            Width::Word,
                            a,
                            &self.local[lo..lo + self.local_bytes],
                            &self.shared,
                            gmem,
                            pool,
                        )?;
                        warp_store(
                            space,
                            Width::Word,
                            a,
                            old.wrapping_add(add),
                            &mut self.local[lo..lo + self.local_bytes],
                            &mut self.shared,
                            gmem,
                        )?;
                        old
                    };
                    self.set_reg(lane, dst, old);
                }
                // Cost: transactions as a word access plus serialization of
                // duplicate addresses.
                self.charge_access(space, crate::ir::Width::Word, &addrs, launch, stats);
                let mut sorted: Vec<u32> = addrs.iter().map(|&(_, a)| a).collect();
                sorted.sort_unstable();
                let distinct = count_distinct(&sorted);
                let dups = addrs.len() as u64 - distinct as u64;
                stats.atomic_serializations += dups;
                stats.warp_cycles += dups;
                self.addrs = addrs;
            }
        }
        Ok(())
    }

    /// Charge memory-system cost for one warp access.
    fn charge_access(
        &mut self,
        space: MemSpace,
        width: crate::ir::Width,
        addrs: &[(u32, u32)],
        launch: &LaunchConfig,
        stats: &mut WarpStats,
    ) {
        match space {
            MemSpace::Global => {
                stats.mem_accesses += 1;
                let ts = launch.tx_bytes;
                // Transactions at `tx_bytes` granularity drive issue
                // replays; DRAM traffic is counted in 32 B sectors so a
                // coalesced byte access is not charged a full line.
                self.segs.clear();
                for &(_, a) in addrs {
                    let first = a / ts;
                    let last = a.wrapping_add(width.bytes() - 1) / ts;
                    self.segs.push(first);
                    if last != first {
                        self.segs.push(last);
                    }
                }
                self.segs.sort_unstable();
                self.segs.dedup();
                let ntx = self.segs.len() as u64;
                stats.mem_transactions += ntx;
                stats.warp_cycles += ntx;

                self.segs.clear();
                for &(_, a) in addrs {
                    let first = a / SECTOR_BYTES;
                    let last = a.wrapping_add(width.bytes() - 1) / SECTOR_BYTES;
                    self.segs.push(first);
                    if last != first {
                        self.segs.push(last);
                    }
                }
                self.segs.sort_unstable();
                self.segs.dedup();
                stats.dram_bytes += self.segs.len() as u64 * SECTOR_BYTES as u64;
            }
            MemSpace::Const => {
                // Broadcast is free; divergent addresses replay.
                let mut sorted: Vec<u32> = addrs.iter().map(|&(_, a)| a).collect();
                sorted.sort_unstable();
                let d = count_distinct(&sorted) as u64;
                if d > 1 {
                    stats.const_replays += d - 1;
                    stats.warp_cycles += d - 1;
                }
            }
            MemSpace::Local => {
                // Interleaved per-lane storage: always coalesced; charge one
                // extra cycle like an L1 hit.
                stats.warp_cycles += 1;
            }
            MemSpace::Shared => {
                // Bank conflicts are not modelled.
            }
        }
    }
}

/// Lane load used by the warp executor: identical to the scalar path but
/// global memory goes through the concurrent [`SharedMem`] view.
fn warp_load(
    space: MemSpace,
    width: Width,
    addr: u32,
    local: &[u8],
    shared: &[u8],
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
) -> Result<u32, ExecError> {
    let out = match space {
        MemSpace::Global => match width {
            Width::Byte => gmem.read_byte(addr)?,
            Width::Word => gmem.read_word(addr)?,
        },
        MemSpace::Const => match width {
            Width::Byte => pool.read_byte(addr)?,
            Width::Word => pool.read_word(addr)?,
        },
        MemSpace::Local => read_buf(local, MemSpace::Local, width, addr)?,
        MemSpace::Shared => read_buf(shared, MemSpace::Shared, width, addr)?,
    };
    Ok(out)
}

/// Lane store counterpart of [`warp_load`].
fn warp_store(
    space: MemSpace,
    width: Width,
    addr: u32,
    value: u32,
    local: &mut [u8],
    shared: &mut [u8],
    gmem: &SharedMem<'_>,
) -> Result<(), ExecError> {
    match space {
        MemSpace::Global => match width {
            Width::Byte => gmem.write_byte(addr, value)?,
            Width::Word => gmem.write_word(addr, value)?,
        },
        MemSpace::Const => {
            return Err(MemError::ReadOnly {
                space: MemSpace::Const,
            }
            .into())
        }
        MemSpace::Local => write_buf(local, MemSpace::Local, width, addr, value)?,
        MemSpace::Shared => write_buf(shared, MemSpace::Shared, width, addr, value)?,
    }
    Ok(())
}

fn count_distinct(sorted: &[u32]) -> usize {
    let mut n = 0;
    let mut last = None;
    for &a in sorted {
        if last != Some(a) {
            n += 1;
            last = Some(a);
        }
    }
    n
}

/// Iterate over set lane bits.
fn iter_lanes(mask: u32) -> impl Iterator<Item = u32> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let lane = m.trailing_zeros();
            m &= m - 1;
            Some(lane)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, ProgramBuilder};

    fn launch(p: &Program, lanes: u32, params: Vec<u32>, mem: &mut DeviceMemory) -> KernelStats {
        let pool = ConstPool::new();
        execute_simt(p, &LaunchConfig::new(lanes, params), mem, &pool).unwrap()
    }

    /// Lane i stores its id at byte i (coalesced) — one transaction per
    /// warp access.
    #[test]
    fn coalesced_byte_store_is_one_transaction() {
        let mut b = ProgramBuilder::new("c");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.mem_accesses, 1);
        assert_eq!(stats.mem_transactions, 1);
        assert_eq!(mem.read_byte(31).unwrap(), 31);
    }

    /// Lane i stores at stride 256 (row-major layout) — every lane hits a
    /// different 128 B segment: 32 transactions.
    #[test]
    fn strided_store_explodes_transactions() {
        let mut b = ProgramBuilder::new("s");
        let g = b.global_id();
        let stride = b.imm(256);
        let a = b.bin(BinOp::Mul, g, stride);
        b.st_global_byte(a, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(256 * 32);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.mem_accesses, 1);
        assert_eq!(stats.mem_transactions, 32);
    }

    /// Divergent if/else: both sides execute, SIMD efficiency drops, and
    /// lanes reconverge to produce correct results.
    #[test]
    fn divergent_branch_reconverges() {
        let mut b = ProgramBuilder::new("d");
        let g = b.global_id();
        let one = b.imm(1);
        let odd = b.bin(BinOp::And, g, one);
        let out = b.reg();
        b.if_then_else(
            odd,
            |b| {
                b.imm_into(out, 100);
            },
            |b| {
                b.imm_into(out, 200);
            },
        );
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, out);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.divergence.divergent_branches, 1);
        // Each divergent side pops at the join block: two reconvergence
        // events per divergent branch.
        assert_eq!(stats.divergence.reconvergences, 2);
        assert_eq!(mem.read_word(0).unwrap(), 200);
        assert_eq!(mem.read_word(4).unwrap(), 100);
        assert!(stats.simd_efficiency(32) < 1.0);
    }

    /// Data-dependent loop trip counts: all lanes finish, result correct,
    /// divergence recorded on loop exit.
    #[test]
    fn variable_trip_count_loop() {
        let mut b = ProgramBuilder::new("v");
        let g = b.global_id();
        let acc = b.imm(0);
        let one = b.imm(1);
        // for i in 0..lane_id: acc += 1
        b.for_loop(g, |b, _i| {
            b.bin_into(acc, BinOp::Add, acc, one);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        for i in 0..32 {
            assert_eq!(mem.read_word(i * 4).unwrap(), i, "lane {i}");
        }
        assert!(stats.divergence.divergent_branches > 0);
    }

    /// The scalar and SIMT executors must produce identical memory.
    #[test]
    fn scalar_simt_equivalence() {
        use crate::exec::scalar::{execute_scalar, ScalarRun};
        let mut b = ProgramBuilder::new("eq");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();

        let pool = ConstPool::new();
        let lanes = 48u32;
        let mut mem_simt = DeviceMemory::new(lanes as usize * 4);
        execute_simt(&p, &LaunchConfig::new(lanes, vec![]), &mut mem_simt, &pool).unwrap();

        let mut mem_scalar = DeviceMemory::new(lanes as usize * 4);
        let cfg = LaunchConfig::new(1, vec![]);
        for id in 0..lanes {
            execute_scalar(&ScalarRun::new(&p, id), &cfg, &mut mem_scalar, &pool, None).unwrap();
        }
        assert_eq!(mem_simt.as_bytes(), mem_scalar.as_bytes());
    }

    #[test]
    fn warp_red_max_broadcasts() {
        let mut b = ProgramBuilder::new("r");
        let g = b.global_id();
        let m = b.warp_red_max(g);
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, m);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64 * 4);
        launch(&p, 64, vec![], &mut mem);
        assert_eq!(mem.read_word(0).unwrap(), 31, "warp 0 max is lane 31");
        assert_eq!(mem.read_word(32 * 4).unwrap(), 63, "warp 1 max is lane 63");
    }

    #[test]
    fn atomic_add_serializes_same_address() {
        let mut b = ProgramBuilder::new("a");
        let zero = b.imm(0);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, zero, 0, one);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(mem.read_word(0).unwrap(), 32);
        assert_eq!(stats.atomic_serializations, 31);
    }

    #[test]
    fn atomic_add_distinct_addresses_parallel() {
        let mut b = ProgramBuilder::new("a2");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, addr, 0, one);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.atomic_serializations, 0);
        assert_eq!(mem.read_word(4).unwrap(), 1);
    }

    #[test]
    fn const_broadcast_free_divergent_replays() {
        let mut pool = ConstPool::new();
        let (off, _) = pool.intern(&[1, 2, 3, 4, 5, 6, 7, 8]);
        // Divergent const read: each lane reads const[off + lane % 4].
        let mut b = ProgramBuilder::new("cst");
        let g = b.global_id();
        let fourm = b.imm(4);
        let idx = b.bin(BinOp::RemU, g, fourm);
        let o = b.imm(off);
        let a = b.bin(BinOp::Add, o, idx);
        b.ld_const_byte(a, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let stats = execute_simt(&p, &LaunchConfig::new(32, vec![]), &mut mem, &pool).unwrap();
        assert_eq!(stats.const_replays, 3, "4 distinct addresses = 3 replays");
    }

    #[test]
    fn partial_last_warp() {
        let mut b = ProgramBuilder::new("p");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64);
        let stats = launch(&p, 40, vec![], &mut mem);
        assert_eq!(stats.warps, 2);
        assert_eq!(mem.read_byte(39).unwrap(), 39);
        assert_eq!(mem.read_byte(40).unwrap(), 0, "lane 40 never ran");
    }

    #[test]
    fn word_access_straddling_segments_counts_two() {
        let mut b = ProgramBuilder::new("w");
        let a = b.imm(126); // crosses the 128-byte boundary
        let v = b.imm(0xAABBCCDD);
        b.st_global_word(a, 0, v);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(256);
        let stats = launch(&p, 1, vec![], &mut mem);
        assert_eq!(stats.mem_transactions, 2);
    }

    /// A divergence-heavy kernel with atomics must produce bit-identical
    /// memory and stats at every worker count.
    #[test]
    fn parallel_workers_bit_identical() {
        let mut b = ProgramBuilder::new("par");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, addr, 0, one);
        b.halt();
        let p = b.build().unwrap();

        let lanes = 300u32; // 10 warps, partial last warp
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(lanes, vec![]);

        let mut mem1 = DeviceMemory::new(lanes as usize * 4);
        let base = execute_simt_workers(&p, &cfg, &mut mem1, &pool, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let mut memn = DeviceMemory::new(lanes as usize * 4);
            let stats = execute_simt_workers(&p, &cfg, &mut memn, &pool, workers).unwrap();
            assert_eq!(stats, base, "stats diverge at {workers} workers");
            assert_eq!(
                memn.as_bytes(),
                mem1.as_bytes(),
                "memory diverges at {workers} workers"
            );
        }
    }

    /// Faults report the lowest-numbered faulting warp regardless of
    /// worker count.
    #[test]
    fn parallel_error_is_lowest_faulting_warp() {
        let mut b = ProgramBuilder::new("oob");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, g);
        b.halt();
        let p = b.build().unwrap();

        // Room for warp 0 only: every later warp faults, lane 32 first.
        let cfg = LaunchConfig::new(256, vec![]);
        let pool = ConstPool::new();
        let mut mem1 = DeviceMemory::new(32 * 4);
        let serial = execute_simt_workers(&p, &cfg, &mut mem1, &pool, 1).unwrap_err();
        for workers in [2usize, 4] {
            let mut memn = DeviceMemory::new(32 * 4);
            let err = execute_simt_workers(&p, &cfg, &mut memn, &pool, workers).unwrap_err();
            assert_eq!(err, serial, "error differs at {workers} workers");
        }
    }

    /// Tracing a launch must not change stats or memory, and must record
    /// one wall-time span plus one `warp_cycles` sample per warp.
    #[test]
    fn traced_execution_bit_identical_and_records_warps() {
        use rhythm_obs::TraceRecorder;
        let mut b = ProgramBuilder::new("traced");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();

        let lanes = 300u32; // 10 warps, partial last warp
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(lanes, vec![]);
        let mut mem_base = DeviceMemory::new(lanes as usize * 4);
        let base = execute_simt_workers(&p, &cfg, &mut mem_base, &pool, 2).unwrap();

        for workers in [1usize, 3] {
            let rec = TraceRecorder::new();
            let mut mem = DeviceMemory::new(lanes as usize * 4);
            let traced =
                execute_simt_workers_traced(&p, &cfg, &mut mem, &pool, workers, &rec).unwrap();
            assert_eq!(traced, base, "tracing changed stats at {workers} workers");
            assert_eq!(
                mem.as_bytes(),
                mem_base.as_bytes(),
                "tracing changed memory"
            );
            let spans = rec
                .events()
                .iter()
                .filter(|e| e.track.starts_with("simt:w") && e.name.contains("traced warp"))
                .count();
            assert_eq!(spans, 10, "one span per warp at {workers} workers");
            let h = rec.histogram("warp_cycles").expect("warp cycle histogram");
            assert_eq!(h.count(), 10);
        }
    }

    /// `workers: 0` resolves to the machine's parallelism and still runs.
    #[test]
    fn auto_worker_count_executes() {
        let mut b = ProgramBuilder::new("auto");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(128);
        let pool = ConstPool::new();
        let stats =
            execute_simt_workers(&p, &LaunchConfig::new(128, vec![]), &mut mem, &pool, 0).unwrap();
        assert_eq!(stats.warps, 4);
        assert_eq!(mem.read_byte(127).unwrap(), 127);
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    /// Nested divergence exercises stack depth > 2.
    #[test]
    fn nested_divergence() {
        let mut b = ProgramBuilder::new("n");
        let g = b.global_id();
        let one = b.imm(1);
        let two = b.imm(2);
        let bit0 = b.bin(BinOp::And, g, one);
        let bit1v = b.bin(BinOp::And, g, two);
        let out = b.reg();
        b.if_then_else(
            bit0,
            |b| {
                b.if_then_else(bit1v, |b| b.imm_into(out, 3), |b| b.imm_into(out, 1));
            },
            |b| {
                b.if_then_else(bit1v, |b| b.imm_into(out, 2), |b| b.imm_into(out, 0));
            },
        );
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, out);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        for i in 0..32u32 {
            assert_eq!(mem.read_word(i * 4).unwrap(), i % 4, "lane {i}");
        }
        assert!(stats.divergence.max_stack_depth >= 3);
    }
}
