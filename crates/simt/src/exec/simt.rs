//! SIMT executor: warps of 32 lanes in lockstep with stack-based
//! reconvergence and a memory-coalescing transaction model.
//!
//! This is the substitute for real CUDA hardware: it executes the same
//! kernel IR the scalar executor runs, but 32 lanes at a time, charging
//! * one issue cycle per warp instruction (the SIMT amortization win),
//! * one extra cycle per global-memory transaction after coalescing
//!   lane addresses into aligned segments (the data-layout effect), and
//! * serialization cycles for divergent constant reads and same-address
//!   atomics.
//!
//! Divergent branches push entries onto a per-warp reconvergence stack and
//! rejoin at the branch block's immediate post-dominator, the scheme used
//! by real hardware and by GPGPU-Sim.
//!
//! Two interpreter engines share this timing model:
//!
//! * the **pre-decoded engine** (default, [`execute_plan_workers_traced`])
//!   runs [`ExecPlan`]s — flat decoded-op arrays with SoA register
//!   addressing (`regs[r * 32 + lane]`), decode-time reconvergence points,
//!   convergent full-mask fast paths that process a register's 32
//!   contiguous lanes in straight auto-vectorizable loops, and per-warp
//!   buffers leased from a process-wide [`warp arena`](warp_arena_stats)
//!   so steady-state launches allocate nothing;
//! * the **legacy engine** ([`execute_simt_legacy_workers`]) walks the
//!   boxed IR directly, lane-major and fully masked — retained as the
//!   differential-testing oracle and the `bench_kernels` baseline.
//!
//! Both engines produce bit-identical memory, stats, and errors at every
//! worker count. Warps between barriers are independent, so
//! [`execute_simt_workers`] can execute them concurrently on a host worker
//! pool while keeping results bit-for-bit identical to the serial
//! [`execute_simt`] path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use rhythm_obs::{ArgValue, Clock, NoopRecorder, PoolCounters, PoolSnapshot, Recorder};

use crate::ir::{BinOp, CfgInfo, MemSpace, Op, Program, Reg, Terminator, UnOp, Width, EXIT_BLOCK};
use crate::mem::{ConstPool, DeviceMemory, MemError, SharedMem};
use crate::stats::{contiguous_segments, DivergenceStats, KernelStats};

use super::plan::{plan_for, DecodedOp, DecodedTerm, ExecPlan, PlanBlock, RegSlot, WideCopy};
use super::scalar::{read_buf, write_buf};
use super::{AccessKind, ExecError, LaunchConfig, WARP_SIZE};

/// DRAM sector granularity for traffic accounting (GDDR5 32-byte sectors).
pub const SECTOR_BYTES: u32 = 32;

/// [`WARP_SIZE`] as a usize, for slice arithmetic.
const LANES: usize = WARP_SIZE as usize;

/// One entry of the per-warp reconvergence stack.
#[derive(Copy, Clone, Debug)]
struct StackEntry {
    /// Next block to execute for this entry's lanes.
    block: u32,
    /// Active lanes (bit i = lane i of the warp).
    mask: u32,
    /// Block at which this entry pops and its lanes rejoin the entry
    /// below; [`EXIT_BLOCK`] for the bottom entry and branches whose paths
    /// only rejoin at kernel exit.
    reconv: u32,
}

/// Execute a kernel launch on the SIMT engine, one warp at a time.
///
/// Lanes within a warp run in lockstep; warps run sequentially on the
/// calling thread (their cycle counts are combined by the device timing
/// model in [`crate::gpu`]). Use [`execute_simt_workers`] to spread the
/// warps over a host thread pool.
///
/// The launch executes on the pre-decoded engine: the program's
/// [`ExecPlan`] is fetched from (or inserted into) the process-wide decode
/// cache, so repeated launches of the same kernel skip decode and CFG
/// analysis entirely.
///
/// # Errors
///
/// Fails on memory faults, missing params, a tripped instruction budget,
/// or a divergence-stack invariant violation (which would indicate a bug).
///
/// # Example
///
/// ```
/// use rhythm_simt::ir::{ProgramBuilder, BinOp};
/// use rhythm_simt::exec::{simt::execute_simt, LaunchConfig};
/// use rhythm_simt::mem::{ConstPool, DeviceMemory};
///
/// // Every lane stores its global id to global[id*4].
/// let mut b = ProgramBuilder::new("ids");
/// let g = b.global_id();
/// let four = b.imm(4);
/// let addr = b.bin(BinOp::Mul, g, four);
/// b.st_global_word(addr, 0, g);
/// b.halt();
/// let p = b.build()?;
///
/// let mut mem = DeviceMemory::new(64 * 4);
/// let pool = ConstPool::new();
/// let stats = execute_simt(&p, &LaunchConfig::new(64, []), &mut mem, &pool)?;
/// assert_eq!(stats.warps, 2);
/// assert_eq!(mem.read_word(63 * 4)?, 63);
/// assert!(stats.simd_efficiency(32) > 0.99, "no divergence here");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_simt(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
) -> Result<KernelStats, ExecError> {
    execute_simt_workers(program, cfg, mem, pool, 1)
}

/// Execute a kernel launch with its warps spread over `workers` host
/// threads (`0` = one per available core, `1` = serial, identical to
/// [`execute_simt`]).
///
/// Warps between barriers are independent, so they are handed to a worker
/// pool through a dynamic (work-stealing) counter. Results are bit-for-bit
/// identical to serial execution for well-formed cohort kernels:
///
/// * warps write disjoint lanes of global memory, which the lock-free
///   [`SharedMem`] view supports without ordering constraints;
/// * every [`KernelStats`] counter is a sum or max over per-warp values,
///   so the deterministic per-warp merge order makes the totals exact;
/// * cross-warp `AtomicAdd` to one address never loses updates (striped
///   RMW locks), though the *old values* observed by racing warps — and
///   racy non-atomic cross-warp accesses — depend on scheduling.
///
/// # Errors
///
/// Same failures as [`execute_simt`]. When several warps fault, the error
/// of the lowest-numbered faulting warp is reported, independent of worker
/// count. Unlike serial execution, warps numbered after a faulting warp
/// may already have executed and written memory by the time the error is
/// returned.
pub fn execute_simt_workers(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    workers: usize,
) -> Result<KernelStats, ExecError> {
    execute_simt_workers_traced(program, cfg, mem, pool, workers, &NoopRecorder)
}

/// [`execute_simt_workers`] with per-warp tracing: each warp's execution
/// becomes a wall-time span on its worker's track (`simt:w0`, `simt:w1`,
/// ...) named `"<kernel> warp <w>"`, carrying instruction, divergence,
/// and cycle counters as span args, plus `warp_cycles` and `warp_exec_ns`
/// streaming histogram samples.
///
/// Tracing never touches execution state, so results are bit-identical to
/// the untraced path at every worker count — only which worker track a
/// warp's span lands on varies from run to run.
///
/// # Errors
///
/// Same failures as [`execute_simt_workers`].
pub fn execute_simt_workers_traced<R: Recorder + ?Sized>(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    workers: usize,
    rec: &R,
) -> Result<KernelStats, ExecError> {
    let plan = plan_for(program);
    execute_plan_workers_traced(&plan, cfg, mem, pool, workers, rec)
}

/// Execute a pre-decoded [`ExecPlan`] directly (the engine behind every
/// default launch path).
///
/// Callers that launch the same kernel repeatedly should hold on to the
/// plan (or rely on [`plan_for`]'s cache, as [`execute_simt_workers`]
/// does) so decode cost is paid once. Per-warp register files and scratch
/// buffers are leased from the process-wide warp arena, making
/// steady-state launches allocation-free (see [`warp_arena_stats`]).
///
/// # Errors
///
/// Same failures as [`execute_simt_workers`].
pub fn execute_plan_workers_traced<R: Recorder + ?Sized>(
    plan: &ExecPlan,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    workers: usize,
    rec: &R,
) -> Result<KernelStats, ExecError> {
    let gmem = mem.shared();
    let pack = effective_pack(cfg, plan);
    if pack > 1 {
        return dispatch_gangs(plan, cfg, workers, pack, &gmem, pool, rec);
    }
    dispatch_warps(
        cfg,
        workers,
        plan.name(),
        rec,
        WarpLease::acquire,
        |lease, base, count| run_plan_warp(plan, cfg, &gmem, pool, lease.bufs(), base, count),
    )
}

/// Resolve the packing width a launch actually runs with: the requested
/// [`LaunchConfig::pack`] rounded down to a power of two in `{1, 2, 4}`,
/// clamped by the plan's static profile ([`ExecPlan::pack_max`]), and
/// forced to 1 for single-warp launches (there is nothing to pack).
fn effective_pack(cfg: &LaunchConfig, plan: &ExecPlan) -> usize {
    if cfg.warps() <= 1 {
        return 1;
    }
    let req = match cfg.pack {
        0 | 1 => 1,
        2 | 3 => 2,
        _ => 4,
    };
    req.min(plan.pack_max()).max(1) as usize
}

/// Execute a launch on the legacy (non-pre-decoded) engine: lane-major
/// registers, per-launch CFG analysis, fully masked lane iteration.
///
/// Kept as the independently implemented oracle for differential tests and
/// as the `bench_kernels` baseline; production paths use the pre-decoded
/// engine. Memory, stats, and errors are bit-identical to
/// [`execute_simt_workers`] at every worker count.
///
/// # Errors
///
/// Same failures as [`execute_simt_workers`].
pub fn execute_simt_legacy_workers(
    program: &Program,
    cfg: &LaunchConfig,
    mem: &mut DeviceMemory,
    pool: &ConstPool,
    workers: usize,
) -> Result<KernelStats, ExecError> {
    let cfginfo = CfgInfo::analyze(program);
    let gmem = mem.shared();
    dispatch_warps(
        cfg,
        workers,
        program.name(),
        &NoopRecorder,
        || WarpState::new(program, cfg),
        |warp, base, count| {
            warp.reset(base, count);
            warp.run(program, &cfginfo, cfg, &gmem, pool)
        },
    )
}

/// Emit one per-warp wall-time span on the executing worker's track. The
/// recorder only *observes* execution (the stats are copied out after the
/// warp finishes), so traced and untraced runs stay bit-identical.
fn trace_warp<R: Recorder + ?Sized>(
    rec: &R,
    worker: usize,
    kernel: &str,
    warp: u32,
    start_us: f64,
    result: &Result<WarpStats, ExecError>,
) {
    let dur_us = rec.wall_now_us() - start_us;
    let track = format!("simt:w{worker}");
    match result {
        Ok(s) => {
            rec.span(
                Clock::Wall,
                &track,
                &format!("{kernel} warp {warp}"),
                start_us,
                dur_us,
                &[
                    ("warp", ArgValue::U64(warp as u64)),
                    ("warp_instructions", ArgValue::U64(s.warp_instructions)),
                    ("lane_instructions", ArgValue::U64(s.lane_instructions)),
                    (
                        "divergent_branches",
                        ArgValue::U64(s.divergence.divergent_branches),
                    ),
                    ("warp_cycles", ArgValue::U64(s.warp_cycles)),
                ],
            );
            rec.sample("warp_cycles", s.warp_cycles as f64);
            rec.sample("warp_exec_ns", dur_us * 1e3);
        }
        Err(_) => {
            rec.span(
                Clock::Wall,
                &track,
                &format!("{kernel} warp {warp} (fault)"),
                start_us,
                dur_us,
                &[("warp", ArgValue::U64(warp as u64))],
            );
        }
    }
}

/// Run every warp of a launch through `run_warp`, serially or on a worker
/// pool, and merge the per-warp stats.
///
/// This is the one scheduler both engines share: dynamic self-scheduling
/// over a monotonic claim counter, per-warp tracing, deterministic merge in
/// warp order, and lowest-faulting-warp error selection. `new_state` builds
/// one reusable per-worker execution state (a [`WarpState`] or an arena
/// [`WarpLease`]).
fn dispatch_warps<S, R, NEW, RUN>(
    cfg: &LaunchConfig,
    workers: usize,
    kernel: &str,
    rec: &R,
    new_state: NEW,
    run_warp: RUN,
) -> Result<KernelStats, ExecError>
where
    R: Recorder + ?Sized,
    NEW: Fn() -> S + Sync,
    RUN: Fn(&mut S, u32, u32) -> Result<WarpStats, ExecError> + Sync,
{
    let nwarps = cfg.warps() as usize;
    let workers = resolve_workers(workers).min(nwarps.max(1));

    let per_warp: Vec<(u32, Result<WarpStats, ExecError>)> = if workers <= 1 {
        let mut state = new_state();
        let mut out = Vec::with_capacity(nwarps);
        for w in 0..cfg.warps() {
            let base = w * WARP_SIZE;
            let count = (cfg.lanes - base).min(WARP_SIZE);
            let start_us = if rec.enabled() {
                rec.wall_now_us()
            } else {
                0.0
            };
            let r = run_warp(&mut state, base, count);
            if rec.enabled() {
                trace_warp(rec, 0, kernel, w, start_us, &r);
            }
            let stop = r.is_err();
            out.push((w, r));
            if stop {
                break;
            }
        }
        out
    } else {
        // Dynamic self-scheduling: each worker claims the next unstarted
        // warp. Claims are monotonic, so every warp below the highest
        // claimed index runs to completion even if a later warp faults —
        // which is what makes lowest-faulting-warp error selection
        // deterministic.
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let outs: Vec<Vec<(u32, Result<WarpStats, ExecError>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let next = &next;
                    let abort = &abort;
                    let new_state = &new_state;
                    let run_warp = &run_warp;
                    s.spawn(move || {
                        let mut state = new_state();
                        // Even share as the capacity hint; stealing skews
                        // the split but only a faulting launch leaves
                        // headroom unused.
                        let mut out = Vec::with_capacity(nwarps / workers + 1);
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let w = next.fetch_add(1, Ordering::Relaxed);
                            if w >= nwarps {
                                break;
                            }
                            let w = w as u32;
                            let base = w * WARP_SIZE;
                            let count = (cfg.lanes - base).min(WARP_SIZE);
                            let start_us = if rec.enabled() {
                                rec.wall_now_us()
                            } else {
                                0.0
                            };
                            let r = run_warp(&mut state, base, count);
                            if rec.enabled() {
                                trace_warp(rec, worker, kernel, w, start_us, &r);
                            }
                            if r.is_err() {
                                abort.store(true, Ordering::Relaxed);
                            }
                            out.push((w, r));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("warp worker panicked"))
                .collect()
        });
        let mut merged: Vec<_> = outs.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(w, _)| w);
        merged
    };

    merge_warp_results(cfg, per_warp)
}

/// Deterministic launch-total merge shared by the warp and gang
/// schedulers: fold per-warp stats in warp order and report the error of
/// the lowest-numbered faulting warp.
fn merge_warp_results(
    cfg: &LaunchConfig,
    per_warp: Vec<(u32, Result<WarpStats, ExecError>)>,
) -> Result<KernelStats, ExecError> {
    let mut total = KernelStats {
        lanes: cfg.lanes,
        warps: cfg.warps(),
        ..Default::default()
    };
    for (_, r) in per_warp {
        let stats = r?;
        total.warp_instructions += stats.warp_instructions;
        total.lane_instructions += stats.lane_instructions;
        total.mem_accesses += stats.mem_accesses;
        total.mem_transactions += stats.mem_transactions;
        total.dram_bytes += stats.dram_bytes;
        total.const_replays += stats.const_replays;
        total.atomic_serializations += stats.atomic_serializations;
        total.warp_cycles += stats.warp_cycles;
        total.max_warp_cycles = total.max_warp_cycles.max(stats.warp_cycles);
        total.divergence.merge(&stats.divergence);
    }
    Ok(total)
}

/// Run every warp of a launch through the packed-gang executor: warps are
/// grouped into gangs of `pack` consecutive sub-groups, and gangs are
/// scheduled exactly like [`dispatch_warps`] schedules warps — dynamic
/// self-scheduling over a monotonic claim counter, deterministic merge in
/// warp order, lowest-faulting-warp error selection.
///
/// Because every sub-group's execution (registers, memory effects, stats,
/// faults) is bit-identical to its solo run — see [`run_plan_gang`] — the
/// launch result is bit-identical to the unpacked path at every worker
/// count for kernels whose warps are independent.
#[allow(clippy::too_many_arguments)] // scheduler entry; grouping would cost indirection
fn dispatch_gangs<R: Recorder + ?Sized>(
    plan: &ExecPlan,
    cfg: &LaunchConfig,
    workers: usize,
    pack: usize,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    rec: &R,
) -> Result<KernelStats, ExecError> {
    let nwarps = cfg.warps() as usize;
    let ngangs = nwarps.div_ceil(pack);
    let workers = resolve_workers(workers).min(ngangs.max(1));

    // Run one gang and append its per-warp results; true if any warp of
    // the gang faulted. Captures only shared state, so the parallel path
    // can call it from every worker.
    let run_gang = |leases: &mut Vec<WarpLease>,
                    g: usize,
                    worker: usize,
                    out: &mut Vec<(u32, Result<WarpStats, ExecError>)>|
     -> bool {
        let first_warp = (g * pack) as u32;
        let k = pack.min(nwarps - g * pack);
        let start_us = if rec.enabled() {
            rec.wall_now_us()
        } else {
            0.0
        };
        let before = out.len();
        run_plan_gang(plan, cfg, gmem, pool, &mut leases[..k], first_warp, k, out);
        if rec.enabled() {
            // Sub-groups run interleaved, so each warp's span covers the
            // whole gang; tracing only observes, results are unchanged.
            for (w, r) in &out[before..] {
                trace_warp(rec, worker, plan.name(), *w, start_us, r);
            }
        }
        out[before..].iter().any(|(_, r)| r.is_err())
    };

    let per_warp: Vec<(u32, Result<WarpStats, ExecError>)> = if workers <= 1 {
        let mut leases: Vec<WarpLease> = (0..pack).map(|_| WarpLease::acquire()).collect();
        let mut out = Vec::with_capacity(nwarps);
        for g in 0..ngangs {
            if run_gang(&mut leases, g, 0, &mut out) {
                break;
            }
        }
        out
    } else {
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let outs: Vec<Vec<(u32, Result<WarpStats, ExecError>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let next = &next;
                    let abort = &abort;
                    let run_gang = &run_gang;
                    s.spawn(move || {
                        let mut leases: Vec<WarpLease> =
                            (0..pack).map(|_| WarpLease::acquire()).collect();
                        let mut out = Vec::with_capacity(nwarps / workers + pack);
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            if g >= ngangs {
                                break;
                            }
                            if run_gang(&mut leases, g, worker, &mut out) {
                                abort.store(true, Ordering::Relaxed);
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gang worker panicked"))
                .collect()
        });
        let mut merged: Vec<_> = outs.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(w, _)| w);
        merged
    };

    merge_warp_results(cfg, per_warp)
}

/// Resolve a worker-count knob: `0` means one worker per available core.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

// ---------------------------------------------------------------------------
// Warp arena: pooled per-warp execution buffers.
// ---------------------------------------------------------------------------

/// The full per-warp working set, pooled across warps, workers, and
/// launches by the process-wide warp arena.
///
/// Buffer *lengths* are set per warp (`clear` + zero `resize`), but the
/// underlying capacity survives release/acquire cycles, so once leases have
/// grown to a kernel's sizes every later launch runs without touching the
/// allocator.
#[derive(Default, Debug)]
struct WarpBuffers {
    /// SoA register file: `regs[slot + lane]` where `slot = r * WARP_SIZE`.
    regs: Vec<u32>,
    /// Flat per-lane local memory: `local[lane * local_bytes ..]`.
    local: Vec<u8>,
    /// Per-warp shared memory.
    shared: Vec<u8>,
    /// Scratch for gathering lane addresses on memory ops.
    addrs: Vec<(u32, u32)>,
    /// Scratch for segment ids and sorted-address dedup.
    segs: Vec<u32>,
    /// Reconvergence stack.
    stack: Vec<StackEntry>,
}

static WARP_ARENA: OnceLock<Mutex<Vec<WarpBuffers>>> = OnceLock::new();
static WARP_ARENA_COUNTERS: PoolCounters = PoolCounters::new();

fn warp_arena() -> &'static Mutex<Vec<WarpBuffers>> {
    WARP_ARENA.get_or_init(|| Mutex::new(Vec::new()))
}

/// Cumulative warp-arena checkout totals for this process.
///
/// A window (see [`rhythm_obs::PoolSnapshot::since`]) in which `allocated`
/// did not move proves the launches inside it ran with fully recycled warp
/// contexts — the pre-decoded engine's steady state.
pub fn warp_arena_stats() -> PoolSnapshot {
    WARP_ARENA_COUNTERS.snapshot()
}

/// A checked-out [`WarpBuffers`]; returns the buffers to the arena on drop.
struct WarpLease(Option<WarpBuffers>);

impl WarpLease {
    fn acquire() -> WarpLease {
        let recycled = warp_arena().lock().expect("warp arena poisoned").pop();
        match recycled {
            Some(bufs) => {
                WARP_ARENA_COUNTERS.record_reused();
                WarpLease(Some(bufs))
            }
            None => {
                WARP_ARENA_COUNTERS.record_allocated();
                WarpLease(Some(WarpBuffers::default()))
            }
        }
    }

    fn bufs(&mut self) -> &mut WarpBuffers {
        self.0.as_mut().expect("lease taken")
    }
}

impl Drop for WarpLease {
    fn drop(&mut self) {
        if let Some(bufs) = self.0.take() {
            warp_arena().lock().expect("warp arena poisoned").push(bufs);
        }
    }
}

#[derive(Default)]
struct WarpStats {
    warp_instructions: u64,
    lane_instructions: u64,
    mem_accesses: u64,
    mem_transactions: u64,
    dram_bytes: u64,
    const_replays: u64,
    atomic_serializations: u64,
    warp_cycles: u64,
    divergence: DivergenceStats,
}

// ---------------------------------------------------------------------------
// Pre-decoded engine.
// ---------------------------------------------------------------------------

/// Execute one warp of a pre-decoded plan against leased buffers.
fn run_plan_warp(
    plan: &ExecPlan,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
    base: u32,
    count: u32,
) -> Result<WarpStats, ExecError> {
    let num_regs = plan.num_regs() as usize;
    let local_bytes = launch.local_bytes as usize;
    // Fresh zeroed state per warp; clear + resize keeps capacity so the
    // steady state never allocates.
    bufs.regs.clear();
    bufs.regs.resize(num_regs * LANES, 0);
    bufs.local.clear();
    bufs.local.resize(local_bytes * LANES, 0);
    bufs.shared.clear();
    bufs.shared.resize(launch.shared_bytes as usize, 0);

    let full = if count >= WARP_SIZE {
        u32::MAX
    } else {
        (1u32 << count) - 1
    };
    let mut stack = std::mem::take(&mut bufs.stack);
    stack.clear();
    stack.push(StackEntry {
        block: plan.entry(),
        mask: full,
        reconv: EXIT_BLOCK,
    });
    let r = plan_warp_loop(
        plan,
        launch,
        gmem,
        pool,
        bufs,
        base,
        local_bytes,
        &mut stack,
        WarpStats::default(),
    );
    bufs.stack = stack;
    r
}

/// Execute one block's ops plus the terminator *issue* accounting (the
/// control-flow effect of the terminator stays with the caller). Shared
/// verbatim by the solo warp loop and the fused gang phase so the two
/// cannot drift.
#[allow(clippy::too_many_arguments)] // internal hot loop; grouping would cost indirection
#[inline(always)]
fn run_block_ops(
    plan: &ExecPlan,
    block: &PlanBlock,
    mask: u32,
    base: u32,
    local_bytes: usize,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
    stats: &mut WarpStats,
) -> Result<(), ExecError> {
    let ops = plan.block_ops(block);
    let nops = ops.len() as u64;
    let lanes_on = mask.count_ones() as u64;
    if stats.warp_instructions + nops <= launch.max_instructions {
        // Whole block fits in the budget: batch the per-issue
        // accounting. A prefix of per-op checks can only fail if the
        // block total would, so this is exactly the per-op semantics.
        stats.warp_instructions += nops;
        stats.lane_instructions += nops * lanes_on;
        stats.warp_cycles += nops;
        for op in ops {
            exec_decoded(op, mask, base, local_bytes, launch, gmem, pool, bufs, stats)?;
        }
    } else {
        // Budget trips inside this block: per-op accounting pins the
        // fault to the exact instruction, matching the legacy engine.
        for op in ops {
            stats.warp_instructions += 1;
            stats.lane_instructions += lanes_on;
            stats.warp_cycles += 1;
            if stats.warp_instructions > launch.max_instructions {
                return Err(ExecError::Budget {
                    executed: stats.warp_instructions,
                });
            }
            exec_decoded(op, mask, base, local_bytes, launch, gmem, pool, bufs, stats)?;
        }
    }

    // Terminator: also one issue.
    stats.warp_instructions += 1;
    stats.lane_instructions += lanes_on;
    stats.warp_cycles += 1;
    Ok(())
}

#[allow(clippy::too_many_arguments)] // internal hot loop; grouping would cost indirection
fn plan_warp_loop(
    plan: &ExecPlan,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
    base: u32,
    local_bytes: usize,
    stack: &mut Vec<StackEntry>,
    mut stats: WarpStats,
) -> Result<WarpStats, ExecError> {
    let mut halted: u32 = 0;

    while let Some(top) = stack.last_mut() {
        top.mask &= !halted;
        if top.mask == 0 {
            stack.pop();
            continue;
        }
        if top.block == top.reconv {
            stats.divergence.reconvergences += 1;
            stack.pop();
            continue;
        }
        if top.block == EXIT_BLOCK {
            return Err(ExecError::Reconvergence(
                "union entry surfaced at exit with live lanes",
            ));
        }
        let mask = top.mask;
        let cur = top.block;

        // Recognized byte-copy loop header: commit the whole loop as one
        // wide copy when the runtime preconditions hold (any failure falls
        // through to byte-at-a-time interpretation, faults included).
        if let Some(wc) = plan.wide_copy(cur) {
            if try_wide_copy(wc, mask, launch, gmem, pool, bufs, &mut stats)? {
                stack.last_mut().expect("stack nonempty").block = wc.exit;
                continue;
            }
        }

        let block = *plan.block(cur);
        run_block_ops(
            plan,
            &block,
            mask,
            base,
            local_bytes,
            launch,
            gmem,
            pool,
            bufs,
            &mut stats,
        )?;

        match block.term {
            DecodedTerm::Jmp(t) => {
                let top = stack.last_mut().expect("stack nonempty");
                top.block = t;
            }
            DecodedTerm::Halt => {
                halted |= mask;
            }
            DecodedTerm::Br {
                cond,
                then_bb,
                else_bb,
                reconv,
            } => {
                stats.divergence.branches += 1;
                // Dense condition scan: evaluating inactive lanes is free
                // (the AND with `mask` discards them) and keeps the loop
                // branchless.
                let mut mask_t = 0u32;
                let c = &bufs.regs[cond as usize..cond as usize + LANES];
                for (lane, &v) in c.iter().enumerate() {
                    mask_t |= ((v != 0) as u32) << lane;
                }
                mask_t &= mask;
                let mask_f = mask & !mask_t;
                let top = stack.last_mut().expect("stack nonempty");
                if mask_f == 0 {
                    top.block = then_bb;
                } else if mask_t == 0 {
                    top.block = else_bb;
                } else {
                    stats.divergence.divergent_branches += 1;
                    top.block = reconv;
                    if else_bb != reconv {
                        stack.push(StackEntry {
                            block: else_bb,
                            mask: mask_f,
                            reconv,
                        });
                    }
                    if then_bb != reconv {
                        stack.push(StackEntry {
                            block: then_bb,
                            mask: mask_t,
                            reconv,
                        });
                    }
                    stats.divergence.max_stack_depth =
                        stats.divergence.max_stack_depth.max(stack.len() as u32);
                }
            }
        }
    }
    Ok(stats)
}

/// The register's value when every active lane agrees on it.
#[inline]
fn uniform_reg(regs: &[u32], slot: RegSlot, mask: u32) -> Option<u32> {
    let lanes = &regs[slot as usize..slot as usize + LANES];
    let mut it = iter_lanes(mask);
    let first = lanes[it.next()? as usize];
    if it.all(|l| lanes[l as usize] == first) {
        Some(first)
    } else {
        None
    }
}

/// Try to retire a recognized byte-copy loop (see [`WideCopy`]) in one shot.
///
/// Returns `Ok(true)` when the whole loop was committed — memory bytes,
/// final register values, and every statistic bit-identical to interpreting
/// it — and `Ok(false)` when any runtime precondition fails, in which case
/// *nothing* was touched and the caller falls back to byte-at-a-time
/// interpretation (which reproduces faults, budget trips, and wrap-around
/// arithmetic exactly).
///
/// Preconditions proved before committing anything:
/// - loop counter, length, source offset, element stride, and increment are
///   uniform over the active lanes, the increment is literally 1, and at
///   least one iteration remains;
/// - the whole loop (12 issues per iteration + 2 for the final header pass)
///   fits in the remaining instruction budget;
/// - every constant read and every lane's whole store walk stay in bounds
///   with no u32 wrap-around, so u64 address math equals the interpreter's
///   wrapping math.
///
/// Committed stores then take one of two tiers: lanes whose start addresses
/// form a dense ascending run (the cohort layout emitted by
/// `BufCursor`-style kernels) are written with a block fill and charged via
/// the closed-form [`contiguous_segments`]; any other layout is written
/// per-lane per-iteration and charged through [`charge_access`], the same
/// coalescing model the interpreter uses.
fn try_wide_copy(
    wc: &WideCopy,
    mask: u32,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
    stats: &mut WarpStats,
) -> Result<bool, ExecError> {
    if !launch.tx_bytes.is_power_of_two() {
        return Ok(false);
    }
    let (i0, n, src, es) = {
        let regs = &bufs.regs;
        let (Some(i0), Some(n), Some(src), Some(es), Some(one)) = (
            uniform_reg(regs, wc.idx, mask),
            uniform_reg(regs, wc.len, mask),
            uniform_reg(regs, wc.src, mask),
            uniform_reg(regs, wc.elem_stride, mask),
            uniform_reg(regs, wc.one, mask),
        ) else {
            return Ok(false);
        };
        if one != 1 || i0 >= n {
            return Ok(false);
        }
        (i0, n, src, es)
    };
    let trip = n - i0;
    let cost = trip as u64 * 12 + 2;
    match stats.warp_instructions.checked_add(cost) {
        Some(total) if total <= launch.max_instructions => {}
        _ => return Ok(false),
    }
    // Constant source: addresses src+i0 .. src+n-1, ascending. Bounds or
    // wrap failures fall back so interpretation faults at the right issue.
    let src_last = src as u64 + n as u64 - 1;
    if src_last > u32::MAX as u64 || src_last >= pool.len() as u64 {
        return Ok(false);
    }

    // Per-lane store walk: lane writes start_l + t*es for t in 0..trip.
    // u128 math (pos + trip can reach 2^33, times a u32 stride) proves no
    // intermediate wraps u32, hence equals the interpreter's arithmetic.
    let mut addrs = std::mem::take(&mut bufs.addrs);
    addrs.clear();
    {
        let regs = &bufs.regs;
        let glen = gmem.len() as u128;
        for lane in iter_lanes(mask) {
            let l = lane as usize;
            let lane_base =
                regs[wc.base as usize + l] as u128 + regs[wc.lane_term as usize + l] as u128;
            let p0 = regs[wc.pos as usize + l] as u128;
            let start = lane_base + p0 * es as u128;
            let end = lane_base + (p0 + trip as u128 - 1) * es as u128;
            if end > u32::MAX as u128 || end >= glen {
                addrs.clear();
                bufs.addrs = addrs;
                return Ok(false);
            }
            // Footprint sanitizer: prove the lane's whole store walk lies
            // inside one claimed write interval, else fall back to
            // interpretation, which checks each access exactly (and
            // reports the precise escaping address).
            if let Some(spec) = &launch.sanitize {
                if !spec.covers(AccessKind::Write, start as u64, end as u64 + 1) {
                    addrs.clear();
                    bufs.addrs = addrs;
                    return Ok(false);
                }
            }
            addrs.push((lane, start as u32));
        }
    }

    // All preconditions hold: the interpreted loop would run to completion
    // without faulting. Commit the batched issue accounting (12 per
    // iteration: header op + branch + 9 body ops + jump; final header pass
    // is 2 more), then the stores.
    let nact = mask.count_ones();
    stats.warp_instructions += cost;
    stats.lane_instructions += cost * nact as u64;
    stats.warp_cycles += cost;
    stats.divergence.branches += trip as u64 + 1;

    let cbytes = pool.as_bytes();
    let src0 = (src + i0) as usize;
    let dense = addrs
        .windows(2)
        .all(|w| w[0].1.checked_add(1) == Some(w[1].1));
    if dense {
        // Tier A: one fill per iteration; transaction/sector counts in
        // closed form (the run is contiguous so the coalescing model's
        // distinct-segment count is exact).
        let s0 = addrs[0].1;
        for t in 0..trip {
            let byte = cbytes[src0 + t as usize];
            let s = s0 + t * es;
            gmem.fill(s, nact, byte)?;
            let ntx = contiguous_segments(s, nact, launch.tx_bytes);
            stats.mem_transactions += ntx;
            stats.warp_cycles += ntx;
            stats.dram_bytes += contiguous_segments(s, nact, SECTOR_BYTES) * SECTOR_BYTES as u64;
        }
        stats.mem_accesses += trip as u64;
    } else {
        // Tier B: per-lane stores with the shared cost model per
        // iteration. (The uniform constant load broadcasts — zero charge —
        // so only the store is billed, exactly like the interpreter.)
        for t in 0..trip {
            let byte = cbytes[src0 + t as usize] as u32;
            for &(_, a) in &addrs {
                gmem.write_byte(a, byte)?;
            }
            charge_access(
                MemSpace::Global,
                Width::Byte,
                &addrs,
                launch,
                &mut bufs.segs,
                stats,
            );
            if t + 1 < trip {
                for e in &mut addrs {
                    e.1 += es;
                }
            }
        }
    }
    addrs.clear();
    bufs.addrs = addrs;

    // Final register state for the active lanes, matching the interpreted
    // loop's last writes (wrapping where the interpreter wraps: `pos` and
    // `scaled` may legitimately wrap when the stride is 0).
    let trip_m1 = trip - 1;
    let last_src = src + (n - 1);
    let last_byte = cbytes[last_src as usize] as u32;
    let regs = &mut bufs.regs;
    for lane in iter_lanes(mask) {
        let l = lane as usize;
        let base_l = regs[wc.base as usize + l];
        let term_l = regs[wc.lane_term as usize + l];
        let p0 = regs[wc.pos as usize + l];
        let p_last = p0.wrapping_add(trip_m1);
        let scaled = p_last.wrapping_mul(es);
        let lane_base = base_l.wrapping_add(term_l);
        regs[wc.idx as usize + l] = n;
        regs[wc.cond as usize + l] = 0;
        regs[wc.one2 as usize + l] = 1;
        regs[wc.src_addr as usize + l] = last_src;
        regs[wc.ch as usize + l] = last_byte;
        regs[wc.scaled as usize + l] = scaled;
        regs[wc.lane_base as usize + l] = lane_base;
        regs[wc.addr as usize + l] = lane_base.wrapping_add(scaled);
        regs[wc.pos as usize + l] = p0.wrapping_add(trip);
    }
    Ok(true)
}

/// Finish one sub-group solo after a gang split: seed the reconvergence
/// stack with the split-point entries and resume [`plan_warp_loop`] with
/// the statistics accumulated during the fused phase.
#[allow(clippy::too_many_arguments)] // internal hot loop; grouping would cost indirection
fn run_sg_solo(
    plan: &ExecPlan,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
    base: u32,
    local_bytes: usize,
    entries: &[StackEntry],
    stats: WarpStats,
) -> Result<WarpStats, ExecError> {
    let mut stack = std::mem::take(&mut bufs.stack);
    stack.clear();
    stack.extend_from_slice(entries);
    let r = plan_warp_loop(
        plan,
        launch,
        gmem,
        pool,
        bufs,
        base,
        local_bytes,
        &mut stack,
        stats,
    );
    bufs.stack = stack;
    r
}

/// Execute `k` consecutive warps ("sub-groups") of a launch as one packed
/// gang, pushing each warp's `(warp_id, result)` onto `out`.
///
/// While every live sub-group's control flow agrees — same block, uniform
/// branch outcomes in the same direction — the gang walks the CFG once and
/// executes each sub-group's block body with the *same* code the solo path
/// uses ([`run_block_ops`] / [`try_wide_copy`]), against that sub-group's
/// own registers, statistics, and budget. Warps are independent (the
/// contract parallel warp workers already rely on), so running sub-group
/// bodies back-to-back per block is indistinguishable from running the
/// warps to completion one at a time: memory bytes, per-warp stats, and
/// fault identity are bit-identical to the unpacked engine.
///
/// On the first disagreement — a divergent branch in any sub-group, mixed
/// branch directions, or a wide copy that only some sub-groups can take —
/// the gang splits and every live sub-group finishes solo from its exact
/// split-point state. A sub-group fault records that warp's error and the
/// rest continue, preserving lowest-faulting-warp error selection.
#[allow(clippy::too_many_arguments)] // internal hot loop; grouping would cost indirection
fn run_plan_gang(
    plan: &ExecPlan,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    leases: &mut [WarpLease],
    first_warp: u32,
    k: usize,
    out: &mut Vec<(u32, Result<WarpStats, ExecError>)>,
) {
    debug_assert!((1..=4).contains(&k) && leases.len() >= k);
    let num_regs = plan.num_regs() as usize;
    let local_bytes = launch.local_bytes as usize;

    let mut masks = [0u32; 4];
    let mut bases = [0u32; 4];
    let mut stats: [WarpStats; 4] = Default::default();
    let mut done: [Option<Result<WarpStats, ExecError>>; 4] = [None, None, None, None];
    let mut alive = [false; 4];

    for sg in 0..k {
        let base = (first_warp + sg as u32) * WARP_SIZE;
        let count = WARP_SIZE.min(launch.lanes - base);
        let bufs = leases[sg].bufs();
        bufs.regs.clear();
        bufs.regs.resize(num_regs * LANES, 0);
        bufs.local.clear();
        bufs.local.resize(local_bytes * LANES, 0);
        bufs.shared.clear();
        bufs.shared.resize(launch.shared_bytes as usize, 0);
        masks[sg] = if count >= WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        bases[sg] = base;
        alive[sg] = true;
    }

    let mut bb = plan.entry();
    loop {
        if !alive[..k].iter().any(|&a| a) {
            break;
        }
        if bb == EXIT_BLOCK {
            // Mirror of the solo base entry reaching its reconvergence
            // point (`block == reconv == EXIT_BLOCK`): count the pop and
            // finish cleanly.
            for sg in 0..k {
                if alive[sg] {
                    stats[sg].divergence.reconvergences += 1;
                    alive[sg] = false;
                    done[sg] = Some(Ok(std::mem::take(&mut stats[sg])));
                }
            }
            break;
        }

        if let Some(wc) = plan.wide_copy(bb) {
            let mut applied = [false; 4];
            let (mut napplied, mut nlive) = (0usize, 0usize);
            for sg in 0..k {
                if !alive[sg] {
                    continue;
                }
                match try_wide_copy(
                    wc,
                    masks[sg],
                    launch,
                    gmem,
                    pool,
                    leases[sg].bufs(),
                    &mut stats[sg],
                ) {
                    Ok(a) => {
                        applied[sg] = a;
                        nlive += 1;
                        napplied += a as usize;
                    }
                    Err(e) => {
                        alive[sg] = false;
                        done[sg] = Some(Err(e));
                    }
                }
            }
            if nlive > 0 && napplied == nlive {
                bb = wc.exit;
                continue;
            }
            if napplied > 0 {
                // Mixed eligibility: the fast sub-groups already sit at the
                // loop exit, the rest must interpret the loop. Split.
                for sg in 0..k {
                    if !alive[sg] {
                        continue;
                    }
                    let start = if applied[sg] { wc.exit } else { bb };
                    let entries = [StackEntry {
                        block: start,
                        mask: masks[sg],
                        reconv: EXIT_BLOCK,
                    }];
                    let r = run_sg_solo(
                        plan,
                        launch,
                        gmem,
                        pool,
                        leases[sg].bufs(),
                        bases[sg],
                        local_bytes,
                        &entries,
                        std::mem::take(&mut stats[sg]),
                    );
                    alive[sg] = false;
                    done[sg] = Some(r);
                }
                break;
            }
            // No sub-group qualified: interpret the block fused, below.
        }

        let block = *plan.block(bb);
        for sg in 0..k {
            if !alive[sg] {
                continue;
            }
            if let Err(e) = run_block_ops(
                plan,
                &block,
                masks[sg],
                bases[sg],
                local_bytes,
                launch,
                gmem,
                pool,
                leases[sg].bufs(),
                &mut stats[sg],
            ) {
                alive[sg] = false;
                done[sg] = Some(Err(e));
            }
        }

        match block.term {
            DecodedTerm::Jmp(t) => {
                bb = t;
            }
            DecodedTerm::Halt => {
                // Fused masks are the full warp, so Halt retires every
                // live sub-group (solo: mask drains, stack pops, Ok).
                for sg in 0..k {
                    if alive[sg] {
                        alive[sg] = false;
                        done[sg] = Some(Ok(std::mem::take(&mut stats[sg])));
                    }
                }
                break;
            }
            DecodedTerm::Br {
                cond,
                then_bb,
                else_bb,
                reconv,
            } => {
                // Per-sub-group branch outcome from its own registers.
                let mut dirs = [(0u32, 0u32); 4];
                for sg in 0..k {
                    if !alive[sg] {
                        continue;
                    }
                    stats[sg].divergence.branches += 1;
                    let bufs = leases[sg].bufs();
                    let mut mask_t = 0u32;
                    let c = &bufs.regs[cond as usize..cond as usize + LANES];
                    for (lane, &v) in c.iter().enumerate() {
                        mask_t |= ((v != 0) as u32) << lane;
                    }
                    mask_t &= masks[sg];
                    dirs[sg] = (mask_t, masks[sg] & !mask_t);
                }

                // Stay fused only when every live sub-group is uniform and
                // they all take the same direction.
                let mut common: Option<u32> = None;
                let mut fused_ok = true;
                for sg in 0..k {
                    if !alive[sg] {
                        continue;
                    }
                    let (t, f) = dirs[sg];
                    let dir = if f == 0 {
                        Some(then_bb)
                    } else if t == 0 {
                        Some(else_bb)
                    } else {
                        None
                    };
                    match (dir, common) {
                        (None, _) => fused_ok = false,
                        (Some(d), None) => common = Some(d),
                        (Some(d), Some(c0)) if d == c0 => {}
                        _ => fused_ok = false,
                    }
                }
                if fused_ok {
                    match common {
                        Some(d) => bb = d,
                        None => break, // no live sub-groups remain
                    }
                    continue;
                }

                // Split: seed each live sub-group's stack exactly as the
                // solo Br handler would have left it, then finish solo.
                for sg in 0..k {
                    if !alive[sg] {
                        continue;
                    }
                    let (mask_t, mask_f) = dirs[sg];
                    let mut entries = [StackEntry {
                        block: 0,
                        mask: 0,
                        reconv: 0,
                    }; 3];
                    let ne;
                    if mask_f == 0 {
                        entries[0] = StackEntry {
                            block: then_bb,
                            mask: masks[sg],
                            reconv: EXIT_BLOCK,
                        };
                        ne = 1;
                    } else if mask_t == 0 {
                        entries[0] = StackEntry {
                            block: else_bb,
                            mask: masks[sg],
                            reconv: EXIT_BLOCK,
                        };
                        ne = 1;
                    } else {
                        stats[sg].divergence.divergent_branches += 1;
                        entries[0] = StackEntry {
                            block: reconv,
                            mask: masks[sg],
                            reconv: EXIT_BLOCK,
                        };
                        let mut d = 1;
                        if else_bb != reconv {
                            entries[d] = StackEntry {
                                block: else_bb,
                                mask: mask_f,
                                reconv,
                            };
                            d += 1;
                        }
                        if then_bb != reconv {
                            entries[d] = StackEntry {
                                block: then_bb,
                                mask: mask_t,
                                reconv,
                            };
                            d += 1;
                        }
                        ne = d;
                        stats[sg].divergence.max_stack_depth =
                            stats[sg].divergence.max_stack_depth.max(ne as u32);
                    }
                    let r = run_sg_solo(
                        plan,
                        launch,
                        gmem,
                        pool,
                        leases[sg].bufs(),
                        bases[sg],
                        local_bytes,
                        &entries[..ne],
                        std::mem::take(&mut stats[sg]),
                    );
                    alive[sg] = false;
                    done[sg] = Some(r);
                }
                break;
            }
        }
    }

    for (sg, slot) in done.iter_mut().enumerate().take(k) {
        let r = slot.take().expect("gang sub-group left unresolved");
        out.push((first_warp + sg as u32, r));
    }
}

/// Copy a register's 32 lanes into a stack array — one bounds check, and a
/// by-value source that lets the fast-path loops vectorize without dst/src
/// aliasing concerns.
#[inline(always)]
fn read_lanes(regs: &[u32], slot: RegSlot) -> [u32; LANES] {
    let mut v = [0u32; LANES];
    v.copy_from_slice(&regs[slot as usize..slot as usize + LANES]);
    v
}

/// Dense 32-lane ALU evaluation: dispatch on the operator once, then run a
/// straight lane loop (auto-vectorizable). Shared by the convergent fast
/// path ([`bin_full`]) and the divergent blend path ([`bin_masked`]).
#[inline(always)]
fn bin_eval(va: &[u32; LANES], vb: &[u32; LANES], op: BinOp) -> [u32; LANES] {
    let mut v = [0u32; LANES];
    macro_rules! lanes {
        ($f:expr) => {{
            let f = $f;
            for ((vl, &x), &y) in v.iter_mut().zip(va).zip(vb) {
                *vl = f(x, y);
            }
        }};
    }
    match op {
        BinOp::Add => lanes!(|x: u32, y: u32| x.wrapping_add(y)),
        BinOp::Sub => lanes!(|x: u32, y: u32| x.wrapping_sub(y)),
        BinOp::Mul => lanes!(|x: u32, y: u32| x.wrapping_mul(y)),
        BinOp::DivU => lanes!(|x: u32, y: u32| x.checked_div(y).unwrap_or(u32::MAX)),
        BinOp::RemU => lanes!(|x: u32, y: u32| if y == 0 { x } else { x % y }),
        BinOp::And => lanes!(|x: u32, y: u32| x & y),
        BinOp::Or => lanes!(|x: u32, y: u32| x | y),
        BinOp::Xor => lanes!(|x: u32, y: u32| x ^ y),
        BinOp::Shl => lanes!(|x: u32, y: u32| x.wrapping_shl(y)),
        BinOp::Shr => lanes!(|x: u32, y: u32| x.wrapping_shr(y)),
        BinOp::Min => lanes!(|x: u32, y: u32| x.min(y)),
        BinOp::Max => lanes!(|x: u32, y: u32| x.max(y)),
        BinOp::Eq => lanes!(|x: u32, y: u32| (x == y) as u32),
        BinOp::Ne => lanes!(|x: u32, y: u32| (x != y) as u32),
        BinOp::LtU => lanes!(|x: u32, y: u32| (x < y) as u32),
        BinOp::LeU => lanes!(|x: u32, y: u32| (x <= y) as u32),
        BinOp::GtU => lanes!(|x: u32, y: u32| (x > y) as u32),
        BinOp::GeU => lanes!(|x: u32, y: u32| (x >= y) as u32),
    }
    v
}

/// Convergent ALU fast path over contiguous SoA register slices.
fn bin_full(regs: &mut [u32], op: BinOp, dst: RegSlot, a: RegSlot, b: RegSlot) {
    let va = read_lanes(regs, a);
    let vb = read_lanes(regs, b);
    let v = bin_eval(&va, &vb, op);
    regs[dst as usize..dst as usize + LANES].copy_from_slice(&v);
}

/// Convergent unary-ALU fast path (see [`bin_full`]).
fn un_full(regs: &mut [u32], op: UnOp, dst: RegSlot, a: RegSlot) {
    let va = read_lanes(regs, a);
    let d = &mut regs[dst as usize..dst as usize + LANES];
    match op {
        UnOp::Not => {
            for (dl, &x) in d.iter_mut().zip(&va) {
                *dl = !x;
            }
        }
        UnOp::IsZero => {
            for (dl, &x) in d.iter_mut().zip(&va) {
                *dl = (x == 0) as u32;
            }
        }
    }
}

/// Divergent ALU path: compute all 32 lanes densely, then blend the result
/// into the destination under `mask` with a branchless select. ALU ops are
/// total functions, so evaluating inactive lanes on stale inputs is
/// harmless — the blend discards those results — and the dense loop plus
/// select vectorizes where a sparse `iter_lanes` walk cannot.
#[inline(always)]
fn blend_lanes(d: &mut [u32], v: &[u32; LANES], mask: u32) {
    for (lane, (dl, &x)) in d.iter_mut().zip(v).enumerate() {
        let keep = 0u32.wrapping_sub((mask >> lane) & 1);
        *dl = (x & keep) | (*dl & !keep);
    }
}

/// Masked binary ALU op via dense compute + blend (see [`blend_lanes`]).
fn bin_masked(regs: &mut [u32], op: BinOp, dst: RegSlot, a: RegSlot, b: RegSlot, mask: u32) {
    let va = read_lanes(regs, a);
    let vb = read_lanes(regs, b);
    let v = bin_eval(&va, &vb, op);
    blend_lanes(&mut regs[dst as usize..dst as usize + LANES], &v, mask);
}

/// Gather `(lane, address)` pairs for the active lanes of a memory op into
/// `bufs.addrs`, in ascending lane order (the order faults and atomic
/// services are observed in).
#[inline(always)]
fn gather_addrs(bufs: &mut WarpBuffers, mask: u32, addr: RegSlot, offset: u32) {
    bufs.addrs.clear();
    if mask == u32::MAX {
        let src = &bufs.regs[addr as usize..addr as usize + LANES];
        for (lane, &a) in src.iter().enumerate() {
            bufs.addrs.push((lane as u32, a.wrapping_add(offset)));
        }
    } else {
        for lane in iter_lanes(mask) {
            let a = bufs.regs[(addr + lane) as usize].wrapping_add(offset);
            bufs.addrs.push((lane, a));
        }
    }
}

/// The single address shared by every lane of a memory op, if uniform.
#[inline(always)]
fn uniform_addr(addrs: &[(u32, u32)]) -> Option<u32> {
    let (&(_, first), rest) = addrs.split_first()?;
    rest.iter().all(|&(_, a)| a == first).then_some(first)
}

/// The out-of-bounds error `read_buf`/`write_buf` would produce, for fast
/// paths that hoist the bounds check out of the lane loop.
fn oob(space: MemSpace, addr: u32, width: Width, size: usize) -> ExecError {
    MemError::OutOfBounds {
        space,
        addr,
        len: width.bytes(),
        size,
    }
    .into()
}

/// Per-lane loads with the space/width dispatch hoisted out of the lane
/// loop.
#[allow(clippy::too_many_arguments)] // internal hot loop; grouping would cost indirection
fn load_lanes(
    space: MemSpace,
    width: Width,
    dst: RegSlot,
    addrs: &[(u32, u32)],
    local_bytes: usize,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
) -> Result<(), ExecError> {
    match (space, width) {
        (MemSpace::Global, Width::Word) => {
            for &(lane, a) in addrs {
                bufs.regs[(dst + lane) as usize] = gmem.read_word(a)?;
            }
        }
        (MemSpace::Global, Width::Byte) => {
            for &(lane, a) in addrs {
                bufs.regs[(dst + lane) as usize] = gmem.read_byte(a)?;
            }
        }
        (MemSpace::Const, Width::Word) => {
            // Template reads broadcast one address to the whole warp.
            if let Some(a) = uniform_addr(addrs) {
                let v = pool.read_word(a)?;
                for &(lane, _) in addrs {
                    bufs.regs[(dst + lane) as usize] = v;
                }
            } else {
                for &(lane, a) in addrs {
                    bufs.regs[(dst + lane) as usize] = pool.read_word(a)?;
                }
            }
        }
        (MemSpace::Const, Width::Byte) => {
            if let Some(a) = uniform_addr(addrs) {
                let v = pool.read_byte(a)?;
                for &(lane, _) in addrs {
                    bufs.regs[(dst + lane) as usize] = v;
                }
            } else {
                for &(lane, a) in addrs {
                    bufs.regs[(dst + lane) as usize] = pool.read_byte(a)?;
                }
            }
        }
        (MemSpace::Local, _) => {
            // Scratch access is usually at one uniform offset across the
            // warp (every lane runs the same formatting loop): validate
            // the offset once, then walk the lane strides directly.
            if let Some(a) = uniform_addr(addrs) {
                let w = width.bytes() as usize;
                let start = a as usize;
                if start + w > local_bytes {
                    return Err(oob(MemSpace::Local, a, width, local_bytes));
                }
                for &(lane, _) in addrs {
                    let lo = lane as usize * local_bytes + start;
                    let v = match width {
                        Width::Byte => bufs.local[lo] as u32,
                        Width::Word => u32::from_le_bytes(
                            bufs.local[lo..lo + 4].try_into().expect("4-byte slice"),
                        ),
                    };
                    bufs.regs[(dst + lane) as usize] = v;
                }
            } else {
                for &(lane, a) in addrs {
                    let lo = lane as usize * local_bytes;
                    let v = read_buf(&bufs.local[lo..lo + local_bytes], MemSpace::Local, width, a)?;
                    bufs.regs[(dst + lane) as usize] = v;
                }
            }
        }
        (MemSpace::Shared, _) => {
            for &(lane, a) in addrs {
                let v = read_buf(&bufs.shared, MemSpace::Shared, width, a)?;
                bufs.regs[(dst + lane) as usize] = v;
            }
        }
    }
    Ok(())
}

/// Per-lane stores, dual of [`load_lanes`].
fn store_lanes(
    space: MemSpace,
    width: Width,
    src: RegSlot,
    addrs: &[(u32, u32)],
    local_bytes: usize,
    gmem: &SharedMem<'_>,
    bufs: &mut WarpBuffers,
) -> Result<(), ExecError> {
    match (space, width) {
        (MemSpace::Global, Width::Word) => {
            for &(lane, a) in addrs {
                gmem.write_word(a, bufs.regs[(src + lane) as usize])?;
            }
        }
        (MemSpace::Global, Width::Byte) => {
            for &(lane, a) in addrs {
                gmem.write_byte(a, bufs.regs[(src + lane) as usize])?;
            }
        }
        (MemSpace::Const, _) => {
            if !addrs.is_empty() {
                return Err(MemError::ReadOnly {
                    space: MemSpace::Const,
                }
                .into());
            }
        }
        (MemSpace::Local, _) => {
            // Uniform scratch offset: validate once, walk lane strides.
            if let Some(a) = uniform_addr(addrs) {
                let w = width.bytes() as usize;
                let start = a as usize;
                if start + w > local_bytes {
                    return Err(oob(MemSpace::Local, a, width, local_bytes));
                }
                for &(lane, _) in addrs {
                    let v = bufs.regs[(src + lane) as usize];
                    let lo = lane as usize * local_bytes + start;
                    match width {
                        Width::Byte => bufs.local[lo] = v as u8,
                        Width::Word => bufs.local[lo..lo + 4].copy_from_slice(&v.to_le_bytes()),
                    }
                }
            } else {
                for &(lane, a) in addrs {
                    let v = bufs.regs[(src + lane) as usize];
                    let lo = lane as usize * local_bytes;
                    write_buf(
                        &mut bufs.local[lo..lo + local_bytes],
                        MemSpace::Local,
                        width,
                        a,
                        v,
                    )?;
                }
            }
        }
        (MemSpace::Shared, _) => {
            for &(lane, a) in addrs {
                let v = bufs.regs[(src + lane) as usize];
                write_buf(&mut bufs.shared, MemSpace::Shared, width, a, v)?;
            }
        }
    }
    Ok(())
}

/// Footprint-sanitizer check for one warp-wide global access: every
/// gathered lane address must lie inside the launch's claimed static
/// footprint for this access kind. Non-global spaces and unsanitized
/// launches pass trivially. Runs before the memory op executes, so the
/// first escape aborts the launch without committing the offending access.
#[inline]
fn sanitize_addrs(
    launch: &LaunchConfig,
    space: MemSpace,
    kind: AccessKind,
    width: Width,
    addrs: &[(u32, u32)],
) -> Result<(), ExecError> {
    let Some(spec) = &launch.sanitize else {
        return Ok(());
    };
    if space != MemSpace::Global {
        return Ok(());
    }
    for &(_, a) in addrs {
        if !spec.allows(kind, a, width.bytes()) {
            return Err(ExecError::FootprintEscape {
                kind,
                addr: a,
                width: width.bytes(),
            });
        }
    }
    Ok(())
}

/// Execute one decoded op for the active lanes.
///
/// When the mask covers the whole warp, ALU/broadcast ops take the dense
/// fast paths; the masked `iter_lanes` fallback handles divergence and the
/// partial last warp of a launch.
#[allow(clippy::too_many_arguments)] // internal hot loop; grouping would cost indirection
fn exec_decoded(
    op: &DecodedOp,
    mask: u32,
    base: u32,
    local_bytes: usize,
    launch: &LaunchConfig,
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
    bufs: &mut WarpBuffers,
    stats: &mut WarpStats,
) -> Result<(), ExecError> {
    let full = mask == u32::MAX;
    match *op {
        DecodedOp::Imm { dst, value } => {
            if full {
                bufs.regs[dst as usize..dst as usize + LANES].fill(value);
            } else {
                for lane in iter_lanes(mask) {
                    bufs.regs[(dst + lane) as usize] = value;
                }
            }
        }
        DecodedOp::Mov { dst, src } => {
            let v = read_lanes(&bufs.regs, src);
            if full {
                bufs.regs[dst as usize..dst as usize + LANES].copy_from_slice(&v);
            } else {
                blend_lanes(&mut bufs.regs[dst as usize..dst as usize + LANES], &v, mask);
            }
        }
        DecodedOp::Bin { op, dst, a, b } => {
            if full {
                bin_full(&mut bufs.regs, op, dst, a, b);
            } else {
                bin_masked(&mut bufs.regs, op, dst, a, b, mask);
            }
        }
        DecodedOp::Un { op, dst, a } => {
            if full {
                un_full(&mut bufs.regs, op, dst, a);
            } else {
                let va = read_lanes(&bufs.regs, a);
                let mut v = [0u32; LANES];
                match op {
                    UnOp::Not => {
                        for (vl, &x) in v.iter_mut().zip(&va) {
                            *vl = !x;
                        }
                    }
                    UnOp::IsZero => {
                        for (vl, &x) in v.iter_mut().zip(&va) {
                            *vl = (x == 0) as u32;
                        }
                    }
                }
                blend_lanes(&mut bufs.regs[dst as usize..dst as usize + LANES], &v, mask);
            }
        }
        DecodedOp::LaneId { dst } => {
            if full {
                let d = &mut bufs.regs[dst as usize..dst as usize + LANES];
                for (lane, dl) in d.iter_mut().enumerate() {
                    *dl = lane as u32;
                }
            } else {
                for lane in iter_lanes(mask) {
                    bufs.regs[(dst + lane) as usize] = lane;
                }
            }
        }
        DecodedOp::GlobalId { dst } => {
            if full {
                let d = &mut bufs.regs[dst as usize..dst as usize + LANES];
                for (lane, dl) in d.iter_mut().enumerate() {
                    *dl = base + lane as u32;
                }
            } else {
                for lane in iter_lanes(mask) {
                    bufs.regs[(dst + lane) as usize] = base + lane;
                }
            }
        }
        DecodedOp::Param { dst, index } => {
            let v = launch
                .params
                .get(index as usize)
                .copied()
                .ok_or(ExecError::MissingParam { index })?;
            if full {
                bufs.regs[dst as usize..dst as usize + LANES].fill(v);
            } else {
                for lane in iter_lanes(mask) {
                    bufs.regs[(dst + lane) as usize] = v;
                }
            }
        }
        DecodedOp::Ld {
            width,
            space,
            dst,
            addr,
            offset,
        } => {
            gather_addrs(bufs, mask, addr, offset);
            let addrs = std::mem::take(&mut bufs.addrs);
            sanitize_addrs(launch, space, AccessKind::Read, width, &addrs)?;
            load_lanes(space, width, dst, &addrs, local_bytes, gmem, pool, bufs)?;
            charge_access(space, width, &addrs, launch, &mut bufs.segs, stats);
            bufs.addrs = addrs;
        }
        DecodedOp::St {
            width,
            space,
            src,
            addr,
            offset,
        } => {
            gather_addrs(bufs, mask, addr, offset);
            let addrs = std::mem::take(&mut bufs.addrs);
            sanitize_addrs(launch, space, AccessKind::Write, width, &addrs)?;
            store_lanes(space, width, src, &addrs, local_bytes, gmem, bufs)?;
            charge_access(space, width, &addrs, launch, &mut bufs.segs, stats);
            bufs.addrs = addrs;
        }
        DecodedOp::WarpRedMax { dst, src } => {
            // Butterfly reduction over active lanes: log2(32) = 5 steps
            // through shared memory.
            if full {
                let v = read_lanes(&bufs.regs, src);
                let mut m = 0u32;
                for &x in &v {
                    m = m.max(x);
                }
                bufs.regs[dst as usize..dst as usize + LANES].fill(m);
            } else {
                let mut m = 0u32;
                for lane in iter_lanes(mask) {
                    m = m.max(bufs.regs[(src + lane) as usize]);
                }
                for lane in iter_lanes(mask) {
                    bufs.regs[(dst + lane) as usize] = m;
                }
            }
            // 5 extra warp issues beyond the one already charged.
            stats.warp_instructions += 4;
            stats.lane_instructions += 4 * mask.count_ones() as u64;
            stats.warp_cycles += 4;
        }
        DecodedOp::AtomicAdd {
            dst,
            space,
            addr,
            offset,
            src,
        } => {
            gather_addrs(bufs, mask, addr, offset);
            let addrs = std::mem::take(&mut bufs.addrs);
            sanitize_addrs(launch, space, AccessKind::Atomic, Width::Word, &addrs)?;
            // Lanes are serviced in lane order; same-address lanes
            // serialize (each sees the previous lane's update). Global
            // adds go through the shared view's locked RMW so cross-warp
            // atomics never lose updates under concurrent warp workers.
            match space {
                MemSpace::Global => {
                    for &(lane, a) in &addrs {
                        let add = bufs.regs[(src + lane) as usize];
                        let old = gmem.atomic_add_word(a, add)?;
                        bufs.regs[(dst + lane) as usize] = old;
                    }
                }
                MemSpace::Shared => {
                    for &(lane, a) in &addrs {
                        let add = bufs.regs[(src + lane) as usize];
                        let old = read_buf(&bufs.shared, MemSpace::Shared, Width::Word, a)?;
                        write_buf(
                            &mut bufs.shared,
                            MemSpace::Shared,
                            Width::Word,
                            a,
                            old.wrapping_add(add),
                        )?;
                        bufs.regs[(dst + lane) as usize] = old;
                    }
                }
                MemSpace::Local => {
                    for &(lane, a) in &addrs {
                        let add = bufs.regs[(src + lane) as usize];
                        let lo = lane as usize * local_bytes;
                        let old = read_buf(
                            &bufs.local[lo..lo + local_bytes],
                            MemSpace::Local,
                            Width::Word,
                            a,
                        )?;
                        write_buf(
                            &mut bufs.local[lo..lo + local_bytes],
                            MemSpace::Local,
                            Width::Word,
                            a,
                            old.wrapping_add(add),
                        )?;
                        bufs.regs[(dst + lane) as usize] = old;
                    }
                }
                MemSpace::Const => {
                    // Matches the legacy lane order: the read may fault
                    // first; otherwise the write-back faults read-only.
                    if let Some(&(_, a)) = addrs.first() {
                        let _ = pool.read_word(a)?;
                        return Err(MemError::ReadOnly {
                            space: MemSpace::Const,
                        }
                        .into());
                    }
                }
            }
            // Cost: transactions as a word access plus serialization of
            // duplicate addresses.
            charge_access(space, Width::Word, &addrs, launch, &mut bufs.segs, stats);
            bufs.segs.clear();
            bufs.segs.extend(addrs.iter().map(|&(_, a)| a));
            bufs.segs.sort_unstable();
            let distinct = count_distinct(&bufs.segs);
            let dups = addrs.len() as u64 - distinct as u64;
            stats.atomic_serializations += dups;
            stats.warp_cycles += dups;
            bufs.addrs = addrs;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared cost model.
// ---------------------------------------------------------------------------

/// Charge memory-system cost for one warp access. `segs` is reusable
/// scratch; both engines route through this one implementation so the cost
/// model cannot drift between them.
fn charge_access(
    space: MemSpace,
    width: Width,
    addrs: &[(u32, u32)],
    launch: &LaunchConfig,
    segs: &mut Vec<u32>,
    stats: &mut WarpStats,
) {
    match space {
        MemSpace::Global => {
            stats.mem_accesses += 1;
            // Transactions at `tx_bytes` granularity drive issue
            // replays; DRAM traffic is counted in 32 B sectors so a
            // coalesced byte access is not charged a full line.
            let (ntx, nsec) = match fused_segment_counts(addrs, width, launch.tx_bytes) {
                Some(counts) => counts,
                None => (
                    distinct_segments_sorted(addrs, width, launch.tx_bytes, segs),
                    distinct_segments_sorted(addrs, width, SECTOR_BYTES, segs),
                ),
            };
            stats.mem_transactions += ntx;
            stats.warp_cycles += ntx;
            stats.dram_bytes += nsec * SECTOR_BYTES as u64;
        }
        MemSpace::Const => {
            // Broadcast is free; divergent addresses replay. The common
            // shapes — one template address across the warp, or ascending
            // per-lane offsets — count in a single pass.
            let d = if addrs.windows(2).all(|w| w[0].1 <= w[1].1) {
                let mut d = 0u64;
                let mut prev = None;
                for &(_, a) in addrs {
                    if prev != Some(a) {
                        d += 1;
                        prev = Some(a);
                    }
                }
                d
            } else {
                segs.clear();
                segs.extend(addrs.iter().map(|&(_, a)| a));
                segs.sort_unstable();
                count_distinct(segs) as u64
            };
            if d > 1 {
                stats.const_replays += d - 1;
                stats.warp_cycles += d - 1;
            }
        }
        MemSpace::Local => {
            // Interleaved per-lane storage: always coalesced; charge one
            // extra cycle like an L1 hit.
            stats.warp_cycles += 1;
        }
        MemSpace::Shared => {
            // Bank conflicts are not modelled.
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy engine (differential oracle / benchmark baseline).
// ---------------------------------------------------------------------------

/// Reusable per-warp execution state of the legacy engine (lane-major
/// register file, local/shared memory).
struct WarpState {
    /// Flat register file: `regs[lane * num_regs + r]`.
    regs: Vec<u32>,
    /// Flat per-lane local memory: `local[lane * local_bytes ..]`.
    local: Vec<u8>,
    /// Per-warp shared memory.
    shared: Vec<u8>,
    num_regs: usize,
    local_bytes: usize,
    base: u32,
    count: u32,
    /// Scratch for gathering lane addresses on memory ops.
    addrs: Vec<(u32, u32)>,
    /// Scratch for segment ids and sorted-address dedup.
    segs: Vec<u32>,
}

impl WarpState {
    fn new(program: &Program, cfg: &LaunchConfig) -> Self {
        let num_regs = program.num_regs() as usize;
        WarpState {
            regs: vec![0; num_regs * LANES],
            local: vec![0; cfg.local_bytes as usize * LANES],
            shared: vec![0; cfg.shared_bytes as usize],
            num_regs,
            local_bytes: cfg.local_bytes as usize,
            base: 0,
            count: 0,
            addrs: Vec::with_capacity(LANES),
            segs: Vec::with_capacity(LANES * 2),
        }
    }

    fn reset(&mut self, base: u32, count: u32) {
        self.base = base;
        self.count = count;
        self.regs.fill(0);
        self.local.fill(0);
        self.shared.fill(0);
    }

    #[inline]
    fn reg(&self, lane: u32, r: Reg) -> u32 {
        self.regs[lane as usize * self.num_regs + r.0 as usize]
    }

    #[inline]
    fn set_reg(&mut self, lane: u32, r: Reg, v: u32) {
        self.regs[lane as usize * self.num_regs + r.0 as usize] = v;
    }

    fn full_mask(&self) -> u32 {
        if self.count >= 32 {
            u32::MAX
        } else {
            (1u32 << self.count) - 1
        }
    }

    fn run(
        &mut self,
        program: &Program,
        cfg: &CfgInfo,
        launch: &LaunchConfig,
        gmem: &SharedMem<'_>,
        pool: &ConstPool,
    ) -> Result<WarpStats, ExecError> {
        let mut stats = WarpStats::default();
        let mut stack: Vec<StackEntry> = vec![StackEntry {
            block: program.entry(),
            mask: self.full_mask(),
            reconv: EXIT_BLOCK,
        }];
        let mut halted: u32 = 0;

        while let Some(top) = stack.last_mut() {
            top.mask &= !halted;
            if top.mask == 0 {
                stack.pop();
                continue;
            }
            if top.block == top.reconv {
                stats.divergence.reconvergences += 1;
                stack.pop();
                continue;
            }
            if top.block == EXIT_BLOCK {
                return Err(ExecError::Reconvergence(
                    "union entry surfaced at exit with live lanes",
                ));
            }
            let mask = top.mask;
            let cur = top.block;
            let block = program.block(cur);

            for op in &block.ops {
                stats.warp_instructions += 1;
                stats.lane_instructions += mask.count_ones() as u64;
                stats.warp_cycles += 1;
                if stats.warp_instructions > launch.max_instructions {
                    return Err(ExecError::Budget {
                        executed: stats.warp_instructions,
                    });
                }
                self.exec_op(op, mask, launch, gmem, pool, &mut stats)?;
            }

            // Terminator: also one issue.
            stats.warp_instructions += 1;
            stats.lane_instructions += mask.count_ones() as u64;
            stats.warp_cycles += 1;

            match block.term {
                Terminator::Jmp(t) => {
                    let top = stack.last_mut().expect("stack nonempty");
                    top.block = t;
                }
                Terminator::Halt => {
                    halted |= mask;
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    stats.divergence.branches += 1;
                    let mut mask_t = 0u32;
                    for lane in iter_lanes(mask) {
                        if self.reg(lane, cond) != 0 {
                            mask_t |= 1 << lane;
                        }
                    }
                    let mask_f = mask & !mask_t;
                    let top = stack.last_mut().expect("stack nonempty");
                    if mask_f == 0 {
                        top.block = then_bb;
                    } else if mask_t == 0 {
                        top.block = else_bb;
                    } else {
                        stats.divergence.divergent_branches += 1;
                        let r = cfg.ipdom(cur);
                        top.block = r;
                        if else_bb != r {
                            stack.push(StackEntry {
                                block: else_bb,
                                mask: mask_f,
                                reconv: r,
                            });
                        }
                        if then_bb != r {
                            stack.push(StackEntry {
                                block: then_bb,
                                mask: mask_t,
                                reconv: r,
                            });
                        }
                        stats.divergence.max_stack_depth =
                            stats.divergence.max_stack_depth.max(stack.len() as u32);
                    }
                }
            }
        }
        Ok(stats)
    }

    fn exec_op(
        &mut self,
        op: &Op,
        mask: u32,
        launch: &LaunchConfig,
        gmem: &SharedMem<'_>,
        pool: &ConstPool,
        stats: &mut WarpStats,
    ) -> Result<(), ExecError> {
        match *op {
            Op::Imm { dst, value } => {
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, value);
                }
            }
            Op::Mov { dst, src } => {
                for lane in iter_lanes(mask) {
                    let v = self.reg(lane, src);
                    self.set_reg(lane, dst, v);
                }
            }
            Op::Bin { op, dst, a, b } => {
                for lane in iter_lanes(mask) {
                    let v = op.eval(self.reg(lane, a), self.reg(lane, b));
                    self.set_reg(lane, dst, v);
                }
            }
            Op::Un { op, dst, a } => {
                for lane in iter_lanes(mask) {
                    let v = op.eval(self.reg(lane, a));
                    self.set_reg(lane, dst, v);
                }
            }
            Op::LaneId { dst } => {
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, lane);
                }
            }
            Op::GlobalId { dst } => {
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, self.base + lane);
                }
            }
            Op::Param { dst, index } => {
                let v = launch
                    .params
                    .get(index as usize)
                    .copied()
                    .ok_or(ExecError::MissingParam { index })?;
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, v);
                }
            }
            Op::Ld {
                width,
                space,
                dst,
                addr,
                offset,
            } => {
                self.addrs.clear();
                for lane in iter_lanes(mask) {
                    let a = self.reg(lane, addr).wrapping_add(offset);
                    self.addrs.push((lane, a));
                }
                let addrs = std::mem::take(&mut self.addrs);
                for &(lane, a) in &addrs {
                    let lo = lane as usize * self.local_bytes;
                    let v = warp_load(
                        space,
                        width,
                        a,
                        &self.local[lo..lo + self.local_bytes],
                        &self.shared,
                        gmem,
                        pool,
                    )?;
                    self.set_reg(lane, dst, v);
                }
                charge_access(space, width, &addrs, launch, &mut self.segs, stats);
                self.addrs = addrs;
            }
            Op::St {
                width,
                space,
                src,
                addr,
                offset,
            } => {
                self.addrs.clear();
                for lane in iter_lanes(mask) {
                    let a = self.reg(lane, addr).wrapping_add(offset);
                    self.addrs.push((lane, a));
                }
                let addrs = std::mem::take(&mut self.addrs);
                for &(lane, a) in &addrs {
                    let v = self.reg(lane, src);
                    let lo = lane as usize * self.local_bytes;
                    warp_store(
                        space,
                        width,
                        a,
                        v,
                        &mut self.local[lo..lo + self.local_bytes],
                        &mut self.shared,
                        gmem,
                    )?;
                }
                charge_access(space, width, &addrs, launch, &mut self.segs, stats);
                self.addrs = addrs;
            }
            Op::WarpRedMax { dst, src } => {
                // Butterfly reduction over active lanes: log2(32) = 5 steps
                // through shared memory.
                let mut m = 0u32;
                for lane in iter_lanes(mask) {
                    m = m.max(self.reg(lane, src));
                }
                for lane in iter_lanes(mask) {
                    self.set_reg(lane, dst, m);
                }
                // 5 extra warp issues beyond the one already charged.
                stats.warp_instructions += 4;
                stats.lane_instructions += 4 * mask.count_ones() as u64;
                stats.warp_cycles += 4;
            }
            Op::AtomicAdd {
                dst,
                space,
                addr,
                offset,
                src,
            } => {
                self.addrs.clear();
                for lane in iter_lanes(mask) {
                    let a = self.reg(lane, addr).wrapping_add(offset);
                    self.addrs.push((lane, a));
                }
                let addrs = std::mem::take(&mut self.addrs);
                // Lanes are serviced in lane order; same-address lanes
                // serialize (each sees the previous lane's update). Global
                // adds go through the shared view's locked RMW so
                // cross-warp atomics never lose updates under concurrent
                // warp workers.
                for &(lane, a) in &addrs {
                    let add = self.reg(lane, src);
                    let old = if space == MemSpace::Global {
                        gmem.atomic_add_word(a, add)?
                    } else {
                        let lo = lane as usize * self.local_bytes;
                        let old = warp_load(
                            space,
                            Width::Word,
                            a,
                            &self.local[lo..lo + self.local_bytes],
                            &self.shared,
                            gmem,
                            pool,
                        )?;
                        warp_store(
                            space,
                            Width::Word,
                            a,
                            old.wrapping_add(add),
                            &mut self.local[lo..lo + self.local_bytes],
                            &mut self.shared,
                            gmem,
                        )?;
                        old
                    };
                    self.set_reg(lane, dst, old);
                }
                // Cost: transactions as a word access plus serialization of
                // duplicate addresses.
                charge_access(space, Width::Word, &addrs, launch, &mut self.segs, stats);
                self.segs.clear();
                self.segs.extend(addrs.iter().map(|&(_, a)| a));
                self.segs.sort_unstable();
                let distinct = count_distinct(&self.segs);
                let dups = addrs.len() as u64 - distinct as u64;
                stats.atomic_serializations += dups;
                stats.warp_cycles += dups;
                self.addrs = addrs;
            }
        }
        Ok(())
    }
}

/// Lane load used by the legacy engine: identical to the scalar path but
/// global memory goes through the concurrent [`SharedMem`] view.
fn warp_load(
    space: MemSpace,
    width: Width,
    addr: u32,
    local: &[u8],
    shared: &[u8],
    gmem: &SharedMem<'_>,
    pool: &ConstPool,
) -> Result<u32, ExecError> {
    let out = match space {
        MemSpace::Global => match width {
            Width::Byte => gmem.read_byte(addr)?,
            Width::Word => gmem.read_word(addr)?,
        },
        MemSpace::Const => match width {
            Width::Byte => pool.read_byte(addr)?,
            Width::Word => pool.read_word(addr)?,
        },
        MemSpace::Local => read_buf(local, MemSpace::Local, width, addr)?,
        MemSpace::Shared => read_buf(shared, MemSpace::Shared, width, addr)?,
    };
    Ok(out)
}

/// Lane store counterpart of [`warp_load`].
fn warp_store(
    space: MemSpace,
    width: Width,
    addr: u32,
    value: u32,
    local: &mut [u8],
    shared: &mut [u8],
    gmem: &SharedMem<'_>,
) -> Result<(), ExecError> {
    match space {
        MemSpace::Global => match width {
            Width::Byte => gmem.write_byte(addr, value)?,
            Width::Word => gmem.write_word(addr, value)?,
        },
        MemSpace::Const => {
            return Err(MemError::ReadOnly {
                space: MemSpace::Const,
            }
            .into())
        }
        MemSpace::Local => write_buf(local, MemSpace::Local, width, addr, value)?,
        MemSpace::Shared => write_buf(shared, MemSpace::Shared, width, addr, value)?,
    }
    Ok(())
}

/// Single-pass transaction and DRAM-sector counts for an access whose lane
/// addresses are ascending — the coalesced common case. Returns `None` for
/// descending/scattered addresses (or a non-power-of-two transaction
/// size), which take the sort-based fallback.
///
/// Correctness of transition counting under ascending addresses: segment
/// ids grow with the addresses and each access covers a contiguous id
/// range, so an access touches a *new* segment only when it reaches past
/// the highest id seen so far — any id at or below the running maximum
/// that a later lane lands on was already counted.
#[inline]
fn fused_segment_counts(addrs: &[(u32, u32)], width: Width, ts: u32) -> Option<(u64, u64)> {
    if !ts.is_power_of_two() {
        return None;
    }
    let tx_sh = ts.trailing_zeros();
    const SEC_SH: u32 = SECTOR_BYTES.trailing_zeros();
    let w = width.bytes() - 1;
    let Some((&(_, first), rest)) = addrs.split_first() else {
        return Some((0, 0));
    };
    let end = first.wrapping_add(w);
    let mut prev = first;
    let mut max_tx = end >> tx_sh;
    let mut ntx = 1 + ((first >> tx_sh) != max_tx) as u64;
    let mut max_sec = end >> SEC_SH;
    let mut nsec = 1 + ((first >> SEC_SH) != max_sec) as u64;
    for &(_, a) in rest {
        if a < prev {
            return None;
        }
        prev = a;
        let e = a.wrapping_add(w);
        let f = a >> tx_sh;
        let l = e >> tx_sh;
        if f > max_tx {
            ntx += 1 + (l != f) as u64;
            max_tx = l;
        } else if l > max_tx {
            ntx += 1;
            max_tx = l;
        }
        let f = a >> SEC_SH;
        let l = e >> SEC_SH;
        if f > max_sec {
            nsec += 1 + (l != f) as u64;
            max_sec = l;
        } else if l > max_sec {
            nsec += 1;
            max_sec = l;
        }
    }
    Some((ntx, nsec))
}

/// Distinct `gran`-byte segment ids touched by `addrs` (each access spans
/// `width.bytes()`): materialize ids in the `segs` scratch, sort, dedup.
fn distinct_segments_sorted(
    addrs: &[(u32, u32)],
    width: Width,
    gran: u32,
    segs: &mut Vec<u32>,
) -> u64 {
    // Power-of-two granularity (every real config) divides by shifting.
    if gran.is_power_of_two() {
        let sh = gran.trailing_zeros();
        distinct_sorted_by(addrs, width, segs, move |a| a >> sh)
    } else {
        distinct_sorted_by(addrs, width, segs, move |a| a / gran)
    }
}

/// [`distinct_segments_sorted`] with the address→segment map monomorphized.
fn distinct_sorted_by(
    addrs: &[(u32, u32)],
    width: Width,
    segs: &mut Vec<u32>,
    seg_of: impl Fn(u32) -> u32,
) -> u64 {
    segs.clear();
    for &(_, a) in addrs {
        let first = seg_of(a);
        let last = seg_of(a.wrapping_add(width.bytes() - 1));
        segs.push(first);
        if last != first {
            segs.push(last);
        }
    }
    segs.sort_unstable();
    segs.dedup();
    segs.len() as u64
}

fn count_distinct(sorted: &[u32]) -> usize {
    let mut n = 0;
    let mut last = None;
    for &a in sorted {
        if last != Some(a) {
            n += 1;
            last = Some(a);
        }
    }
    n
}

/// Iterate over set lane bits.
fn iter_lanes(mask: u32) -> impl Iterator<Item = u32> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let lane = m.trailing_zeros();
            m &= m - 1;
            Some(lane)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, ProgramBuilder};

    fn launch(p: &Program, lanes: u32, params: Vec<u32>, mem: &mut DeviceMemory) -> KernelStats {
        let pool = ConstPool::new();
        execute_simt(p, &LaunchConfig::new(lanes, params), mem, &pool).unwrap()
    }

    /// Lane i stores its id at byte i (coalesced) — one transaction per
    /// warp access.
    #[test]
    fn coalesced_byte_store_is_one_transaction() {
        let mut b = ProgramBuilder::new("c");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.mem_accesses, 1);
        assert_eq!(stats.mem_transactions, 1);
        assert_eq!(mem.read_byte(31).unwrap(), 31);
    }

    /// Lane i stores at stride 256 (row-major layout) — every lane hits a
    /// different 128 B segment: 32 transactions.
    #[test]
    fn strided_store_explodes_transactions() {
        let mut b = ProgramBuilder::new("s");
        let g = b.global_id();
        let stride = b.imm(256);
        let a = b.bin(BinOp::Mul, g, stride);
        b.st_global_byte(a, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(256 * 32);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.mem_accesses, 1);
        assert_eq!(stats.mem_transactions, 32);
    }

    /// Divergent if/else: both sides execute, SIMD efficiency drops, and
    /// lanes reconverge to produce correct results.
    #[test]
    fn divergent_branch_reconverges() {
        let mut b = ProgramBuilder::new("d");
        let g = b.global_id();
        let one = b.imm(1);
        let odd = b.bin(BinOp::And, g, one);
        let out = b.reg();
        b.if_then_else(
            odd,
            |b| {
                b.imm_into(out, 100);
            },
            |b| {
                b.imm_into(out, 200);
            },
        );
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, out);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.divergence.divergent_branches, 1);
        // Each divergent side pops at the join block: two reconvergence
        // events per divergent branch.
        assert_eq!(stats.divergence.reconvergences, 2);
        assert_eq!(mem.read_word(0).unwrap(), 200);
        assert_eq!(mem.read_word(4).unwrap(), 100);
        assert!(stats.simd_efficiency(32) < 1.0);
    }

    /// Data-dependent loop trip counts: all lanes finish, result correct,
    /// divergence recorded on loop exit.
    #[test]
    fn variable_trip_count_loop() {
        let mut b = ProgramBuilder::new("v");
        let g = b.global_id();
        let acc = b.imm(0);
        let one = b.imm(1);
        // for i in 0..lane_id: acc += 1
        b.for_loop(g, |b, _i| {
            b.bin_into(acc, BinOp::Add, acc, one);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        for i in 0..32 {
            assert_eq!(mem.read_word(i * 4).unwrap(), i, "lane {i}");
        }
        assert!(stats.divergence.divergent_branches > 0);
    }

    /// The scalar and SIMT executors must produce identical memory.
    #[test]
    fn scalar_simt_equivalence() {
        use crate::exec::scalar::{execute_scalar, ScalarRun};
        let mut b = ProgramBuilder::new("eq");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();

        let pool = ConstPool::new();
        let lanes = 48u32;
        let mut mem_simt = DeviceMemory::new(lanes as usize * 4);
        execute_simt(&p, &LaunchConfig::new(lanes, []), &mut mem_simt, &pool).unwrap();

        let mut mem_scalar = DeviceMemory::new(lanes as usize * 4);
        let cfg = LaunchConfig::new(1, []);
        for id in 0..lanes {
            execute_scalar(&ScalarRun::new(&p, id), &cfg, &mut mem_scalar, &pool, None).unwrap();
        }
        assert_eq!(mem_simt.as_bytes(), mem_scalar.as_bytes());
    }

    #[test]
    fn warp_red_max_broadcasts() {
        let mut b = ProgramBuilder::new("r");
        let g = b.global_id();
        let m = b.warp_red_max(g);
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, m);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64 * 4);
        launch(&p, 64, vec![], &mut mem);
        assert_eq!(mem.read_word(0).unwrap(), 31, "warp 0 max is lane 31");
        assert_eq!(mem.read_word(32 * 4).unwrap(), 63, "warp 1 max is lane 63");
    }

    #[test]
    fn atomic_add_serializes_same_address() {
        let mut b = ProgramBuilder::new("a");
        let zero = b.imm(0);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, zero, 0, one);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(mem.read_word(0).unwrap(), 32);
        assert_eq!(stats.atomic_serializations, 31);
    }

    #[test]
    fn atomic_add_distinct_addresses_parallel() {
        let mut b = ProgramBuilder::new("a2");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, addr, 0, one);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        assert_eq!(stats.atomic_serializations, 0);
        assert_eq!(mem.read_word(4).unwrap(), 1);
    }

    #[test]
    fn const_broadcast_free_divergent_replays() {
        let mut pool = ConstPool::new();
        let (off, _) = pool.intern(&[1, 2, 3, 4, 5, 6, 7, 8]);
        // Divergent const read: each lane reads const[off + lane % 4].
        let mut b = ProgramBuilder::new("cst");
        let g = b.global_id();
        let fourm = b.imm(4);
        let idx = b.bin(BinOp::RemU, g, fourm);
        let o = b.imm(off);
        let a = b.bin(BinOp::Add, o, idx);
        b.ld_const_byte(a, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4);
        let stats = execute_simt(&p, &LaunchConfig::new(32, []), &mut mem, &pool).unwrap();
        assert_eq!(stats.const_replays, 3, "4 distinct addresses = 3 replays");
    }

    #[test]
    fn partial_last_warp() {
        let mut b = ProgramBuilder::new("p");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(64);
        let stats = launch(&p, 40, vec![], &mut mem);
        assert_eq!(stats.warps, 2);
        assert_eq!(mem.read_byte(39).unwrap(), 39);
        assert_eq!(mem.read_byte(40).unwrap(), 0, "lane 40 never ran");
    }

    #[test]
    fn word_access_straddling_segments_counts_two() {
        let mut b = ProgramBuilder::new("w");
        let a = b.imm(126); // crosses the 128-byte boundary
        let v = b.imm(0xAABBCCDD);
        b.st_global_word(a, 0, v);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(256);
        let stats = launch(&p, 1, vec![], &mut mem);
        assert_eq!(stats.mem_transactions, 2);
    }

    /// A divergence-heavy kernel with atomics must produce bit-identical
    /// memory and stats at every worker count.
    #[test]
    fn parallel_workers_bit_identical() {
        let mut b = ProgramBuilder::new("par");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, addr, 0, one);
        b.halt();
        let p = b.build().unwrap();

        let lanes = 300u32; // 10 warps, partial last warp
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(lanes, []);

        let mut mem1 = DeviceMemory::new(lanes as usize * 4);
        let base = execute_simt_workers(&p, &cfg, &mut mem1, &pool, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let mut memn = DeviceMemory::new(lanes as usize * 4);
            let stats = execute_simt_workers(&p, &cfg, &mut memn, &pool, workers).unwrap();
            assert_eq!(stats, base, "stats diverge at {workers} workers");
            assert_eq!(
                memn.as_bytes(),
                mem1.as_bytes(),
                "memory diverges at {workers} workers"
            );
        }
    }

    /// The legacy and pre-decoded engines must agree bit-for-bit — memory
    /// and every stats counter — on a kernel mixing divergence, loops,
    /// atomics, reductions, and a partial last warp.
    #[test]
    fn legacy_and_plan_engines_bit_identical() {
        let mut b = ProgramBuilder::new("engines_eq");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let m = b.warp_red_max(acc);
        let merged = b.bin(BinOp::Xor, acc, m);
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, merged);
        let one = b.imm(1);
        b.atomic_add(MemSpace::Global, addr, 0, one);
        b.halt();
        let p = b.build().unwrap();

        let lanes = 300u32; // partial last warp exercises the masked paths
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(lanes, []);

        for workers in [1usize, 2, 4] {
            let mut mem_legacy = DeviceMemory::new(lanes as usize * 4);
            let legacy =
                execute_simt_legacy_workers(&p, &cfg, &mut mem_legacy, &pool, workers).unwrap();
            let mut mem_plan = DeviceMemory::new(lanes as usize * 4);
            let plan = execute_simt_workers(&p, &cfg, &mut mem_plan, &pool, workers).unwrap();
            assert_eq!(plan, legacy, "stats diverge at {workers} workers");
            assert_eq!(
                mem_plan.as_bytes(),
                mem_legacy.as_bytes(),
                "memory diverges at {workers} workers"
            );
        }
    }

    /// Both engines report the same error for the same faulting kernel.
    #[test]
    fn legacy_and_plan_engines_agree_on_faults() {
        let mut b = ProgramBuilder::new("engines_oob");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, g);
        b.halt();
        let p = b.build().unwrap();

        let cfg = LaunchConfig::new(256, []);
        let pool = ConstPool::new();
        let mut mem_legacy = DeviceMemory::new(32 * 4);
        let legacy = execute_simt_legacy_workers(&p, &cfg, &mut mem_legacy, &pool, 2).unwrap_err();
        let mut mem_plan = DeviceMemory::new(32 * 4);
        let plan = execute_simt_workers(&p, &cfg, &mut mem_plan, &pool, 2).unwrap_err();
        assert_eq!(plan, legacy);
    }

    /// Faults report the lowest-numbered faulting warp regardless of
    /// worker count.
    #[test]
    fn parallel_error_is_lowest_faulting_warp() {
        let mut b = ProgramBuilder::new("oob");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, g);
        b.halt();
        let p = b.build().unwrap();

        // Room for warp 0 only: every later warp faults, lane 32 first.
        let cfg = LaunchConfig::new(256, []);
        let pool = ConstPool::new();
        let mut mem1 = DeviceMemory::new(32 * 4);
        let serial = execute_simt_workers(&p, &cfg, &mut mem1, &pool, 1).unwrap_err();
        for workers in [2usize, 4] {
            let mut memn = DeviceMemory::new(32 * 4);
            let err = execute_simt_workers(&p, &cfg, &mut memn, &pool, workers).unwrap_err();
            assert_eq!(err, serial, "error differs at {workers} workers");
        }
    }

    /// Tracing a launch must not change stats or memory, and must record
    /// one wall-time span plus one `warp_cycles` sample per warp.
    #[test]
    fn traced_execution_bit_identical_and_records_warps() {
        use rhythm_obs::TraceRecorder;
        let mut b = ProgramBuilder::new("traced");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();

        let lanes = 300u32; // 10 warps, partial last warp
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(lanes, []);
        let mut mem_base = DeviceMemory::new(lanes as usize * 4);
        let base = execute_simt_workers(&p, &cfg, &mut mem_base, &pool, 2).unwrap();

        for workers in [1usize, 3] {
            let rec = TraceRecorder::new();
            let mut mem = DeviceMemory::new(lanes as usize * 4);
            let traced =
                execute_simt_workers_traced(&p, &cfg, &mut mem, &pool, workers, &rec).unwrap();
            assert_eq!(traced, base, "tracing changed stats at {workers} workers");
            assert_eq!(
                mem.as_bytes(),
                mem_base.as_bytes(),
                "tracing changed memory"
            );
            let spans = rec
                .events()
                .iter()
                .filter(|e| e.track.starts_with("simt:w") && e.name.contains("traced warp"))
                .count();
            assert_eq!(spans, 10, "one span per warp at {workers} workers");
            let h = rec.histogram("warp_cycles").expect("warp cycle histogram");
            assert_eq!(h.count(), 10);
            let ns = rec.histogram("warp_exec_ns").expect("warp time histogram");
            assert_eq!(ns.count(), 10);
        }
    }

    /// `workers: 0` resolves to the machine's parallelism and still runs.
    #[test]
    fn auto_worker_count_executes() {
        let mut b = ProgramBuilder::new("auto");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(128);
        let pool = ConstPool::new();
        let stats =
            execute_simt_workers(&p, &LaunchConfig::new(128, []), &mut mem, &pool, 0).unwrap();
        assert_eq!(stats.warps, 4);
        assert_eq!(mem.read_byte(127).unwrap(), 127);
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    /// Nested divergence exercises stack depth > 2.
    #[test]
    fn nested_divergence() {
        let mut b = ProgramBuilder::new("n");
        let g = b.global_id();
        let one = b.imm(1);
        let two = b.imm(2);
        let bit0 = b.bin(BinOp::And, g, one);
        let bit1v = b.bin(BinOp::And, g, two);
        let out = b.reg();
        b.if_then_else(
            bit0,
            |b| {
                b.if_then_else(bit1v, |b| b.imm_into(out, 3), |b| b.imm_into(out, 1));
            },
            |b| {
                b.if_then_else(bit1v, |b| b.imm_into(out, 2), |b| b.imm_into(out, 0));
            },
        );
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, out);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(32 * 4);
        let stats = launch(&p, 32, vec![], &mut mem);
        for i in 0..32u32 {
            assert_eq!(mem.read_word(i * 4).unwrap(), i % 4, "lane {i}");
        }
        assert!(stats.divergence.max_stack_depth >= 3);
    }

    /// Arena leases go back to the pool: checkouts stay balanced and the
    /// snapshot invariant `acquired == reused + allocated` holds.
    #[test]
    fn warp_arena_counters_balance() {
        let mut b = ProgramBuilder::new("arena_smoke");
        let g = b.global_id();
        b.st_global_byte(g, 0, g);
        b.halt();
        let p = b.build().unwrap();
        let pool = ConstPool::new();
        let before = warp_arena_stats();
        let mut mem = DeviceMemory::new(64);
        execute_simt(&p, &LaunchConfig::new(64, []), &mut mem, &pool).unwrap();
        let delta = warp_arena_stats().since(&before);
        assert!(delta.acquired >= 1, "serial launch leases one context");
        assert_eq!(delta.acquired, delta.reused + delta.allocated);
    }

    /// A response-template kernel: copy an interned string to every lane's
    /// output slot through a layout-parameterized cursor.
    fn const_copy_kernel(pool: &mut ConstPool, lane_stride: u32, elem_stride: u32) -> Program {
        let (off, len) = pool.intern_str("HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n");
        let mut b = ProgramBuilder::new("wide_copy");
        let base = b.imm(0);
        let lane = b.lane_id();
        let ls = b.imm(lane_stride);
        let es = b.imm(elem_stride);
        let cur = b.cursor(base, lane, ls, es);
        b.write_const_str(&cur, off, len);
        b.halt();
        b.build().unwrap()
    }

    /// The wide-copy fast path must be bit-identical to the legacy engine
    /// on both cohort layouts: transposed (dense lane run per iteration —
    /// the block-fill tier) and row-major (scattered starts — the per-lane
    /// tier). Memory bytes and every stats counter must match.
    #[test]
    fn wide_copy_bit_identical_on_both_layouts() {
        for (lane_stride, elem_stride, label) in [(1u32, 64u32, "transposed"), (64, 1, "row-major")]
        {
            let mut pool = ConstPool::new();
            let p = const_copy_kernel(&mut pool, lane_stride, elem_stride);
            let lanes = 90u32; // three warps, partial last warp
            let cfg = LaunchConfig::new(lanes, []);
            let size = 64 * lanes as usize;

            let mut mem_legacy = DeviceMemory::new(size);
            let legacy = execute_simt_legacy_workers(&p, &cfg, &mut mem_legacy, &pool, 1).unwrap();
            let mut mem_plan = DeviceMemory::new(size);
            let plan = execute_simt_workers(&p, &cfg, &mut mem_plan, &pool, 1).unwrap();
            assert_eq!(plan, legacy, "stats diverge on {label} layout");
            assert_eq!(
                mem_plan.as_bytes(),
                mem_legacy.as_bytes(),
                "memory diverges on {label} layout"
            );
            // The fast path must actually engage: the plan path recognizes
            // the loop statically.
            let exec_plan = ExecPlan::build(&p);
            assert!(exec_plan.num_wide_copies() > 0, "copy loop not detected");
        }
    }

    /// When the instruction budget trips inside the copy loop, the fast
    /// path must decline and interpretation must reproduce the legacy
    /// fault — same error, same partially-written memory.
    #[test]
    fn wide_copy_budget_fault_identical() {
        let mut pool = ConstPool::new();
        let p = const_copy_kernel(&mut pool, 1, 64);
        let mut cfg = LaunchConfig::new(64, []);
        cfg.max_instructions = 150; // trips mid-copy
        let size = 64 * 64;

        let mut mem_legacy = DeviceMemory::new(size);
        let legacy = execute_simt_legacy_workers(&p, &cfg, &mut mem_legacy, &pool, 1).unwrap_err();
        let mut mem_plan = DeviceMemory::new(size);
        let plan = execute_simt_workers(&p, &cfg, &mut mem_plan, &pool, 1).unwrap_err();
        assert_eq!(plan, legacy);
        assert!(matches!(plan, ExecError::Budget { .. }));
        assert_eq!(mem_plan.as_bytes(), mem_legacy.as_bytes());
    }

    /// Sub-warp packing must be invisible: for a kernel mixing a uniform
    /// (fused) loop, a divergent (split) loop, reductions, and a partial
    /// last warp, every pack width times every worker count produces the
    /// unpacked result bit-for-bit, and tracing still records one span per
    /// warp.
    #[test]
    fn gang_packing_bit_identical() {
        use rhythm_obs::TraceRecorder;
        let mut b = ProgramBuilder::new("gang_eq");
        let g = b.global_id();
        let trips = b.param(0);
        let acc = b.imm(0);
        // Uniform loop: every sub-group branches the same way → stays fused.
        b.for_loop(trips, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        // Data-dependent loop: sub-groups diverge → gang splits.
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let m = b.warp_red_max(acc);
        let merged = b.bin(BinOp::Xor, acc, m);
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, merged);
        b.halt();
        let p = b.build().unwrap();

        let lanes = 300u32; // 10 warps: gangs of 4,4,2 with a partial warp
        let pool = ConstPool::new();
        let base_cfg = LaunchConfig::new(lanes, [5]);
        let mut mem_base = DeviceMemory::new(lanes as usize * 4);
        let base = execute_simt_workers(&p, &base_cfg, &mut mem_base, &pool, 1).unwrap();

        for pack in [2u32, 4] {
            for workers in [1usize, 2, 4] {
                let mut cfg = base_cfg.clone();
                cfg.pack = pack;
                let rec = TraceRecorder::new();
                let mut mem = DeviceMemory::new(lanes as usize * 4);
                let packed =
                    execute_simt_workers_traced(&p, &cfg, &mut mem, &pool, workers, &rec).unwrap();
                assert_eq!(
                    packed, base,
                    "stats diverge at pack={pack} workers={workers}"
                );
                assert_eq!(
                    mem.as_bytes(),
                    mem_base.as_bytes(),
                    "memory diverges at pack={pack} workers={workers}"
                );
                let spans = rec
                    .events()
                    .iter()
                    .filter(|e| e.track.starts_with("simt:w") && e.name.contains("gang_eq warp"))
                    .count();
                assert_eq!(spans, 10, "one span per warp at pack={pack}");
            }
        }
    }

    /// Packing composes with the wide-copy fast path: a packed cohort of
    /// template copies stays fused through the copy and matches unpacked
    /// output exactly.
    #[test]
    fn gang_packing_with_wide_copy_bit_identical() {
        for (lane_stride, elem_stride) in [(1u32, 64u32), (64, 1)] {
            let mut pool = ConstPool::new();
            let p = const_copy_kernel(&mut pool, lane_stride, elem_stride);
            let lanes = 200u32;
            let base_cfg = LaunchConfig::new(lanes, []);
            let size = 64 * lanes as usize;
            let mut mem_base = DeviceMemory::new(size);
            let base = execute_simt_workers(&p, &base_cfg, &mut mem_base, &pool, 1).unwrap();
            for pack in [2u32, 4] {
                let mut cfg = base_cfg.clone();
                cfg.pack = pack;
                let mut mem = DeviceMemory::new(size);
                let packed = execute_simt_workers(&p, &cfg, &mut mem, &pool, 2).unwrap();
                assert_eq!(packed, base, "stats diverge at pack={pack}");
                assert_eq!(mem.as_bytes(), mem_base.as_bytes());
            }
        }
    }

    /// Kernels with atomics clamp to pack 1 via the plan's static profile
    /// (`pack_max`): requesting pack 4 must still give the unpacked result,
    /// because cross-warp atomic ordering is the one thing packing could
    /// legally reorder.
    #[test]
    fn gang_packing_respects_atomic_profile() {
        let mut b = ProgramBuilder::new("gang_atomic");
        let g = b.global_id();
        let one = b.imm(1);
        let zero = b.imm(0);
        let old = b.atomic_add(MemSpace::Global, zero, 0, one);
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 4, old);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(ExecPlan::build(&p).pack_max(), 1);

        let lanes = 128u32;
        let pool = ConstPool::new();
        let size = 8 + lanes as usize * 4;
        let base_cfg = LaunchConfig::new(lanes, []);
        let mut mem_base = DeviceMemory::new(size);
        let base = execute_simt_workers(&p, &base_cfg, &mut mem_base, &pool, 1).unwrap();
        let mut cfg = base_cfg;
        cfg.pack = 4;
        let mut mem = DeviceMemory::new(size);
        let packed = execute_simt_workers(&p, &cfg, &mut mem, &pool, 1).unwrap();
        assert_eq!(packed, base);
        assert_eq!(mem.as_bytes(), mem_base.as_bytes());
    }

    /// Faults under packing: the gang keeps running the remaining
    /// sub-groups after one faults, so the launch still reports the
    /// lowest-numbered faulting warp at every pack and worker count.
    #[test]
    fn gang_fault_identity() {
        let mut b = ProgramBuilder::new("gang_oob");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, g);
        b.halt();
        let p = b.build().unwrap();

        // Room for warp 0 only: warps 1.. fault, warp 1 must win.
        let base_cfg = LaunchConfig::new(256, []);
        let pool = ConstPool::new();
        let mut mem1 = DeviceMemory::new(32 * 4);
        let serial = execute_simt_workers(&p, &base_cfg, &mut mem1, &pool, 1).unwrap_err();
        for pack in [2u32, 4] {
            for workers in [1usize, 2] {
                let mut cfg = base_cfg.clone();
                cfg.pack = pack;
                let mut mem = DeviceMemory::new(32 * 4);
                let err = execute_simt_workers(&p, &cfg, &mut mem, &pool, workers).unwrap_err();
                assert_eq!(
                    err, serial,
                    "error differs at pack={pack} workers={workers}"
                );
            }
        }
    }

    /// Regression (cost-model audit): `fused_segment_counts`'s sort-free
    /// fast path must refuse interleaved per-request ascending runs — the
    /// shape a naively flattened packed address stream would have. Each
    /// run is ascending but the interleaving is not globally ascending, so
    /// the fused path must return `None` and the sorted fallback must
    /// produce the true distinct-segment counts.
    #[test]
    fn charge_access_interleaved_packed_streams_use_sorted_path() {
        // Two interleaved ascending runs (requests at 0.. and 4096..), as
        // lane-major (lane, addr) pairs.
        let mut addrs: Vec<(u32, u32)> = Vec::new();
        for i in 0..16u32 {
            addrs.push((2 * i, i));
            addrs.push((2 * i + 1, 4096 + i));
        }
        assert_eq!(
            fused_segment_counts(&addrs, Width::Byte, 128),
            None,
            "interleaved runs must not take the ascending fast path"
        );

        // charge_access (which picks the path internally) must agree with
        // an explicit sorted-dedup reference on every counter.
        let cfg = LaunchConfig::new(32, []);
        let mut segs = Vec::new();
        let mut stats = WarpStats::default();
        charge_access(
            MemSpace::Global,
            Width::Byte,
            &addrs,
            &cfg,
            &mut segs,
            &mut stats,
        );
        let ntx = distinct_segments_sorted(&addrs, Width::Byte, cfg.tx_bytes, &mut segs);
        let nsec = distinct_segments_sorted(&addrs, Width::Byte, SECTOR_BYTES, &mut segs);
        assert_eq!(stats.mem_accesses, 1);
        assert_eq!(stats.mem_transactions, ntx);
        assert_eq!(stats.warp_cycles, ntx);
        assert_eq!(stats.dram_bytes, nsec * SECTOR_BYTES as u64);
        // Two distant 16-byte runs: one 128 B transaction and one 32 B
        // sector each.
        assert_eq!(ntx, 2);
        assert_eq!(nsec, 2);

        // Sanity: the same addresses sorted into one globally ascending
        // stream do take the fast path and agree with the fallback.
        let mut sorted = addrs.clone();
        sorted.sort_unstable_by_key(|&(_, a)| a);
        let fused = fused_segment_counts(&sorted, Width::Byte, cfg.tx_bytes)
            .expect("ascending stream should take the fast path");
        assert_eq!(fused, (ntx, nsec));
    }
}
