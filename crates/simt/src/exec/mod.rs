//! Kernel executors: scalar (CPU model) and SIMT warp-lockstep (GPU model).

pub mod plan;
pub mod scalar;
pub mod simt;

use std::fmt;
use std::sync::Arc;

use crate::mem::MemError;

/// Number of lanes executing in lockstep per warp, as on NVIDIA hardware.
pub const WARP_SIZE: u32 = 32;

/// Kind of a memory access, as classified by the footprint sanitizer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// An `Op::Ld`.
    Read,
    /// An `Op::St`.
    Write,
    /// An `Op::AtomicAdd` (a read-modify-write).
    Atomic,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        })
    }
}

/// A claimed static footprint for a kernel's **global-memory** accesses:
/// per access kind, the byte intervals the kernel is allowed to touch.
///
/// Produced by lowering a static effect summary (see
/// `rhythm_verify::effects`) and attached to a launch via
/// [`LaunchConfig::sanitize`]; the plan executor then checks every
/// executed global access against it and fails the launch with
/// [`ExecError::FootprintEscape`] on the first access outside the claim —
/// a loud soundness failure of the static analysis rather than a silent
/// wrong answer.
///
/// `None` for a kind means the claim is ⊤ (unrestricted) for that kind;
/// an empty interval list means the kernel claims to perform **no**
/// accesses of that kind, so any such access escapes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FootprintSpec {
    reads: Option<Vec<(u64, u64)>>,
    writes: Option<Vec<(u64, u64)>>,
    atomics: Option<Vec<(u64, u64)>>,
}

impl FootprintSpec {
    /// Build a spec from per-kind `[lo, hi)` byte intervals (`None` = ⊤).
    /// Intervals are normalized: sorted, with overlapping or adjacent
    /// intervals merged.
    pub fn new(
        reads: Option<Vec<(u64, u64)>>,
        writes: Option<Vec<(u64, u64)>>,
        atomics: Option<Vec<(u64, u64)>>,
    ) -> Self {
        FootprintSpec {
            reads: reads.map(Self::normalize),
            writes: writes.map(Self::normalize),
            atomics: atomics.map(Self::normalize),
        }
    }

    fn normalize(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.retain(|&(lo, hi)| hi > lo);
        v.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
        for (lo, hi) in v {
            match out.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => out.push((lo, hi)),
            }
        }
        out
    }

    /// The normalized intervals claimed for `kind`, or `None` for ⊤.
    pub fn intervals(&self, kind: AccessKind) -> Option<&[(u64, u64)]> {
        match kind {
            AccessKind::Read => self.reads.as_deref(),
            AccessKind::Write => self.writes.as_deref(),
            AccessKind::Atomic => self.atomics.as_deref(),
        }
    }

    /// Is the byte range `[lo, hi)` inside the claim for `kind`? Since the
    /// intervals are merged, a range is covered iff one interval contains
    /// it whole. Empty ranges are trivially covered.
    pub fn covers(&self, kind: AccessKind, lo: u64, hi: u64) -> bool {
        if hi <= lo {
            return true;
        }
        let Some(iv) = self.intervals(kind) else {
            return true;
        };
        let i = iv.partition_point(|&(s, _)| s <= lo);
        i > 0 && iv[i - 1].1 >= hi
    }

    /// Is a single access of `width` bytes at `addr` inside the claim?
    pub fn allows(&self, kind: AccessKind, addr: u32, width: u32) -> bool {
        self.covers(kind, addr as u64, addr as u64 + width as u64)
    }
}

/// Launch-time configuration shared by both executors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LaunchConfig {
    /// Total lanes (request slots) in the launch. The SIMT executor groups
    /// them into warps of [`WARP_SIZE`].
    pub lanes: u32,
    /// Broadcast launch parameters readable via `Op::Param`.
    pub params: Vec<u32>,
    /// Per-lane private (local) memory in bytes.
    pub local_bytes: u32,
    /// Per-warp shared memory in bytes.
    pub shared_bytes: u32,
    /// Memory-transaction granularity for the coalescing model, in bytes.
    pub tx_bytes: u32,
    /// Per-lane (scalar) / per-warp (SIMT) dynamic instruction budget;
    /// exceeding it aborts execution, guarding against runaway loops.
    pub max_instructions: u64,
    /// Maximum sub-warp packing width for the pre-decoded engine: up to
    /// `pack` warps of independent requests are dispatched as one packed
    /// gang and executed in fused lockstep while their control flow
    /// agrees (see `exec::simt` module docs). The executor clamps the
    /// effective width to a power of two in `{1, 2, 4}` and to the plan's
    /// static packing profile (`ExecPlan::pack_max`). `1` (the default)
    /// disables packing. Results are bit-identical at every width for
    /// kernels whose warps are independent — the same contract parallel
    /// warp workers already rely on.
    pub pack: u32,
    /// Optional footprint sanitizer: when set, the plan executor checks
    /// every executed **global** access against this claimed static
    /// footprint and aborts with [`ExecError::FootprintEscape`] on the
    /// first access outside it. `None` (the default) disables the check.
    /// The sanitizer cannot perturb results: a sanitized launch that does
    /// not escape is bit-identical to an unsanitized one.
    pub sanitize: Option<Arc<FootprintSpec>>,
}

impl LaunchConfig {
    /// A config for `lanes` lanes with the given params and the defaults
    /// for everything else (256 B local, 1 KiB shared, 128 B transactions,
    /// 1 G-instruction budget).
    ///
    /// Takes anything convertible into the params vector, so argless
    /// launch sites can write `LaunchConfig::new(lanes, [])` and skip the
    /// `vec![]` ceremony:
    ///
    /// ```
    /// use rhythm_simt::exec::LaunchConfig;
    /// assert_eq!(LaunchConfig::new(64, []), LaunchConfig::new(64, Vec::new()));
    /// assert_eq!(LaunchConfig::new(64, [7, 9]).params, vec![7, 9]);
    /// ```
    pub fn new(lanes: u32, params: impl Into<Vec<u32>>) -> Self {
        LaunchConfig {
            lanes,
            params: params.into(),
            ..Default::default()
        }
    }

    /// Number of warps needed for the configured lane count.
    pub fn warps(&self) -> u32 {
        self.lanes.div_ceil(WARP_SIZE)
    }
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            lanes: 1,
            params: Vec::new(),
            local_bytes: 256,
            shared_bytes: 1024,
            tx_bytes: 128,
            max_instructions: 1_000_000_000,
            pack: 1,
            sanitize: None,
        }
    }
}

/// A structured pre-launch rejection produced by a [`crate::gpu::LaunchGate`].
///
/// Carries enough to point a kernel author at the offending instruction:
/// the rule identifier of the static check that fired, the program name,
/// and the block / op coordinates (when the finding is op-level).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GateRejection {
    /// Stable identifier of the rule that rejected the launch
    /// (e.g. `"bounds-oob"`).
    pub rule: String,
    /// Name of the rejected program.
    pub program: String,
    /// Basic block containing the finding, when op-level.
    pub block: Option<u32>,
    /// Op index within the block, when op-level.
    pub op_index: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for GateRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.program)?;
        if let Some(b) = self.block {
            write!(f, " bb{b}")?;
            if let Some(i) = self.op_index {
                write!(f, ".{i}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// Execution failure.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field names are self-describing
pub enum ExecError {
    /// A memory access failed (out of bounds / read-only).
    Mem(MemError),
    /// The instruction budget was exhausted (likely a runaway loop).
    Budget { executed: u64 },
    /// A launch parameter index had no value supplied.
    MissingParam { index: u16 },
    /// Internal invariant violation in the divergence stack.
    Reconvergence(&'static str),
    /// A pre-launch static check rejected the program before any lane ran.
    Rejected(GateRejection),
    /// The footprint sanitizer observed a global access outside the
    /// claimed static footprint — a soundness failure of the static
    /// effect analysis (or a wrong claim), never of the kernel itself.
    FootprintEscape {
        kind: AccessKind,
        addr: u32,
        width: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "memory fault: {e}"),
            ExecError::Budget { executed } => {
                write!(f, "instruction budget exhausted after {executed}")
            }
            ExecError::MissingParam { index } => write!(f, "launch parameter {index} not supplied"),
            ExecError::Reconvergence(msg) => write!(f, "divergence-stack invariant broken: {msg}"),
            ExecError::Rejected(r) => write!(f, "launch rejected by static check: {r}"),
            ExecError::FootprintEscape { kind, addr, width } => write!(
                f,
                "footprint sanitizer: {width}-byte {kind} at global address {addr:#x} \
                 escapes the claimed static footprint"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warps_round_up() {
        let mut c = LaunchConfig::new(1, []);
        assert_eq!(c.warps(), 1);
        c.lanes = 32;
        assert_eq!(c.warps(), 1);
        c.lanes = 33;
        assert_eq!(c.warps(), 2);
        c.lanes = 4096;
        assert_eq!(c.warps(), 128);
    }

    #[test]
    fn default_config_sane() {
        let c = LaunchConfig::default();
        assert_eq!(c.tx_bytes, 128);
        assert!(c.max_instructions > 0);
    }

    #[test]
    fn error_display_and_source() {
        use crate::ir::MemSpace;
        use std::error::Error as _;
        let e = ExecError::from(MemError::ReadOnly {
            space: MemSpace::Const,
        });
        assert!(e.to_string().contains("memory fault"));
        assert!(e.source().is_some());
        assert!(ExecError::Budget { executed: 7 }.source().is_none());
    }
}
