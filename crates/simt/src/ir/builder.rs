//! Assembler/builder for kernel [`Program`]s.
//!
//! [`ProgramBuilder`] provides register allocation, block management,
//! structured control flow (`if_then`, `while_loop`, counted loops), and a
//! small standard library of string/data routines (byte copies, decimal
//! conversion, hashing) that the banking workload kernels are written with.
//!
//! All library routines expand to explicit IR loops, so dynamic instruction
//! counts and divergence are measured, never estimated.

use super::{
    BinOp, Block, BlockId, MemSpace, Op, Program, Reg, Terminator, UnOp, ValidateError, Width,
};
use std::fmt;

/// Error building a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A block was created but never given a terminator.
    Unterminated(BlockId),
    /// The assembled program failed structural validation.
    Invalid(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Unterminated(b) => write!(f, "block {b} has no terminator"),
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ValidateError> for BuildError {
    fn from(e: ValidateError) -> Self {
        BuildError::Invalid(e)
    }
}

struct OpenBlock {
    label: Option<String>,
    ops: Vec<Op>,
    term: Option<Terminator>,
}

/// A write cursor over a cohort-strided output buffer.
///
/// Response buffers are 2-D arrays `[lane][offset]` that can be laid out
/// row-major (each request's buffer contiguous) or transposed/column-major
/// (lane buffers interleaved so that warp writes coalesce). The cursor
/// abstracts the address computation:
///
/// ```text
/// addr = base + lane_term + pos * elem_stride
/// ```
///
/// where `lane_term = lane * lane_stride` is computed once at kernel start.
/// Row-major layout uses `elem_stride = 1`, `lane_stride = buffer_size`;
/// transposed layout uses `elem_stride = cohort_size`, `lane_stride = 1`.
/// Both layouts execute the *same* instruction sequence, so layout changes
/// affect only the memory system — exactly the paper's experiment.
#[derive(Copy, Clone, Debug)]
pub struct BufCursor {
    /// Base address of the 2-D buffer in global memory.
    pub base: Reg,
    /// Current element offset (`pos`); advanced by writes.
    pub pos: Reg,
    /// Stride between consecutive elements of one lane's stream.
    pub elem_stride: Reg,
    /// Precomputed `lane * lane_stride`.
    pub lane_term: Reg,
}

/// Builder for kernel programs. See the module-level documentation.
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<OpenBlock>,
    current: BlockId,
    next_reg: u16,
}

impl ProgramBuilder {
    /// Start a new program with an open entry block.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            blocks: vec![OpenBlock {
                label: Some("entry".into()),
                ops: Vec::new(),
                term: None,
            }],
            current: 0,
            next_reg: 0,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register file exhausted");
        r
    }

    /// Create a new (empty, unterminated) block and return its id.
    pub fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        self.blocks.push(OpenBlock {
            label: Some(label.into()),
            ops: Vec::new(),
            term: None,
        });
        (self.blocks.len() - 1) as BlockId
    }

    /// Make `block` the current insertion point.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist or is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            (block as usize) < self.blocks.len(),
            "switch_to: no such block {block}"
        );
        assert!(
            self.blocks[block as usize].term.is_none(),
            "switch_to: block {block} already terminated"
        );
        self.current = block;
    }

    /// Id of the current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, op: Op) {
        let cur = self.current as usize;
        assert!(
            self.blocks[cur].term.is_none(),
            "emitting into terminated block {cur}"
        );
        self.blocks[cur].ops.push(op);
    }

    fn terminate(&mut self, term: Terminator) {
        let cur = self.current as usize;
        assert!(
            self.blocks[cur].term.is_none(),
            "block {cur} already terminated"
        );
        self.blocks[cur].term = Some(term);
    }

    // ---- straight-line emission ------------------------------------------

    /// `dst = value` into a fresh register.
    pub fn imm(&mut self, value: u32) -> Reg {
        let dst = self.reg();
        self.push(Op::Imm { dst, value });
        dst
    }

    /// `dst = value` into an existing register.
    pub fn imm_into(&mut self, dst: Reg, value: u32) {
        self.push(Op::Imm { dst, value });
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.push(Op::Mov { dst, src });
    }

    /// Fresh register = `a <op> b`.
    pub fn bin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.push(Op::Bin { op, dst, a, b });
        dst
    }

    /// `dst = a <op> b` into an existing register.
    pub fn bin_into(&mut self, dst: Reg, op: BinOp, a: Reg, b: Reg) {
        self.push(Op::Bin { op, dst, a, b });
    }

    /// Fresh register = `<op> a`.
    pub fn un(&mut self, op: UnOp, a: Reg) -> Reg {
        let dst = self.reg();
        self.push(Op::Un { op, dst, a });
        dst
    }

    /// `a + imm` via a materialized immediate (two instructions).
    pub fn add_imm(&mut self, a: Reg, value: u32) -> Reg {
        let v = self.imm(value);
        self.bin(BinOp::Add, a, v)
    }

    /// Fresh register = lane id within the warp.
    pub fn lane_id(&mut self) -> Reg {
        let dst = self.reg();
        self.push(Op::LaneId { dst });
        dst
    }

    /// Fresh register = global lane (request slot) index.
    pub fn global_id(&mut self) -> Reg {
        let dst = self.reg();
        self.push(Op::GlobalId { dst });
        dst
    }

    /// Fresh register = launch parameter `index`.
    pub fn param(&mut self, index: u16) -> Reg {
        let dst = self.reg();
        self.push(Op::Param { dst, index });
        dst
    }

    /// Generic load.
    pub fn ld(&mut self, width: Width, space: MemSpace, addr: Reg, offset: u32) -> Reg {
        let dst = self.reg();
        self.push(Op::Ld {
            width,
            space,
            dst,
            addr,
            offset,
        });
        dst
    }

    /// Generic store.
    pub fn st(&mut self, width: Width, space: MemSpace, addr: Reg, offset: u32, src: Reg) {
        self.push(Op::St {
            width,
            space,
            src,
            addr,
            offset,
        });
    }

    /// Load a byte from global memory.
    pub fn ld_global_byte(&mut self, addr: Reg, offset: u32) -> Reg {
        self.ld(Width::Byte, MemSpace::Global, addr, offset)
    }

    /// Store a byte to global memory.
    pub fn st_global_byte(&mut self, addr: Reg, offset: u32, src: Reg) {
        self.st(Width::Byte, MemSpace::Global, addr, offset, src)
    }

    /// Load a word from global memory.
    pub fn ld_global_word(&mut self, addr: Reg, offset: u32) -> Reg {
        self.ld(Width::Word, MemSpace::Global, addr, offset)
    }

    /// Store a word to global memory.
    pub fn st_global_word(&mut self, addr: Reg, offset: u32, src: Reg) {
        self.st(Width::Word, MemSpace::Global, addr, offset, src)
    }

    /// Load a byte from constant memory.
    pub fn ld_const_byte(&mut self, addr: Reg, offset: u32) -> Reg {
        self.ld(Width::Byte, MemSpace::Const, addr, offset)
    }

    /// Load a word from constant memory.
    pub fn ld_const_word(&mut self, addr: Reg, offset: u32) -> Reg {
        self.ld(Width::Word, MemSpace::Const, addr, offset)
    }

    /// Store a byte to per-lane local memory.
    pub fn st_local_byte(&mut self, addr: Reg, offset: u32, src: Reg) {
        self.st(Width::Byte, MemSpace::Local, addr, offset, src)
    }

    /// Load a byte from per-lane local memory.
    pub fn ld_local_byte(&mut self, addr: Reg, offset: u32) -> Reg {
        self.ld(Width::Byte, MemSpace::Local, addr, offset)
    }

    /// Butterfly max-reduction across the warp's active lanes.
    pub fn warp_red_max(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.push(Op::WarpRedMax { dst, src });
        dst
    }

    /// Atomic fetch-and-add; returns the old value.
    pub fn atomic_add(&mut self, space: MemSpace, addr: Reg, offset: u32, src: Reg) -> Reg {
        let dst = self.reg();
        self.push(Op::AtomicAdd {
            dst,
            space,
            addr,
            offset,
            src,
        });
        dst
    }

    // ---- control flow ----------------------------------------------------

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp(target));
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: Reg, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Br {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminate the current block with a lane halt.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    /// Structured `if cond { then }`: creates the then and join blocks,
    /// runs `then` with the insertion point in the then block, and leaves
    /// the insertion point at the join block.
    pub fn if_then(&mut self, cond: Reg, then: impl FnOnce(&mut Self)) {
        let then_bb = self.new_block("then");
        let join = self.new_block("join");
        self.branch(cond, then_bb, join);
        self.switch_to(then_bb);
        then(self);
        if self.blocks[self.current as usize].term.is_none() {
            self.jump(join);
        }
        self.switch_to(join);
    }

    /// Structured `if cond { then } else { els }`, leaving the insertion
    /// point at the join block.
    pub fn if_then_else(
        &mut self,
        cond: Reg,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let then_bb = self.new_block("then");
        let else_bb = self.new_block("else");
        let join = self.new_block("join");
        self.branch(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then(self);
        if self.blocks[self.current as usize].term.is_none() {
            self.jump(join);
        }
        self.switch_to(else_bb);
        els(self);
        if self.blocks[self.current as usize].term.is_none() {
            self.jump(join);
        }
        self.switch_to(join);
    }

    /// Structured `while cond(b) != 0 { body }`. The condition closure runs
    /// in the loop-header block and returns the condition register; the
    /// body closure runs in the body block. Leaves the insertion point at
    /// the exit block.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block("while.header");
        let body_bb = self.new_block("while.body");
        let exit = self.new_block("while.exit");
        self.jump(header);
        self.switch_to(header);
        let c = cond(self);
        self.branch(c, body_bb, exit);
        self.switch_to(body_bb);
        body(self);
        if self.blocks[self.current as usize].term.is_none() {
            self.jump(header);
        }
        self.switch_to(exit);
    }

    /// Counted loop `for i in 0..count { body(b, i) }` where `count` is a
    /// register. The induction variable register is passed to the body.
    pub fn for_loop(&mut self, count: Reg, body: impl FnOnce(&mut Self, Reg)) {
        let i = self.imm(0);
        let one = self.imm(1);
        self.while_loop(
            |b| b.bin(BinOp::LtU, i, count),
            |b| {
                body(b, i);
                b.bin_into(i, BinOp::Add, i, one);
            },
        );
    }

    /// Finish construction, sealing and validating the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Unterminated`] for any block missing a
    /// terminator, or [`BuildError::Invalid`] on validation failure.
    pub fn build(self) -> Result<Program, BuildError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            let term = b.term.ok_or(BuildError::Unterminated(i as BlockId))?;
            blocks.push(Block {
                label: b.label,
                ops: b.ops,
                term,
            });
        }
        Ok(Program::from_parts(self.name, blocks, self.next_reg, 0)?)
    }

    // ---- cursor / string library ------------------------------------------

    /// Create a write cursor (see [`BufCursor`]).
    ///
    /// `lane_stride` and `elem_stride` are layout parameters, typically
    /// loaded from launch params so one program serves both layouts.
    pub fn cursor(
        &mut self,
        base: Reg,
        lane: Reg,
        lane_stride: Reg,
        elem_stride: Reg,
    ) -> BufCursor {
        let lane_term = self.bin(BinOp::Mul, lane, lane_stride);
        let pos = self.imm(0);
        BufCursor {
            base,
            pos,
            elem_stride,
            lane_term,
        }
    }

    /// Effective address of the cursor's current element.
    pub fn cursor_addr(&mut self, cur: &BufCursor) -> Reg {
        let scaled = self.bin(BinOp::Mul, cur.pos, cur.elem_stride);
        let a = self.bin(BinOp::Add, cur.base, cur.lane_term);
        self.bin(BinOp::Add, a, scaled)
    }

    /// Write one byte at the cursor and advance it.
    pub fn cursor_write_byte(&mut self, cur: &BufCursor, byte: Reg) {
        let addr = self.cursor_addr(cur);
        self.st_global_byte(addr, 0, byte);
        let one = self.imm(1);
        self.bin_into(cur.pos, BinOp::Add, cur.pos, one);
    }

    /// Read one byte at the cursor and advance it.
    pub fn cursor_read_byte(&mut self, cur: &BufCursor) -> Reg {
        let addr = self.cursor_addr(cur);
        let v = self.ld_global_byte(addr, 0);
        let one = self.imm(1);
        self.bin_into(cur.pos, BinOp::Add, cur.pos, one);
        v
    }

    /// Copy `len` bytes from constant memory at `const_off` to the cursor.
    /// Expands to an explicit byte loop (≈10 dynamic instructions/byte).
    pub fn write_const_str(&mut self, cur: &BufCursor, const_off: u32, len: u32) {
        let src = self.imm(const_off);
        let n = self.imm(len);
        self.for_loop(n, |b, i| {
            let a = b.bin(BinOp::Add, src, i);
            let ch = b.ld_const_byte(a, 0);
            b.cursor_write_byte(cur, ch);
        });
    }

    /// Copy `len` bytes from global memory starting at `src` to the cursor.
    pub fn write_global_str(&mut self, cur: &BufCursor, src: Reg, len: Reg) {
        self.for_loop(len, |b, i| {
            let a = b.bin(BinOp::Add, src, i);
            let ch = b.ld_global_byte(a, 0);
            b.cursor_write_byte(cur, ch);
        });
    }

    /// Write the decimal representation of `value` at the cursor; returns a
    /// register holding the digit count. Digits are staged in per-lane
    /// local memory at `scratch_off` (needs up to 10 bytes).
    pub fn write_decimal(&mut self, cur: &BufCursor, value: Reg, scratch_off: u32) -> Reg {
        let v = self.reg();
        self.mov(v, value);
        let ndig = self.imm(0);
        let ten = self.imm(10);
        let one = self.imm(1);
        let zero_ch = self.imm(b'0' as u32);
        let scratch = self.imm(scratch_off);
        // do { digit = v % 10; v /= 10 } while v != 0 — emitted as
        // first-iteration-peeled while so 0 prints "0".
        let d0 = self.bin(BinOp::RemU, v, ten);
        let c0 = self.bin(BinOp::Add, d0, zero_ch);
        let a0 = self.bin(BinOp::Add, scratch, ndig);
        self.st_local_byte(a0, 0, c0);
        self.bin_into(ndig, BinOp::Add, ndig, one);
        self.bin_into(v, BinOp::DivU, v, ten);
        self.while_loop(
            |b| {
                let zero = b.zero_reg();
                b.bin(BinOp::Ne, v, zero)
            },
            |b| {
                let d = b.bin(BinOp::RemU, v, ten);
                let c = b.bin(BinOp::Add, d, zero_ch);
                let a = b.bin(BinOp::Add, scratch, ndig);
                b.st_local_byte(a, 0, c);
                b.bin_into(ndig, BinOp::Add, ndig, one);
                b.bin_into(v, BinOp::DivU, v, ten);
            },
        );
        // Emit digits most-significant first.
        let i = self.reg();
        self.mov(i, ndig);
        self.while_loop(
            |b| {
                let zero = b.zero_reg();
                b.bin(BinOp::GtU, i, zero)
            },
            |b| {
                b.bin_into(i, BinOp::Sub, i, one);
                let a = b.bin(BinOp::Add, scratch, i);
                let ch = b.ld_local_byte(a, 0);
                b.cursor_write_byte(cur, ch);
            },
        );
        ndig
    }

    /// A register permanently holding zero (allocated on first use per
    /// builder; cached).
    pub fn zero_reg(&mut self) -> Reg {
        // Emitting a fresh Imm 0 each call keeps the builder simple; the
        // one-instruction cost models a register initialization.
        self.imm(0)
    }

    /// Parse an unsigned decimal number from global memory starting at
    /// `addr`, stopping at the first non-digit. Returns `(value, len)`.
    pub fn read_decimal_global(&mut self, addr: Reg) -> (Reg, Reg) {
        let value = self.imm(0);
        let len = self.imm(0);
        let ten = self.imm(10);
        let one = self.imm(1);
        let zero_ch = self.imm(b'0' as u32);
        let nine_ch = self.imm(b'9' as u32);
        let cont = self.imm(1);
        self.while_loop(
            |b| b.mov_out(cont),
            |b| {
                let a = b.bin(BinOp::Add, addr, len);
                let ch = b.ld_global_byte(a, 0);
                let ge = b.bin(BinOp::GeU, ch, zero_ch);
                let le = b.bin(BinOp::LeU, ch, nine_ch);
                let is_digit = b.bin(BinOp::And, ge, le);
                b.if_then_else(
                    is_digit,
                    |b| {
                        let d = b.bin(BinOp::Sub, ch, zero_ch);
                        let scaled = b.bin(BinOp::Mul, value, ten);
                        b.bin_into(value, BinOp::Add, scaled, d);
                        b.bin_into(len, BinOp::Add, len, one);
                    },
                    |b| {
                        b.imm_into(cont, 0);
                    },
                );
            },
        );
        (value, len)
    }

    /// Copy of a register as a loop condition (helper for `while cont`).
    fn mov_out(&mut self, r: Reg) -> Reg {
        let d = self.reg();
        self.mov(d, r);
        d
    }

    /// Multiplicative xor-shift hash of `x` (4 instructions), used by the
    /// session array and backend record addressing.
    pub fn hash_u32(&mut self, x: Reg) -> Reg {
        let c1 = self.imm(0x9E37_79B9);
        let h = self.bin(BinOp::Mul, x, c1);
        let sh = self.imm(17);
        let hs = self.bin(BinOp::Shr, h, sh);
        self.bin(BinOp::Xor, h, hs)
    }
}

impl fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("name", &self.name)
            .field("blocks", &self.blocks.len())
            .field("regs", &self.next_reg)
            .field("current", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal() {
        let mut b = ProgramBuilder::new("k");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.blocks().len(), 1);
        assert_eq!(p.name(), "k");
    }

    #[test]
    fn unterminated_block_is_error() {
        let mut b = ProgramBuilder::new("k");
        let _ = b.imm(1);
        assert!(matches!(b.build(), Err(BuildError::Unterminated(0))));
    }

    #[test]
    fn if_then_else_shapes_cfg() {
        let mut b = ProgramBuilder::new("k");
        let c = b.imm(1);
        b.if_then_else(
            c,
            |b| {
                b.imm(10);
            },
            |b| {
                b.imm(20);
            },
        );
        b.halt();
        let p = b.build().unwrap();
        // entry + then + else + join = 4 blocks
        assert_eq!(p.blocks().len(), 4);
    }

    #[test]
    fn while_loop_shapes_cfg() {
        let mut b = ProgramBuilder::new("k");
        let n = b.imm(3);
        b.for_loop(n, |b, _i| {
            b.imm(0);
        });
        b.halt();
        let p = b.build().unwrap();
        assert!(p.blocks().len() >= 4);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn switch_to_terminated_block_panics() {
        let mut b = ProgramBuilder::new("k");
        b.halt();
        b.switch_to(0);
    }

    #[test]
    #[should_panic(expected = "emitting into terminated block")]
    fn emit_after_terminate_panics() {
        let mut b = ProgramBuilder::new("k");
        let j = b.new_block("next");
        b.jump(j);
        // current still points at the sealed entry block
        b.imm(1);
    }

    #[test]
    fn cursor_roundtrip_builds() {
        let mut b = ProgramBuilder::new("k");
        let base = b.imm(0);
        let lane = b.lane_id();
        let ls = b.imm(64);
        let es = b.imm(1);
        let cur = b.cursor(base, lane, ls, es);
        let ch = b.imm(b'x' as u32);
        b.cursor_write_byte(&cur, ch);
        b.write_const_str(&cur, 0, 5);
        let v = b.imm(1234);
        b.write_decimal(&cur, v, 0);
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    fn read_decimal_builds() {
        let mut b = ProgramBuilder::new("k");
        let a = b.imm(0);
        let (_v, _l) = b.read_decimal_global(a);
        b.halt();
        assert!(b.build().is_ok());
    }
}
