//! The Rhythm kernel intermediate representation (IR).
//!
//! Server request handlers are written once in this small, explicit IR and
//! then executed by two interpreters:
//!
//! * [`crate::exec::scalar`] — one lane at a time, modelling a general
//!   purpose CPU core and emitting dynamic basic-block traces, and
//! * [`crate::exec::simt`] — a warp of 32 lanes in lockstep, modelling a
//!   GPU-style accelerator with a divergence stack and a memory-coalescing
//!   transaction model.
//!
//! The IR is deliberately low level: all loops and string operations are
//! expressed as explicit basic blocks so that dynamic instruction counts,
//! control divergence, and memory access patterns are *measured* rather than
//! assumed.
//!
//! # Example
//!
//! ```
//! use rhythm_simt::ir::{ProgramBuilder, BinOp};
//!
//! // A kernel that writes `lane_id * 2` into global memory word `lane_id`.
//! let mut b = ProgramBuilder::new("double_lane");
//! let lane = b.global_id();
//! let two = b.imm(2);
//! let v = b.bin(BinOp::Mul, lane, two);
//! let four = b.imm(4);
//! let addr = b.bin(BinOp::Mul, lane, four);
//! b.st_global_word(addr, 0, v);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert_eq!(program.name(), "double_lane");
//! ```

mod builder;
mod dom;
mod program;

pub use builder::{BufCursor, BuildError, ProgramBuilder};
pub use dom::{immediate_post_dominators, CfgInfo, EXIT_BLOCK};
pub use program::{Block, Program, ValidateError};

use serde::{Deserialize, Serialize};

/// Identifier of a basic block within a [`Program`].
pub type BlockId = u32;

/// A virtual register, local to one lane.
///
/// Registers hold 32-bit unsigned words — the native device word of the
/// simulated accelerator. Address arithmetic, comparisons (producing 0/1)
/// and character data all flow through `Reg`s.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Memory spaces visible to a kernel, mirroring the CUDA memory hierarchy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device DRAM, shared by all lanes. Accesses are analysed for
    /// coalescing: the warp's lane addresses are grouped into aligned
    /// segments and each distinct segment costs one memory transaction.
    Global,
    /// Per-warp scratchpad (CUDA "shared"). No coalescing cost.
    Shared,
    /// Read-only broadcast memory (CUDA "constant"). A warp read where all
    /// active lanes hit the same address costs one cycle; divergent
    /// addresses serialize.
    Const,
    /// Per-lane private memory (CUDA "local"). Modelled as interleaved, so
    /// accesses are always coalesced.
    Local,
}

impl MemSpace {
    /// All memory spaces, in declaration order.
    pub const ALL: [MemSpace; 4] = [
        MemSpace::Global,
        MemSpace::Shared,
        MemSpace::Const,
        MemSpace::Local,
    ];
}

/// Access width for loads and stores.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Width {
    /// One byte; loads zero-extend, stores write the value's low byte.
    Byte,
    /// Four bytes, little endian. Addresses need not be aligned (the
    /// simulator allows it) but aligned access coalesces better.
    Word,
}

impl Width {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Word => 4,
        }
    }
}

/// Two-operand ALU operations.
///
/// Comparison operators produce `1` for true and `0` for false. All
/// arithmetic is unsigned 32-bit with wrap-around, matching the device
/// word model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the standard ALU operations
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division. Division by zero yields `u32::MAX` (the simulator
    /// does not trap, mirroring GPU semantics).
    DivU,
    /// Unsigned remainder. Remainder by zero yields the dividend.
    RemU,
    And,
    Or,
    Xor,
    /// Logical shift left; shift amounts are taken modulo 32.
    Shl,
    /// Logical shift right; shift amounts are taken modulo 32.
    Shr,
    Min,
    Max,
    Eq,
    Ne,
    LtU,
    LeU,
    GtU,
    GeU,
}

impl BinOp {
    /// Evaluate the operation on two device words.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::DivU => a.checked_div(b).unwrap_or(u32::MAX),
            BinOp::RemU => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b),
            BinOp::Shr => a.wrapping_shr(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Eq => (a == b) as u32,
            BinOp::Ne => (a != b) as u32,
            BinOp::LtU => (a < b) as u32,
            BinOp::LeU => (a <= b) as u32,
            BinOp::GtU => (a > b) as u32,
            BinOp::GeU => (a >= b) as u32,
        }
    }
}

/// Single-operand ALU operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// `1` if the operand is zero, else `0`.
    IsZero,
}

impl UnOp {
    /// Evaluate the operation on a device word.
    pub fn eval(self, a: u32) -> u32 {
        match self {
            UnOp::Not => !a,
            UnOp::IsZero => (a == 0) as u32,
        }
    }
}

/// A straight-line IR instruction (everything except control flow).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are self-describing
pub enum Op {
    /// `dst = value`
    Imm { dst: Reg, value: u32 },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = <op> a`
    Un { op: UnOp, dst: Reg, a: Reg },
    /// `dst = space[addr + offset]`
    Ld {
        width: Width,
        space: MemSpace,
        dst: Reg,
        addr: Reg,
        offset: u32,
    },
    /// `space[addr + offset] = src`
    St {
        width: Width,
        space: MemSpace,
        src: Reg,
        addr: Reg,
        offset: u32,
    },
    /// `dst = lane index within the warp` (0 for the scalar executor).
    LaneId { dst: Reg },
    /// `dst = global lane index within the launch` (the request slot).
    GlobalId { dst: Reg },
    /// `dst = launch parameter[index]`, broadcast to all lanes.
    Param { dst: Reg, index: u16 },
    /// Butterfly max-reduction across the active lanes of the warp:
    /// every active lane receives `max(src)` over active lanes. The scalar
    /// executor treats this as identity. Costs `log2(warp)` = 5 steps.
    WarpRedMax { dst: Reg, src: Reg },
    /// Atomic fetch-and-add on memory; `dst` receives the old value.
    /// Lanes hitting the same address serialize.
    AtomicAdd {
        dst: Reg,
        space: MemSpace,
        addr: Reg,
        offset: u32,
        src: Reg,
    },
}

impl Op {
    /// The destination register written by this op, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Op::Imm { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Un { dst, .. }
            | Op::Ld { dst, .. }
            | Op::LaneId { dst }
            | Op::GlobalId { dst }
            | Op::Param { dst, .. }
            | Op::WarpRedMax { dst, .. }
            | Op::AtomicAdd { dst, .. } => Some(dst),
            Op::St { .. } => None,
        }
    }

    /// Registers read by this op.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Op::Imm { .. } | Op::LaneId { .. } | Op::GlobalId { .. } | Op::Param { .. } => {
                Vec::new()
            }
            Op::Mov { src, .. } => vec![src],
            Op::Bin { a, b, .. } => vec![a, b],
            Op::Un { a, .. } => vec![a],
            Op::Ld { addr, .. } => vec![addr],
            Op::St { addr, src, .. } => vec![addr, src],
            Op::WarpRedMax { src, .. } => vec![src],
            Op::AtomicAdd { addr, src, .. } => vec![addr, src],
        }
    }

    /// True if this op touches a memory space.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. } | Op::AtomicAdd { .. })
    }
}

/// Block terminator: every basic block ends in exactly one of these.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are self-describing
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch: nonzero `cond` goes to `then_bb`.
    Br {
        cond: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// The lane finishes kernel execution.
    Halt,
}

impl Terminator {
    /// Successor block ids (empty for [`Terminator::Halt`]).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jmp(t) => vec![t],
            Terminator::Br {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Halt => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basic() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), u32::MAX);
        assert_eq!(BinOp::Mul.eval(1 << 31, 2), 0);
        assert_eq!(BinOp::DivU.eval(7, 2), 3);
        assert_eq!(BinOp::DivU.eval(7, 0), u32::MAX);
        assert_eq!(BinOp::RemU.eval(7, 0), 7);
        assert_eq!(BinOp::Min.eval(4, 9), 4);
        assert_eq!(BinOp::Max.eval(4, 9), 9);
    }

    #[test]
    fn binop_eval_compare() {
        assert_eq!(BinOp::Eq.eval(5, 5), 1);
        assert_eq!(BinOp::Ne.eval(5, 5), 0);
        assert_eq!(BinOp::LtU.eval(1, 2), 1);
        assert_eq!(BinOp::LeU.eval(2, 2), 1);
        assert_eq!(BinOp::GtU.eval(3, 2), 1);
        assert_eq!(BinOp::GeU.eval(1, 2), 0);
    }

    #[test]
    fn binop_shift_wraps_amount() {
        assert_eq!(BinOp::Shl.eval(1, 33), 2);
        assert_eq!(BinOp::Shr.eval(4, 33), 2);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Not.eval(0), u32::MAX);
        assert_eq!(UnOp::IsZero.eval(0), 1);
        assert_eq!(UnOp::IsZero.eval(7), 0);
    }

    #[test]
    fn op_dst_and_sources() {
        let op = Op::Bin {
            op: BinOp::Add,
            dst: Reg(3),
            a: Reg(1),
            b: Reg(2),
        };
        assert_eq!(op.dst(), Some(Reg(3)));
        assert_eq!(op.sources(), vec![Reg(1), Reg(2)]);
        let st = Op::St {
            width: Width::Byte,
            space: MemSpace::Global,
            src: Reg(4),
            addr: Reg(5),
            offset: 1,
        };
        assert_eq!(st.dst(), None);
        assert!(st.is_memory());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jmp(4).successors(), vec![4]);
        assert_eq!(
            Terminator::Br {
                cond: Reg(0),
                then_bb: 1,
                else_bb: 2
            }
            .successors(),
            vec![1, 2]
        );
        assert!(Terminator::Halt.successors().is_empty());
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Word.bytes(), 4);
    }
}
