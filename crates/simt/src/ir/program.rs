//! Program and basic-block containers, plus structural validation.

use serde::{Deserialize, Serialize};
use std::fmt;

use super::{BlockId, Op, Terminator};

/// A basic block: straight-line [`Op`]s followed by one [`Terminator`].
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Block {
    /// Optional human-readable label, used in disassembly and traces.
    pub label: Option<String>,
    /// Straight-line instructions.
    pub ops: Vec<Op>,
    /// The unique terminator.
    pub term: Terminator,
}

impl Block {
    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.ops.len() + 1
    }

    /// A block always contains at least its terminator.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A validated kernel program: a CFG of basic blocks over a register file.
///
/// Construct with [`super::ProgramBuilder`]; direct construction is possible
/// for tests via [`Program::from_parts`] followed by validation.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Program {
    name: String,
    blocks: Vec<Block>,
    num_regs: u16,
    entry: BlockId,
}

/// Structural validation failure for a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field names are self-describing
pub enum ValidateError {
    /// The program contains no blocks.
    Empty,
    /// The entry block id is out of range.
    BadEntry(BlockId),
    /// A terminator targets a nonexistent block.
    BadTarget { block: BlockId, target: BlockId },
    /// An instruction references a register `>= num_regs`.
    BadRegister { block: BlockId, op_index: usize },
    /// A `Param` op references an index above the supported maximum.
    BadParamIndex { block: BlockId, op_index: usize },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "program has no basic blocks"),
            ValidateError::BadEntry(e) => write!(f, "entry block {e} does not exist"),
            ValidateError::BadTarget { block, target } => {
                write!(f, "block {block} targets nonexistent block {target}")
            }
            ValidateError::BadRegister { block, op_index } => {
                write!(f, "block {block} op {op_index} uses out-of-range register")
            }
            ValidateError::BadParamIndex { block, op_index } => {
                write!(f, "block {block} op {op_index} uses out-of-range parameter")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Maximum number of launch parameters a kernel may read.
pub const MAX_PARAMS: u16 = 64;

impl Program {
    /// Assemble a program from raw parts and validate it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first structural problem
    /// found (dangling branch target, out-of-range register, bad entry).
    pub fn from_parts(
        name: impl Into<String>,
        blocks: Vec<Block>,
        num_regs: u16,
        entry: BlockId,
    ) -> Result<Self, ValidateError> {
        let p = Program {
            name: name.into(),
            blocks,
            num_regs,
            entry,
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), ValidateError> {
        if self.blocks.is_empty() {
            return Err(ValidateError::Empty);
        }
        if self.entry as usize >= self.blocks.len() {
            return Err(ValidateError::BadEntry(self.entry));
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            for target in block.term.successors() {
                if target as usize >= self.blocks.len() {
                    return Err(ValidateError::BadTarget {
                        block: bi as BlockId,
                        target,
                    });
                }
            }
            for (oi, op) in block.ops.iter().enumerate() {
                let mut regs = op.sources();
                regs.extend(op.dst());
                if regs.iter().any(|r| r.0 >= self.num_regs) {
                    return Err(ValidateError::BadRegister {
                        block: bi as BlockId,
                        op_index: oi,
                    });
                }
                if let Op::Param { index, .. } = op {
                    if *index >= MAX_PARAMS {
                        return Err(ValidateError::BadParamIndex {
                            block: bi as BlockId,
                            op_index: oi,
                        });
                    }
                }
            }
            if let Terminator::Br { cond, .. } = &block.term {
                if cond.0 >= self.num_regs {
                    return Err(ValidateError::BadRegister {
                        block: bi as BlockId,
                        op_index: block.ops.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Kernel name (used in stats and disassembly).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basic blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// One block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (programs are validated, so ids
    /// obtained during execution are always in range).
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id as usize]
    }

    /// Size of the per-lane register file.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Total static instruction count (ops + terminators).
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// A structural fingerprint of the whole program (name, blocks, ops,
    /// register-file size), suitable as a cache key for per-program
    /// analyses. Two equal programs hash equal; distinct programs collide
    /// only with ordinary 64-bit-hash probability.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.num_regs.hash(&mut h);
        self.entry.hash(&mut h);
        self.blocks.hash(&mut h);
        h.finish()
    }

    /// Render a human-readable disassembly listing.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "kernel {} (regs={})", self.name, self.num_regs);
        for (bi, b) in self.blocks.iter().enumerate() {
            let label = b.label.as_deref().unwrap_or("");
            let _ = writeln!(out, "bb{bi}: {label}");
            for op in &b.ops {
                let _ = writeln!(out, "    {op:?}");
            }
            let _ = writeln!(out, "    {:?}", b.term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, MemSpace, Reg, Width};

    fn halt_block() -> Block {
        Block {
            label: None,
            ops: vec![],
            term: Terminator::Halt,
        }
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            Program::from_parts("k", vec![], 0, 0).unwrap_err(),
            ValidateError::Empty
        );
    }

    #[test]
    fn bad_entry_rejected() {
        let err = Program::from_parts("k", vec![halt_block()], 0, 3).unwrap_err();
        assert_eq!(err, ValidateError::BadEntry(3));
    }

    #[test]
    fn dangling_target_rejected() {
        let b = Block {
            label: None,
            ops: vec![],
            term: Terminator::Jmp(9),
        };
        let err = Program::from_parts("k", vec![b], 0, 0).unwrap_err();
        assert_eq!(
            err,
            ValidateError::BadTarget {
                block: 0,
                target: 9
            }
        );
    }

    #[test]
    fn out_of_range_register_rejected() {
        let b = Block {
            label: None,
            ops: vec![Op::Bin {
                op: BinOp::Add,
                dst: Reg(5),
                a: Reg(0),
                b: Reg(1),
            }],
            term: Terminator::Halt,
        };
        let err = Program::from_parts("k", vec![b], 2, 0).unwrap_err();
        assert!(matches!(err, ValidateError::BadRegister { .. }));
    }

    #[test]
    fn branch_cond_register_checked() {
        let b = Block {
            label: None,
            ops: vec![],
            term: Terminator::Br {
                cond: Reg(7),
                then_bb: 0,
                else_bb: 0,
            },
        };
        let err = Program::from_parts("k", vec![b], 1, 0).unwrap_err();
        assert!(matches!(err, ValidateError::BadRegister { .. }));
    }

    #[test]
    fn valid_program_accepted() {
        let b0 = Block {
            label: Some("entry".into()),
            ops: vec![
                Op::Imm {
                    dst: Reg(0),
                    value: 4,
                },
                Op::St {
                    width: Width::Word,
                    space: MemSpace::Global,
                    src: Reg(0),
                    addr: Reg(0),
                    offset: 0,
                },
            ],
            term: Terminator::Jmp(1),
        };
        let p = Program::from_parts("k", vec![b0, halt_block()], 1, 0).unwrap();
        assert_eq!(p.static_len(), 4);
        assert_eq!(p.entry(), 0);
        assert!(p.disassemble().contains("bb1"));
    }

    #[test]
    fn display_for_errors() {
        let s = ValidateError::BadTarget {
            block: 1,
            target: 2,
        }
        .to_string();
        assert!(s.contains("block 1"));
    }
}
