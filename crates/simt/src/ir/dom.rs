//! Control-flow analysis: immediate post-dominators.
//!
//! The SIMT executor reconverges divergent warps at the *immediate
//! post-dominator* (IPDom) of the branching block — the classic
//! stack-based reconvergence scheme used by real SIMT hardware and by
//! simulators such as GPGPU-Sim. This module computes IPDoms with the
//! Cooper–Harvey–Kennedy iterative dominator algorithm run on the reverse
//! CFG, with a virtual exit node joining all `Halt` blocks.

use super::{BlockId, Program, Terminator};

/// Sentinel block id meaning "reconverges only at kernel exit".
pub const EXIT_BLOCK: BlockId = u32::MAX;

/// Per-program control-flow facts needed by the SIMT executor.
///
/// # Example
///
/// ```
/// use rhythm_simt::ir::{ProgramBuilder, CfgInfo, BinOp};
///
/// let mut b = ProgramBuilder::new("diamond");
/// let lane = b.lane_id();
/// let one = b.imm(1);
/// let cond = b.bin(BinOp::And, lane, one);
/// let (t, f, join) = (b.new_block("t"), b.new_block("f"), b.new_block("join"));
/// b.branch(cond, t, f);
/// b.switch_to(t);
/// b.jump(join);
/// b.switch_to(f);
/// b.jump(join);
/// b.switch_to(join);
/// b.halt();
/// let p = b.build().unwrap();
/// let cfg = CfgInfo::analyze(&p);
/// // The branch in the entry block reconverges at the join block.
/// assert_eq!(cfg.ipdom(p.entry()), join);
/// ```
#[derive(Clone, Debug)]
pub struct CfgInfo {
    ipdom: Vec<BlockId>,
}

impl CfgInfo {
    /// Analyze a validated program.
    pub fn analyze(program: &Program) -> CfgInfo {
        CfgInfo {
            ipdom: immediate_post_dominators(program),
        }
    }

    /// Immediate post-dominator of `block`, or [`EXIT_BLOCK`] if control
    /// only rejoins at kernel exit.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if `block` is the [`EXIT_BLOCK`]
    /// sentinel (the sentinel has no post-dominator; querying it used to
    /// abort with an opaque out-of-range slice index) or is otherwise out
    /// of range for the analyzed program. Use [`CfgInfo::try_ipdom`] for a
    /// non-panicking lookup.
    pub fn ipdom(&self, block: BlockId) -> BlockId {
        assert_ne!(
            block, EXIT_BLOCK,
            "CfgInfo::ipdom queried with the EXIT_BLOCK sentinel; \
             the virtual exit has no post-dominator"
        );
        assert!(
            (block as usize) < self.ipdom.len(),
            "CfgInfo::ipdom queried with out-of-range block {} (program has {} blocks)",
            block,
            self.ipdom.len()
        );
        self.ipdom[block as usize]
    }

    /// Non-panicking [`CfgInfo::ipdom`]: `None` when `block` is the
    /// [`EXIT_BLOCK`] sentinel or out of range.
    pub fn try_ipdom(&self, block: BlockId) -> Option<BlockId> {
        if block == EXIT_BLOCK {
            return None;
        }
        self.ipdom.get(block as usize).copied()
    }

    /// Number of blocks in the analyzed program.
    pub fn num_blocks(&self) -> usize {
        self.ipdom.len()
    }
}

/// Compute the immediate post-dominator of every block.
///
/// Returns a vector indexed by [`BlockId`]; entries are [`EXIT_BLOCK`] when
/// the only post-dominator is the virtual exit (e.g. a block whose branch
/// sides both halt), and for blocks unreachable from the entry.
pub fn immediate_post_dominators(program: &Program) -> Vec<BlockId> {
    let n = program.blocks().len();
    let exit = n; // internal index of the virtual exit node

    // Reverse-CFG successors == CFG predecessors; we need CFG successors to
    // build predecessor lists of the reverse graph, i.e. plain successors.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (i, b) in program.blocks().iter().enumerate() {
        match &b.term {
            Terminator::Halt => succs[i].push(exit),
            t => {
                for s in t.successors() {
                    succs[i].push(s as usize);
                }
            }
        }
    }

    // Post-order of the *reverse* CFG starting from exit == reverse
    // post-order for the dominator iteration. Build reverse edges.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (i, ss) in succs.iter().enumerate() {
        for &s in ss {
            rev[s].push(i);
        }
    }

    // Iterative DFS post-order over the reverse CFG from exit.
    let mut order = Vec::with_capacity(n + 1);
    let mut visited = vec![false; n + 1];
    let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
    visited[exit] = true;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        if *idx < rev[node].len() {
            let next = rev[node][*idx];
            *idx += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    // order is post-order; we want reverse post-order (exit first).
    order.reverse();

    let mut po_number = vec![usize::MAX; n + 1];
    for (i, &node) in order.iter().enumerate() {
        // Higher number = earlier in reverse post-order per CHK convention:
        // assign decreasing numbers along RPO so `intersect` can walk up.
        po_number[node] = order.len() - 1 - i;
    }

    const UNDEF: usize = usize::MAX;
    let mut idom = vec![UNDEF; n + 1];
    idom[exit] = exit;

    let intersect = |idom: &[usize], po: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while po[a] < po[b] {
                a = idom[a];
            }
            while po[b] < po[a] {
                b = idom[b];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in order.iter().skip(1) {
            // Predecessors in the reverse CFG are CFG successors.
            let mut new_idom = UNDEF;
            for &p in &succs[node] {
                if idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    intersect(&idom, &po_number, new_idom, p)
                };
            }
            if new_idom != UNDEF && idom[node] != new_idom {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }

    (0..n)
        .map(|i| {
            let d = idom[i];
            if d == UNDEF || d == exit {
                EXIT_BLOCK
            } else {
                d as BlockId
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, Op, Program, Reg, Terminator};

    fn blk(term: Terminator) -> Block {
        Block {
            label: None,
            ops: vec![Op::Imm {
                dst: Reg(0),
                value: 0,
            }],
            term,
        }
    }

    fn program(blocks: Vec<Block>) -> Program {
        Program::from_parts("t", blocks, 1, 0).unwrap()
    }

    #[test]
    fn straight_line_ipdom_is_next_block() {
        // 0 -> 1 -> halt
        let p = program(vec![blk(Terminator::Jmp(1)), blk(Terminator::Halt)]);
        let ip = immediate_post_dominators(&p);
        assert_eq!(ip[0], 1);
        assert_eq!(ip[1], EXIT_BLOCK);
    }

    #[test]
    fn diamond_reconverges_at_join() {
        // 0 -> (1 | 2) -> 3 -> halt
        let p = program(vec![
            blk(Terminator::Br {
                cond: Reg(0),
                then_bb: 1,
                else_bb: 2,
            }),
            blk(Terminator::Jmp(3)),
            blk(Terminator::Jmp(3)),
            blk(Terminator::Halt),
        ]);
        let ip = immediate_post_dominators(&p);
        assert_eq!(ip[0], 3);
        assert_eq!(ip[1], 3);
        assert_eq!(ip[2], 3);
    }

    #[test]
    fn loop_header_reconverges_at_exit_block() {
        // 0: header Br -> 1 (body) | 2 (exit); 1 -> 0; 2: halt
        let p = program(vec![
            blk(Terminator::Br {
                cond: Reg(0),
                then_bb: 1,
                else_bb: 2,
            }),
            blk(Terminator::Jmp(0)),
            blk(Terminator::Halt),
        ]);
        let ip = immediate_post_dominators(&p);
        assert_eq!(ip[0], 2, "loop header ipdom is the loop exit");
        assert_eq!(ip[1], 0, "body ipdom is the header");
    }

    #[test]
    fn branch_to_two_halts_reconverges_at_exit() {
        let p = program(vec![
            blk(Terminator::Br {
                cond: Reg(0),
                then_bb: 1,
                else_bb: 2,
            }),
            blk(Terminator::Halt),
            blk(Terminator::Halt),
        ]);
        let ip = immediate_post_dominators(&p);
        assert_eq!(ip[0], EXIT_BLOCK);
    }

    #[test]
    fn nested_diamonds() {
        // 0 -> (1|4); 1 -> (2|3); 2->5; 3->5; 5->6; 4->6; 6 halt
        let p = program(vec![
            blk(Terminator::Br {
                cond: Reg(0),
                then_bb: 1,
                else_bb: 4,
            }),
            blk(Terminator::Br {
                cond: Reg(0),
                then_bb: 2,
                else_bb: 3,
            }),
            blk(Terminator::Jmp(5)),
            blk(Terminator::Jmp(5)),
            blk(Terminator::Jmp(6)),
            blk(Terminator::Jmp(6)),
            blk(Terminator::Halt),
        ]);
        let ip = immediate_post_dominators(&p);
        assert_eq!(ip[0], 6);
        assert_eq!(ip[1], 5);
        assert_eq!(ip[5], 6);
        assert_eq!(ip[4], 6);
    }

    #[test]
    fn infinite_loop_maps_to_exit_sentinel() {
        // 0 -> 0 (never reaches exit)
        let p = program(vec![blk(Terminator::Jmp(0))]);
        let ip = immediate_post_dominators(&p);
        assert_eq!(ip[0], EXIT_BLOCK);
    }

    #[test]
    fn cfginfo_wrapper() {
        let p = program(vec![blk(Terminator::Jmp(1)), blk(Terminator::Halt)]);
        let cfg = CfgInfo::analyze(&p);
        assert_eq!(cfg.ipdom(0), 1);
        assert_eq!(cfg.num_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "EXIT_BLOCK sentinel")]
    fn ipdom_rejects_exit_sentinel_with_message() {
        let p = program(vec![blk(Terminator::Halt)]);
        let cfg = CfgInfo::analyze(&p);
        // Chaining the sentinel back into ipdom() used to abort with an
        // opaque `index out of bounds: ... 4294967295` slice panic.
        let _ = cfg.ipdom(EXIT_BLOCK);
    }

    #[test]
    #[should_panic(expected = "out-of-range block")]
    fn ipdom_rejects_out_of_range_block_with_message() {
        let p = program(vec![blk(Terminator::Halt)]);
        let cfg = CfgInfo::analyze(&p);
        let _ = cfg.ipdom(7);
    }

    #[test]
    fn try_ipdom_is_total() {
        let p = program(vec![blk(Terminator::Jmp(1)), blk(Terminator::Halt)]);
        let cfg = CfgInfo::analyze(&p);
        assert_eq!(cfg.try_ipdom(0), Some(1));
        assert_eq!(cfg.try_ipdom(1), Some(EXIT_BLOCK));
        assert_eq!(cfg.try_ipdom(EXIT_BLOCK), None);
        assert_eq!(cfg.try_ipdom(2), None);
    }
}
