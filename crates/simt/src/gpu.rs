//! Device timing model: turns [`KernelStats`] into kernel latencies.
//!
//! The model is deliberately simple and fully parameterized:
//!
//! ```text
//! compute = max(max_warp_cycles, warp_cycles / (sm_count × issue_width)) / clock
//! memory  = dram_bytes / dram_bandwidth
//! time    = max(compute, memory) + launch_overhead
//! ```
//!
//! `warp_cycles / (sm_count × issue_width)` models a fully occupied device
//! (many warps hide each other's latency); `max_warp_cycles` bounds small
//! launches that cannot fill the machine.

use std::fmt;
use std::sync::Arc;

use rhythm_obs::{ArgValue, Clock, NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};

use crate::exec::plan::{plan_cache_stats, plan_for, ExecPlan};
use crate::exec::simt::{execute_plan_workers_traced, warp_arena_stats};
use crate::exec::{ExecError, GateRejection, LaunchConfig};
use crate::ir::Program;
use crate::mem::{ConstPool, DeviceMemory};
use crate::stats::KernelStats;

/// A pre-launch admission check run by [`Gpu::launch`] before any lane
/// executes.
///
/// Gates see the program plus the concrete launch environment (config,
/// memory image, const pool) and either admit the launch (`Ok`) or refuse
/// it with a structured [`GateRejection`], which the launch surfaces as
/// [`ExecError::Rejected`]. The canonical implementation is the
/// `rhythm-verify` static analyzer; the trait lives here so the device
/// crate stays free of analyzer dependencies.
pub trait LaunchGate: Send + Sync {
    /// Admit or reject `program` for this launch environment.
    ///
    /// # Errors
    ///
    /// Returns the rejection that should abort the launch.
    fn check(
        &self,
        program: &Program,
        cfg: &LaunchConfig,
        mem: &DeviceMemory,
        pool: &ConstPool,
    ) -> Result<(), GateRejection>;
}

/// Static description of a SIMT device.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Warp instructions issued per SM per cycle (Kepler SMX dual-issues
    /// from four schedulers; a sustained value of ~4 is realistic for
    /// ALU-heavy code).
    pub issue_width: f64,
    /// DRAM bandwidth in bytes/second.
    pub dram_bw: f64,
    /// Memory transaction size in bytes (coalescing granularity).
    pub tx_bytes: u32,
    /// Fixed per-kernel-launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Device memory capacity in bytes (capacity planning only).
    pub memory_bytes: u64,
    /// Number of hardware work queues (1 = pre-HyperQ, 32 = HyperQ).
    pub hw_queues: u32,
    /// Host worker threads used to execute a launch's warps
    /// (simulation-speed knob only — modelled latencies are unaffected):
    /// `0` = one per available core, `1` = serial execution.
    pub workers: u32,
    /// Device-side cap on sub-warp request packing (see
    /// [`LaunchConfig::pack`]): every launch's requested pack width is
    /// clamped to this value, so a device configured with `pack: 1` runs
    /// fully unpacked regardless of what callers ask for. Results are
    /// bit-identical at every width; this is a host-simulation throughput
    /// knob, like `workers`.
    pub pack: u32,
    /// Strict footprint-sanitizer policy: when `true`, every launch must
    /// carry a claimed static footprint ([`LaunchConfig::sanitize`]) or it
    /// is rejected before any lane runs. The device cannot compute
    /// footprints itself (that is the verifier's job); this flag only
    /// enforces that callers supplied one, turning "forgot to sanitize"
    /// into a loud rejection instead of a silently unchecked launch.
    pub sanitize: bool,
}

impl GpuConfig {
    /// NVIDIA GTX Titan (GK110), the paper's evaluation device:
    /// 14 SMX @ 837 MHz, 288 GB/s GDDR5, 6 GB, HyperQ (32 queues).
    ///
    /// `issue_width` is the *sustained* warp-instruction rate per SMX for
    /// dependent integer/byte-processing code — roughly 40 % of the
    /// 6-warp ALU peak (192 cores / 32 lanes), calibrated once against
    /// the paper's Titan B/C operating points and then held fixed for
    /// every experiment.
    pub fn gtx_titan() -> Self {
        GpuConfig {
            name: "GTX Titan".into(),
            sm_count: 14,
            clock_hz: 837e6,
            issue_width: 2.5,
            dram_bw: 288e9,
            tx_bytes: 128,
            launch_overhead_s: 5e-6,
            memory_bytes: 6 * (1 << 30),
            hw_queues: 32,
            workers: 0,
            pack: 4,
            sanitize: false,
        }
    }

    /// NVIDIA GTX 690 (one GK104 die): 8 SMX @ 915 MHz, 192 GB/s, 2 GB,
    /// single hardware work queue (no HyperQ) — used by the paper to show
    /// false-dependency stalls.
    pub fn gtx_690() -> Self {
        GpuConfig {
            name: "GTX 690".into(),
            sm_count: 8,
            clock_hz: 915e6,
            issue_width: 2.5,
            dram_bw: 192e9,
            tx_bytes: 128,
            launch_overhead_s: 5e-6,
            memory_bytes: 2 * (1 << 30),
            hw_queues: 1,
            workers: 0,
            pack: 4,
            sanitize: false,
        }
    }

    /// Same configuration with the warp-execution worker count replaced.
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = workers;
        self
    }

    /// Same configuration with the sub-warp packing cap replaced.
    pub fn with_pack(mut self, pack: u32) -> Self {
        self.pack = pack;
        self
    }

    /// Same configuration with the strict footprint-sanitizer policy
    /// replaced.
    pub fn with_sanitize(mut self, sanitize: bool) -> Self {
        self.sanitize = sanitize;
        self
    }
}

/// Result of a timed kernel launch.
#[derive(Clone, PartialEq, Debug)]
pub struct LaunchResult {
    /// Raw execution statistics.
    pub stats: KernelStats,
    /// Modelled kernel latency in seconds.
    pub time_s: f64,
    /// True when DRAM bandwidth, not issue bandwidth, set the latency.
    pub memory_bound: bool,
}

/// A simulated SIMT device.
///
/// # Example
///
/// ```
/// use rhythm_simt::gpu::{Gpu, GpuConfig};
/// use rhythm_simt::ir::ProgramBuilder;
/// use rhythm_simt::exec::LaunchConfig;
/// use rhythm_simt::mem::{ConstPool, DeviceMemory};
///
/// let gpu = Gpu::new(GpuConfig::gtx_titan());
/// let mut b = ProgramBuilder::new("nop");
/// b.halt();
/// let p = b.build()?;
/// let mut mem = DeviceMemory::new(16);
/// let res = gpu.launch(&p, &LaunchConfig::new(32, []), &mut mem, &ConstPool::new())?;
/// assert!(res.time_s > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct Gpu {
    config: GpuConfig,
    gate: Option<Arc<dyn LaunchGate>>,
    plan_cache: bool,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.config)
            .field("gate", &self.gate.as_ref().map(|_| "<LaunchGate>"))
            .field("plan_cache", &self.plan_cache)
            .finish()
    }
}

impl Gpu {
    /// Create a device from its configuration, with no launch gate and the
    /// decode-plan cache enabled.
    pub fn new(config: GpuConfig) -> Self {
        Gpu {
            config,
            gate: None,
            plan_cache: true,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Same device with a pre-launch admission gate installed: every
    /// [`Gpu::launch`] first runs `gate`, and a rejection aborts the launch
    /// with [`ExecError::Rejected`] before any lane executes.
    pub fn with_gate(mut self, gate: Arc<dyn LaunchGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// The installed launch gate, if any.
    pub fn gate(&self) -> Option<&Arc<dyn LaunchGate>> {
        self.gate.as_ref()
    }

    /// Same device with the decode-plan cache toggled. With the cache off
    /// every launch re-decodes the program into a fresh [`ExecPlan`] —
    /// useful for isolating decode cost in benchmarks; production paths
    /// keep it on (the default) so repeated launches of a kernel skip
    /// decode and CFG analysis.
    pub fn with_plan_cache(mut self, on: bool) -> Self {
        self.plan_cache = on;
        self
    }

    /// Whether launches consult the process-wide decode-plan cache.
    pub fn plan_cache(&self) -> bool {
        self.plan_cache
    }

    /// Execute a kernel and model its latency.
    ///
    /// The launch's `tx_bytes` is overridden by the device configuration,
    /// and the warps execute on [`GpuConfig::workers`] host threads. The
    /// result (memory image, stats, modelled time) is bit-identical at any
    /// worker count; only the host wall-clock time changes.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the SIMT executor.
    pub fn launch(
        &self,
        program: &Program,
        cfg: &LaunchConfig,
        mem: &mut DeviceMemory,
        pool: &ConstPool,
    ) -> Result<LaunchResult, ExecError> {
        self.launch_traced(program, cfg, mem, pool, &NoopRecorder)
    }

    /// [`Gpu::launch`] with tracing: one wall-time span per kernel on the
    /// `simt:kernel` track (named after the program, carrying lane/warp
    /// counts and the modelled device time as args), per-warp spans on
    /// worker tracks via [`execute_plan_workers_traced`], decode-cache and
    /// warp-arena counters on the `simt:cache` track, and a
    /// `kernel_time_s` histogram sample of the modelled latency.
    ///
    /// The recorder cannot perturb execution: results are bit-identical
    /// to [`Gpu::launch`].
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the SIMT executor.
    pub fn launch_traced<R: Recorder + ?Sized>(
        &self,
        program: &Program,
        cfg: &LaunchConfig,
        mem: &mut DeviceMemory,
        pool: &ConstPool,
        rec: &R,
    ) -> Result<LaunchResult, ExecError> {
        let mut cfg = cfg.clone();
        cfg.tx_bytes = self.config.tx_bytes;
        // The device caps (never raises) the launch's requested pack
        // width; the executor further clamps to the plan's static profile.
        cfg.pack = cfg.pack.min(self.config.pack.max(1));
        if self.config.sanitize && cfg.sanitize.is_none() {
            return Err(ExecError::Rejected(GateRejection {
                rule: "sanitize-missing-footprint".into(),
                program: program.name().into(),
                block: None,
                op_index: None,
                message: "device requires every launch to carry a claimed static \
                          footprint (GpuConfig::sanitize), but this launch has none"
                    .into(),
            }));
        }
        if let Some(gate) = &self.gate {
            gate.check(program, &cfg, mem, pool)
                .map_err(ExecError::Rejected)?;
        }
        let start_us = if rec.enabled() {
            rec.wall_now_us()
        } else {
            0.0
        };
        // Cached: fetch (or build once) the decoded plan by program
        // fingerprint. Uncached: decode fresh without touching the
        // process-wide cache or its counters.
        let plan = if self.plan_cache {
            plan_for(program)
        } else {
            Arc::new(ExecPlan::build(program))
        };
        let stats =
            execute_plan_workers_traced(&plan, &cfg, mem, pool, self.config.workers as usize, rec)?;
        let result = self.time(stats);
        if rec.enabled() {
            let now = rec.wall_now_us();
            let cache = plan_cache_stats();
            let arena = warp_arena_stats();
            rec.counter(
                Clock::Wall,
                "simt:cache",
                "plan_cache_hits",
                now,
                cache.hits as f64,
            );
            rec.counter(
                Clock::Wall,
                "simt:cache",
                "plan_cache_misses",
                now,
                cache.misses as f64,
            );
            rec.counter(
                Clock::Wall,
                "simt:cache",
                "warp_arena_reused",
                now,
                arena.reused as f64,
            );
            rec.counter(
                Clock::Wall,
                "simt:cache",
                "warp_arena_allocated",
                now,
                arena.allocated as f64,
            );
            rec.span(
                Clock::Wall,
                "simt:kernel",
                program.name(),
                start_us,
                rec.wall_now_us() - start_us,
                &[
                    ("lanes", ArgValue::U64(result.stats.lanes as u64)),
                    ("warps", ArgValue::U64(result.stats.warps as u64)),
                    ("modelled_time_s", ArgValue::F64(result.time_s)),
                    (
                        "memory_bound",
                        ArgValue::Str(if result.memory_bound { "yes" } else { "no" }),
                    ),
                ],
            );
            rec.sample("kernel_time_s", result.time_s);
        }
        Ok(result)
    }

    /// Sustained-throughput time for a kernel's stats: the device cost
    /// when many independent kernels are in flight (steady-state
    /// pipeline), so the underfilled-device critical path
    /// (`max_warp_cycles`) does not apply. Use this for throughput
    /// accounting; use [`Gpu::time`] for the latency of one isolated
    /// launch.
    pub fn sustained_time(&self, stats: &KernelStats) -> f64 {
        let c = &self.config;
        let compute_s = stats.warp_cycles as f64 / (c.sm_count as f64 * c.issue_width) / c.clock_hz;
        let memory_s = stats.dram_bytes as f64 / c.dram_bw;
        compute_s.max(memory_s) + c.launch_overhead_s
    }

    /// Model latency for pre-computed stats (used when replaying stats for
    /// a different device configuration).
    pub fn time(&self, stats: KernelStats) -> LaunchResult {
        let c = &self.config;
        let throughput_cycles = stats.warp_cycles as f64 / (c.sm_count as f64 * c.issue_width);
        let compute_cycles = throughput_cycles.max(stats.max_warp_cycles as f64);
        let compute_s = compute_cycles / c.clock_hz;
        let memory_s = stats.dram_bytes as f64 / c.dram_bw;
        let memory_bound = memory_s > compute_s;
        LaunchResult {
            time_s: compute_s.max(memory_s) + c.launch_overhead_s,
            memory_bound,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, ProgramBuilder};

    #[test]
    fn presets_differ() {
        let t = GpuConfig::gtx_titan();
        let g = GpuConfig::gtx_690();
        assert_eq!(t.hw_queues, 32);
        assert_eq!(g.hw_queues, 1);
        assert!(t.memory_bytes > g.memory_bytes);
    }

    #[test]
    fn bigger_kernel_takes_longer() {
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let mk = |n: u32| {
            let mut b = ProgramBuilder::new("k");
            let c = b.imm(n);
            b.for_loop(c, |b, _| {
                b.imm(0);
            });
            b.halt();
            b.build().unwrap()
        };
        let pool = ConstPool::new();
        let mut mem = DeviceMemory::new(16);
        let small = gpu
            .launch(&mk(10), &LaunchConfig::new(1024, []), &mut mem, &pool)
            .unwrap();
        let big = gpu
            .launch(&mk(1000), &LaunchConfig::new(1024, []), &mut mem, &pool)
            .unwrap();
        assert!(big.time_s > small.time_s);
    }

    #[test]
    fn scattered_access_can_be_memory_bound() {
        // Huge strided traffic with almost no compute.
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let mut b = ProgramBuilder::new("mem");
        let g = b.global_id();
        let stride = b.imm(4096);
        let addr = b.bin(BinOp::Mul, g, stride);
        let n = b.imm(64);
        b.for_loop(n, |b, i| {
            let a2 = b.bin(BinOp::Add, addr, i);
            let hop = b.imm(128);
            let a3 = b.bin(BinOp::Mul, i, hop);
            let a4 = b.bin(BinOp::Add, a2, a3);
            let v = b.ld_global_byte(a4, 0);
            b.st_global_byte(a4, 0, v);
        });
        b.halt();
        let p = b.build().unwrap();
        let mut mem = DeviceMemory::new(4096 * 1024 + 64 * 129 + 8);
        let pool = ConstPool::new();
        let res = gpu
            .launch(&p, &LaunchConfig::new(1024, []), &mut mem, &pool)
            .unwrap();
        assert!(res.stats.mem_transactions > res.stats.mem_accesses);
    }

    #[test]
    fn launch_identical_across_worker_counts() {
        let mk = |b: &mut ProgramBuilder| {
            let g = b.global_id();
            let four = b.imm(4);
            let addr = b.bin(BinOp::Mul, g, four);
            let n = b.imm(16);
            b.for_loop(n, |b, i| {
                let v = b.ld_global_word(addr, 0);
                let v2 = b.bin(BinOp::Add, v, i);
                b.st_global_word(addr, 0, v2);
            });
            b.halt();
        };
        let mut b = ProgramBuilder::new("k");
        mk(&mut b);
        let p = b.build().unwrap();
        let pool = ConstPool::new();
        let cfg = LaunchConfig::new(512, []);

        let run = |workers: u32| {
            let gpu = Gpu::new(GpuConfig::gtx_titan().with_workers(workers));
            let mut mem = DeviceMemory::new(512 * 4);
            let res = gpu.launch(&p, &cfg, &mut mem, &pool).unwrap();
            (res, mem)
        };
        let (r1, m1) = run(1);
        for w in [2, 4] {
            let (rn, mn) = run(w);
            assert_eq!(rn, r1, "launch result differs at {w} workers");
            assert_eq!(mn, m1, "memory differs at {w} workers");
        }
    }

    #[test]
    fn gate_rejects_before_any_lane_runs() {
        struct AlwaysReject;
        impl LaunchGate for AlwaysReject {
            fn check(
                &self,
                program: &Program,
                _cfg: &LaunchConfig,
                _mem: &DeviceMemory,
                _pool: &ConstPool,
            ) -> Result<(), GateRejection> {
                Err(GateRejection {
                    rule: "test-reject".into(),
                    program: program.name().to_string(),
                    block: Some(0),
                    op_index: Some(0),
                    message: "refused".into(),
                })
            }
        }

        // A kernel that would write to memory if it ran.
        let mut b = ProgramBuilder::new("poke");
        let a = b.imm(0);
        let v = b.imm(0xAB);
        b.st_global_byte(a, 0, v);
        b.halt();
        let p = b.build().unwrap();

        let gpu = Gpu::new(GpuConfig::gtx_titan()).with_gate(Arc::new(AlwaysReject));
        let mut mem = DeviceMemory::new(16);
        let err = gpu
            .launch(&p, &LaunchConfig::new(1, []), &mut mem, &ConstPool::new())
            .unwrap_err();
        match err {
            ExecError::Rejected(r) => {
                assert_eq!(r.rule, "test-reject");
                assert_eq!(r.program, "poke");
                assert!(r.to_string().contains("bb0.0"));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // The store never happened.
        assert_eq!(mem.as_bytes()[0], 0);
        // Debug formatting does not try to print the gate itself.
        assert!(format!("{gpu:?}").contains("LaunchGate"));
    }

    /// Packed launches through the device produce bit-identical results to
    /// unpacked ones, and the device cap clamps a launch's request.
    #[test]
    fn launch_identical_across_pack_widths() {
        assert_eq!(GpuConfig::gtx_titan().pack, 4);
        let mut b = ProgramBuilder::new("packed");
        let g = b.global_id();
        let three = b.imm(3);
        let n = b.bin(BinOp::RemU, g, three);
        let acc = b.imm(0);
        b.for_loop(n, |b, i| {
            b.bin_into(acc, BinOp::Add, acc, i);
        });
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        b.st_global_word(addr, 0, acc);
        b.halt();
        let p = b.build().unwrap();
        let pool = ConstPool::new();

        let run = |device_pack: u32, launch_pack: u32| {
            let gpu = Gpu::new(
                GpuConfig::gtx_titan()
                    .with_workers(1)
                    .with_pack(device_pack),
            );
            let mut mem = DeviceMemory::new(256 * 4);
            let mut cfg = LaunchConfig::new(256, []);
            cfg.pack = launch_pack;
            let res = gpu.launch(&p, &cfg, &mut mem, &pool).unwrap();
            (res, mem)
        };
        let (r1, m1) = run(1, 1);
        for (dp, lp) in [(4, 4), (4, 2), (1, 4), (2, 4)] {
            let (rn, mn) = run(dp, lp);
            assert_eq!(
                rn, r1,
                "result differs at device pack {dp}, launch pack {lp}"
            );
            assert_eq!(
                mn, m1,
                "memory differs at device pack {dp}, launch pack {lp}"
            );
        }
    }

    #[test]
    fn time_includes_launch_overhead() {
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let res = gpu.time(KernelStats::default());
        assert!((res.time_s - gpu.config().launch_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn underfilled_device_bounded_by_slowest_warp() {
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let stats = KernelStats {
            warps: 1,
            lanes: 32,
            warp_cycles: 1000,
            max_warp_cycles: 1000,
            ..Default::default()
        };
        let res = gpu.time(stats);
        let expect = 1000.0 / gpu.config().clock_hz + gpu.config().launch_overhead_s;
        assert!((res.time_s - expect).abs() / expect < 1e-9);
    }
}
