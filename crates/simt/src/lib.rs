//! # rhythm-simt
//!
//! SIMT execution substrate for the Rhythm cohort-server reproduction
//! (ASPLOS 2014). This crate replaces the paper's CUDA/GTX-Titan stack
//! with a deterministic, laptop-runnable simulator that preserves the
//! properties the paper's claims rest on:
//!
//! * **Lockstep amortization** — kernels written in a small IR
//!   ([`ir`]) execute 32 lanes per warp; one issue per warp instruction.
//! * **Control divergence** — a reconvergence stack with
//!   immediate-post-dominator rejoin ([`exec::simt`]) serializes divergent
//!   paths exactly as SIMT hardware does.
//! * **Memory coalescing** — warp accesses to global memory are grouped
//!   into aligned transactions; scattered (row-major) request buffers pay
//!   up to 32× the transactions of transposed (column-major) buffers.
//! * **Device timing** — [`gpu`] converts measured cycles and DRAM traffic
//!   into kernel latencies for a parameterized device (GTX Titan preset).
//!
//! The same IR also runs on a scalar interpreter ([`exec::scalar`]) that
//! models a CPU core and emits dynamic basic-block traces — the paper's
//! "standalone C implementation" counterpart, and the input to the
//! request-similarity study.
//!
//! ## Quick tour
//!
//! ```
//! use rhythm_simt::ir::{ProgramBuilder, BinOp};
//! use rhythm_simt::exec::LaunchConfig;
//! use rhythm_simt::gpu::{Gpu, GpuConfig};
//! use rhythm_simt::mem::{ConstPool, DeviceMemory};
//!
//! // Each lane doubles its slot of a global array.
//! let mut b = ProgramBuilder::new("double");
//! let gid = b.global_id();
//! let four = b.imm(4);
//! let addr = b.bin(BinOp::Mul, gid, four);
//! let v = b.ld_global_word(addr, 0);
//! let two = b.imm(2);
//! let doubled = b.bin(BinOp::Mul, v, two);
//! b.st_global_word(addr, 0, doubled);
//! b.halt();
//! let kernel = b.build()?;
//!
//! let mut mem = DeviceMemory::new(1024 * 4);
//! for i in 0..1024 {
//!     mem.write_word(i * 4, i)?;
//! }
//! let gpu = Gpu::new(GpuConfig::gtx_titan());
//! let result = gpu.launch(&kernel, &LaunchConfig::new(1024, []),
//!                         &mut mem, &ConstPool::new())?;
//! assert_eq!(mem.read_word(10 * 4)?, 20);
//! println!("kernel took {:.2} µs", result.time_s * 1e6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod gpu;
pub mod ir;
pub mod mem;
pub mod stats;
pub mod streams;
pub mod transpose;

pub use exec::plan::{plan_cache_stats, plan_for, ExecPlan};
pub use exec::simt::{execute_plan_workers_traced, execute_simt_legacy_workers, warp_arena_stats};
pub use exec::{AccessKind, ExecError, FootprintSpec, GateRejection, LaunchConfig, WARP_SIZE};
pub use gpu::{Gpu, GpuConfig, LaunchGate, LaunchResult};
pub use ir::{Program, ProgramBuilder};
pub use mem::{ConstPool, DeviceMemory, MemError, SharedMem};
pub use stats::{DivergenceStats, KernelStats, ScalarStats};
