//! Stream scheduling model: HyperQ vs single hardware work queue.
//!
//! Rhythm keeps many cohorts in flight, each as a CUDA stream of dependent
//! kernels. Pre-Kepler devices expose a single hardware queue, so kernels
//! from *different* streams that happen to be enqueued back-to-back create
//! false dependencies and serialize. Kepler's HyperQ provides 32 hardware
//! queues, eliminating the false dependencies (paper §6.4 "HyperQ").
//!
//! [`schedule`] replays an enqueue-ordered list of kernel launches under a
//! given queue count and concurrency limit and reports the makespan and
//! per-op timing, letting `rhythm-bench` reproduce the GTX 690 vs Titan
//! comparison.

use serde::{Deserialize, Serialize};

/// One kernel launch in enqueue order.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StreamOp {
    /// Logical stream (cohort pipeline) id; ops in one stream serialize.
    pub stream: u32,
    /// Modelled execution time of this kernel, in seconds.
    pub duration_s: f64,
    /// Label for reports (e.g. `"parse"`, `"process0"`, `"response"`).
    pub label: &'static str,
}

/// Timing assigned to one op by [`schedule`].
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct OpTiming {
    /// Start time in seconds from queue-empty.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

/// Result of replaying a launch sequence.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-op start/end, in input order.
    pub timings: Vec<OpTiming>,
    /// Total time until the last kernel completes.
    pub makespan_s: f64,
    /// Ops whose start was delayed by a *false* dependency (head-of-line
    /// blocking behind an unrelated stream in the same hardware queue).
    pub false_dependency_stalls: u64,
}

/// Replay `ops` (in enqueue order) onto a device with `hw_queues` hardware
/// queues and at most `concurrency` kernels resident at once.
///
/// Streams are assigned to hardware queues round-robin (`stream %
/// hw_queues`), as the CUDA driver does. Within a hardware queue, a kernel
/// cannot start before the previous kernel in that queue has *completed* —
/// this is the false-dependency behaviour when the queue multiplexes
/// several streams. True (same-stream) dependencies always hold.
///
/// # Panics
///
/// Panics if `hw_queues == 0` or `concurrency == 0`.
pub fn schedule(ops: &[StreamOp], hw_queues: u32, concurrency: u32) -> Schedule {
    assert!(hw_queues > 0, "need at least one hardware queue");
    assert!(concurrency > 0, "need concurrency of at least one");

    let mut timings = Vec::with_capacity(ops.len());
    let mut stream_free: std::collections::HashMap<u32, f64> = Default::default();
    let mut queue_free: Vec<f64> = vec![0.0; hw_queues as usize];
    // End times of currently modelled executions, for the concurrency cap.
    let mut running: Vec<f64> = Vec::new();
    let mut false_stalls = 0u64;
    let mut makespan = 0.0f64;
    // Which stream last used each hw queue (to classify stalls).
    let mut queue_last_stream: Vec<Option<u32>> = vec![None; hw_queues as usize];

    for op in ops {
        let q = (op.stream % hw_queues) as usize;
        let stream_ready = stream_free.get(&op.stream).copied().unwrap_or(0.0);
        let queue_ready = queue_free[q];

        // Concurrency cap: if `concurrency` kernels are running at the
        // candidate start, wait for the earliest completion.
        let mut start = stream_ready.max(queue_ready);
        loop {
            let active = running.iter().filter(|&&e| e > start).count();
            if active < concurrency as usize {
                break;
            }
            let next_end = running
                .iter()
                .copied()
                .filter(|&e| e > start)
                .fold(f64::INFINITY, f64::min);
            start = next_end;
        }

        if queue_ready > stream_ready
            && queue_last_stream[q].is_some_and(|s| s != op.stream)
            && start == queue_ready
        {
            false_stalls += 1;
        }

        let end = start + op.duration_s;
        timings.push(OpTiming {
            start_s: start,
            end_s: end,
        });
        stream_free.insert(op.stream, end);
        queue_free[q] = end;
        queue_last_stream[q] = Some(op.stream);
        running.push(end);
        makespan = makespan.max(end);
    }

    Schedule {
        timings,
        makespan_s: makespan,
        false_dependency_stalls: false_stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(stream: u32, duration_s: f64) -> StreamOp {
        StreamOp {
            stream,
            duration_s,
            label: "k",
        }
    }

    #[test]
    fn single_stream_serializes() {
        let ops = vec![op(0, 1.0), op(0, 1.0), op(0, 1.0)];
        let s = schedule(&ops, 32, 16);
        assert!((s.makespan_s - 3.0).abs() < 1e-12);
        assert_eq!(s.false_dependency_stalls, 0);
    }

    #[test]
    fn independent_streams_overlap_with_hyperq() {
        let ops = vec![op(0, 1.0), op(1, 1.0), op(2, 1.0), op(3, 1.0)];
        let s = schedule(&ops, 32, 16);
        assert!((s.makespan_s - 1.0).abs() < 1e-12, "fully concurrent");
        assert_eq!(s.false_dependency_stalls, 0);
    }

    #[test]
    fn single_queue_creates_false_dependencies() {
        // Interleaved enqueues of two independent streams on one queue.
        let ops = vec![op(0, 1.0), op(1, 1.0), op(0, 1.0), op(1, 1.0)];
        let s = schedule(&ops, 1, 16);
        assert!((s.makespan_s - 4.0).abs() < 1e-12, "fully serialized");
        assert!(s.false_dependency_stalls >= 2);

        let hyperq = schedule(&ops, 32, 16);
        assert!((hyperq.makespan_s - 2.0).abs() < 1e-12, "streams overlap");
        assert_eq!(hyperq.false_dependency_stalls, 0);
    }

    #[test]
    fn concurrency_cap_limits_overlap() {
        let ops: Vec<_> = (0..8).map(|s| op(s, 1.0)).collect();
        let s = schedule(&ops, 32, 2);
        assert!((s.makespan_s - 4.0).abs() < 1e-12, "pairs of two");
    }

    #[test]
    fn timings_are_per_op_and_ordered() {
        let ops = vec![op(0, 2.0), op(0, 1.0)];
        let s = schedule(&ops, 32, 16);
        assert_eq!(s.timings.len(), 2);
        assert!((s.timings[0].end_s - 2.0).abs() < 1e-12);
        assert!((s.timings[1].start_s - 2.0).abs() < 1e-12);
        assert!((s.timings[1].end_s - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hardware queue")]
    fn zero_queues_panics() {
        schedule(&[], 0, 1);
    }
}
