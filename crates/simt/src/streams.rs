//! Stream scheduling model: HyperQ vs single hardware work queue.
//!
//! Rhythm keeps many cohorts in flight, each as a CUDA stream of dependent
//! kernels. Pre-Kepler devices expose a single hardware queue, so kernels
//! from *different* streams that happen to be enqueued back-to-back create
//! false dependencies and serialize. Kepler's HyperQ provides 32 hardware
//! queues, eliminating the false dependencies (paper §6.4 "HyperQ").
//!
//! [`schedule`] replays an enqueue-ordered list of kernel launches under a
//! given queue count and concurrency limit and reports the makespan and
//! per-op timing, letting `rhythm-bench` reproduce the GTX 690 vs Titan
//! comparison.
//!
//! [`execute_streams`] is the execution counterpart of the timing model:
//! it actually runs kernel launches from independent streams concurrently
//! on a host worker pool, serializing only the true (same-stream)
//! dependencies.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::exec::{ExecError, LaunchConfig};
use crate::gpu::{Gpu, GpuConfig, LaunchResult};
use crate::ir::Program;
use crate::mem::{ConstPool, DeviceMemory};

/// One kernel launch in enqueue order.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StreamOp {
    /// Logical stream (cohort pipeline) id; ops in one stream serialize.
    pub stream: u32,
    /// Modelled execution time of this kernel, in seconds.
    pub duration_s: f64,
    /// Label for reports (e.g. `"parse"`, `"process0"`, `"response"`).
    pub label: &'static str,
}

/// Timing assigned to one op by [`schedule`].
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct OpTiming {
    /// Start time in seconds from queue-empty.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

/// Result of replaying a launch sequence.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-op start/end, in input order.
    pub timings: Vec<OpTiming>,
    /// Total time until the last kernel completes.
    pub makespan_s: f64,
    /// Ops whose start was delayed by a *false* dependency (head-of-line
    /// blocking behind an unrelated stream in the same hardware queue).
    pub false_dependency_stalls: u64,
}

/// Replay `ops` (in enqueue order) onto a device with `hw_queues` hardware
/// queues and at most `concurrency` kernels resident at once.
///
/// Streams are assigned to hardware queues round-robin (`stream %
/// hw_queues`), as the CUDA driver does. Within a hardware queue, a kernel
/// cannot start before the previous kernel in that queue has *completed* —
/// this is the false-dependency behaviour when the queue multiplexes
/// several streams. True (same-stream) dependencies always hold.
///
/// # Panics
///
/// Panics if `hw_queues == 0` or `concurrency == 0`.
pub fn schedule(ops: &[StreamOp], hw_queues: u32, concurrency: u32) -> Schedule {
    assert!(hw_queues > 0, "need at least one hardware queue");
    assert!(concurrency > 0, "need concurrency of at least one");

    let mut timings = Vec::with_capacity(ops.len());
    let mut stream_free: std::collections::HashMap<u32, f64> = Default::default();
    let mut queue_free: Vec<f64> = vec![0.0; hw_queues as usize];
    // End times of currently modelled executions, for the concurrency cap.
    let mut running: Vec<f64> = Vec::new();
    let mut false_stalls = 0u64;
    let mut makespan = 0.0f64;
    // Which stream last used each hw queue (to classify stalls).
    let mut queue_last_stream: Vec<Option<u32>> = vec![None; hw_queues as usize];

    for op in ops {
        let q = (op.stream % hw_queues) as usize;
        let stream_ready = stream_free.get(&op.stream).copied().unwrap_or(0.0);
        let queue_ready = queue_free[q];

        // Concurrency cap: if `concurrency` kernels are running at the
        // candidate start, wait for the earliest completion.
        let mut start = stream_ready.max(queue_ready);
        loop {
            let active = running.iter().filter(|&&e| e > start).count();
            if active < concurrency as usize {
                break;
            }
            let next_end = running
                .iter()
                .copied()
                .filter(|&e| e > start)
                .fold(f64::INFINITY, f64::min);
            start = next_end;
        }

        if queue_ready > stream_ready
            && queue_last_stream[q].is_some_and(|s| s != op.stream)
            && start == queue_ready
        {
            false_stalls += 1;
        }

        let end = start + op.duration_s;
        timings.push(OpTiming {
            start_s: start,
            end_s: end,
        });
        stream_free.insert(op.stream, end);
        queue_free[q] = end;
        queue_last_stream[q] = Some(op.stream);
        running.push(end);
        makespan = makespan.max(end);
    }

    Schedule {
        timings,
        makespan_s: makespan,
        false_dependency_stalls: false_stalls,
    }
}

/// One execution stream: a memory image plus the kernels that run against
/// it in order. Mirrors a CUDA stream holding one cohort's pipeline of
/// dependent kernels.
#[derive(Debug)]
pub struct ExecStream<'a> {
    /// Logical stream (cohort pipeline) id, for reports.
    pub stream: u32,
    /// The stream's device image; every kernel of this stream runs
    /// against it, so true (same-stream) dependencies chain naturally.
    pub mem: DeviceMemory,
    /// Constant pool shared by the stream's kernels.
    pub pool: &'a ConstPool,
    /// Kernels in enqueue order: `(label, program, launch config)`.
    pub kernels: Vec<(&'static str, &'a Program, LaunchConfig)>,
}

/// Result of one stream executed by [`execute_streams`].
#[derive(Debug)]
pub struct StreamExecResult {
    /// The stream id.
    pub stream: u32,
    /// The memory image after all of the stream's kernels ran.
    pub mem: DeviceMemory,
    /// Per-kernel stats and modelled latency, in enqueue order.
    pub launches: Vec<(&'static str, LaunchResult)>,
}

/// Execute independent streams concurrently on `workers` host threads
/// (`0` = one per available core), each stream's kernels in order.
///
/// This is the execution counterpart of [`schedule`]: streams are claimed
/// by workers through a dynamic counter and run truly concurrently (the
/// HyperQ behaviour), while kernels within a stream serialize on the
/// stream's memory image. Kernels execute with serial warps here —
/// stream-level parallelism already occupies the pool — and each stream
/// owns its image, so results are bit-identical at any worker count.
///
/// Results come back in the input order of `streams`.
///
/// # Errors
///
/// Returns the error of the earliest (by input order) faulting stream.
/// Later kernels of a faulting stream never run; other streams always run
/// to completion, so the reported error does not depend on scheduling.
pub fn execute_streams(
    config: &GpuConfig,
    streams: Vec<ExecStream<'_>>,
    workers: usize,
) -> Result<Vec<StreamExecResult>, ExecError> {
    // Stream-level parallelism is the point here; run warps serially.
    let gpu = Gpu::new(config.clone().with_workers(1));
    let mut results = execute_streams_on(&gpu, streams, workers);
    // Per-stream outcomes collapse to the earliest (by input order) fault.
    let mut outcomes = Vec::with_capacity(results.len());
    for r in results.drain(..) {
        outcomes.push(r?);
    }
    Ok(outcomes)
}

/// [`execute_streams`] against a caller-prepared [`Gpu`] (keeping its
/// verification gate, plan cache, and worker configuration), with
/// per-stream outcomes instead of a collapsed first error.
///
/// Results come back in the input order of `streams`; a faulting stream
/// yields `Err` in its own slot and never perturbs the other streams.
/// This is the entry point for serving paths that launch many cohorts
/// concurrently and must answer each cohort's connections individually.
pub fn execute_streams_on(
    gpu: &Gpu,
    streams: Vec<ExecStream<'_>>,
    workers: usize,
) -> Vec<Result<StreamExecResult, ExecError>> {
    let nstreams = streams.len();
    let workers = crate::exec::simt::resolve_workers(workers).min(nstreams.max(1));

    let run_stream = |s: ExecStream<'_>| -> Result<StreamExecResult, ExecError> {
        let ExecStream {
            stream,
            mut mem,
            pool,
            kernels,
        } = s;
        let mut launches = Vec::with_capacity(kernels.len());
        for (label, program, cfg) in kernels {
            let result = gpu.launch(program, &cfg, &mut mem, pool)?;
            launches.push((label, result));
        }
        Ok(StreamExecResult {
            stream,
            mem,
            launches,
        })
    };

    let mut results: Vec<(usize, Result<StreamExecResult, ExecError>)> = if workers <= 1 {
        streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i, run_stream(s)))
            .collect()
    } else {
        let slots: Vec<std::sync::Mutex<Option<(usize, ExecStream<'_>)>>> = streams
            .into_iter()
            .enumerate()
            .map(|p| std::sync::Mutex::new(Some(p)))
            .collect();
        let next = AtomicUsize::new(0);
        let outs: Vec<Vec<(usize, Result<StreamExecResult, ExecError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let slots = &slots;
                        let run_stream = &run_stream;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= nstreams {
                                    break;
                                }
                                let (idx, s) = slots[i]
                                    .lock()
                                    .expect("stream slot lock")
                                    .take()
                                    .expect("stream claimed once");
                                out.push((idx, run_stream(s)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("stream worker panicked"))
                    .collect()
            });
        outs.into_iter().flatten().collect()
    };

    results.sort_unstable_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, ProgramBuilder};

    fn op(stream: u32, duration_s: f64) -> StreamOp {
        StreamOp {
            stream,
            duration_s,
            label: "k",
        }
    }

    #[test]
    fn single_stream_serializes() {
        let ops = vec![op(0, 1.0), op(0, 1.0), op(0, 1.0)];
        let s = schedule(&ops, 32, 16);
        assert!((s.makespan_s - 3.0).abs() < 1e-12);
        assert_eq!(s.false_dependency_stalls, 0);
    }

    #[test]
    fn independent_streams_overlap_with_hyperq() {
        let ops = vec![op(0, 1.0), op(1, 1.0), op(2, 1.0), op(3, 1.0)];
        let s = schedule(&ops, 32, 16);
        assert!((s.makespan_s - 1.0).abs() < 1e-12, "fully concurrent");
        assert_eq!(s.false_dependency_stalls, 0);
    }

    #[test]
    fn single_queue_creates_false_dependencies() {
        // Interleaved enqueues of two independent streams on one queue.
        let ops = vec![op(0, 1.0), op(1, 1.0), op(0, 1.0), op(1, 1.0)];
        let s = schedule(&ops, 1, 16);
        assert!((s.makespan_s - 4.0).abs() < 1e-12, "fully serialized");
        assert!(s.false_dependency_stalls >= 2);

        let hyperq = schedule(&ops, 32, 16);
        assert!((hyperq.makespan_s - 2.0).abs() < 1e-12, "streams overlap");
        assert_eq!(hyperq.false_dependency_stalls, 0);
    }

    #[test]
    fn concurrency_cap_limits_overlap() {
        let ops: Vec<_> = (0..8).map(|s| op(s, 1.0)).collect();
        let s = schedule(&ops, 32, 2);
        assert!((s.makespan_s - 4.0).abs() < 1e-12, "pairs of two");
    }

    #[test]
    fn timings_are_per_op_and_ordered() {
        let ops = vec![op(0, 2.0), op(0, 1.0)];
        let s = schedule(&ops, 32, 16);
        assert_eq!(s.timings.len(), 2);
        assert!((s.timings[0].end_s - 2.0).abs() < 1e-12);
        assert!((s.timings[1].start_s - 2.0).abs() < 1e-12);
        assert!((s.timings[1].end_s - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hardware queue")]
    fn zero_queues_panics() {
        schedule(&[], 0, 1);
    }

    /// Build a kernel adding `delta` to every word of its image.
    fn add_kernel(delta: u32) -> Program {
        let mut b = ProgramBuilder::new("add");
        let g = b.global_id();
        let four = b.imm(4);
        let addr = b.bin(BinOp::Mul, g, four);
        let v = b.ld_global_word(addr, 0);
        let d = b.imm(delta);
        let v2 = b.bin(BinOp::Add, v, d);
        b.st_global_word(addr, 0, v2);
        b.halt();
        b.build().unwrap()
    }

    fn outcome_fingerprint(o: &[StreamExecResult]) -> Vec<(u32, Vec<u8>, u64)> {
        o.iter()
            .map(|x| {
                (
                    x.stream,
                    x.mem.as_bytes().to_vec(),
                    x.launches
                        .iter()
                        .map(|(_, r)| r.stats.warp_instructions)
                        .sum(),
                )
            })
            .collect()
    }

    /// Dependent kernels within a stream chain through the stream's
    /// image; results are identical at any worker count and in input
    /// order.
    #[test]
    fn execute_streams_chains_and_is_deterministic() {
        let k1 = add_kernel(1);
        let k10 = add_kernel(10);
        let pool = ConstPool::new();
        let mk_streams = || {
            (0..4u32)
                .map(|stream| ExecStream {
                    stream,
                    mem: DeviceMemory::new(64 * 4),
                    pool: &pool,
                    kernels: vec![
                        ("a", &k1, LaunchConfig::new(64, [])),
                        ("b", &k10, LaunchConfig::new(64, [])),
                    ],
                })
                .collect::<Vec<_>>()
        };
        let cfg = GpuConfig::gtx_titan();
        let serial = execute_streams(&cfg, mk_streams(), 1).unwrap();
        assert_eq!(serial.len(), 4);
        // The second kernel saw the first one's writes: 0 + 1 + 10.
        assert_eq!(serial[0].mem.read_word(0).unwrap(), 11);
        assert_eq!(serial[0].launches.len(), 2);
        assert_eq!(serial[0].launches[1].0, "b");
        let base = outcome_fingerprint(&serial);
        for workers in [2usize, 4, 8] {
            let par = execute_streams(&cfg, mk_streams(), workers).unwrap();
            assert_eq!(
                outcome_fingerprint(&par),
                base,
                "stream outcomes differ at {workers} workers"
            );
        }
    }

    /// A fault stops the faulting stream but the error is the same at any
    /// worker count.
    #[test]
    fn execute_streams_error_deterministic() {
        let k = add_kernel(1);
        let pool = ConstPool::new();
        let mk = |stream: u32, mem_words: usize| ExecStream {
            stream,
            mem: DeviceMemory::new(mem_words * 4),
            pool: &pool,
            kernels: vec![("x", &k, LaunchConfig::new(64, []))],
        };
        // Stream 1: 64 lanes vs 8 words -> faults.
        let mk_streams = || vec![mk(0, 64), mk(1, 8), mk(2, 64)];
        let cfg = GpuConfig::gtx_titan();
        let serial = execute_streams(&cfg, mk_streams(), 1).unwrap_err();
        for workers in [2usize, 4] {
            let err = execute_streams(&cfg, mk_streams(), workers).unwrap_err();
            assert_eq!(err, serial, "error differs at {workers} workers");
        }
    }
}
