//! Execution statistics reported by the scalar and SIMT executors.

use serde::{Deserialize, Serialize};

/// Statistics from one scalar (single-lane) execution.
#[derive(Clone, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ScalarStats {
    /// Dynamic instructions executed (including terminators).
    pub instructions: u64,
    /// Dynamic loads from any memory space.
    pub loads: u64,
    /// Dynamic stores to any memory space.
    pub stores: u64,
    /// Basic blocks entered.
    pub blocks: u64,
}

impl ScalarStats {
    /// Fold another run's counters into this one.
    pub fn merge(&mut self, other: &ScalarStats) {
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.blocks += other.blocks;
    }
}

/// Warp-divergence counters from a SIMT execution.
#[derive(Clone, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DivergenceStats {
    /// Conditional branches executed (per warp).
    pub branches: u64,
    /// Branches where the warp's lanes disagreed.
    pub divergent_branches: u64,
    /// Reconvergence events (divergence stack pops back to a union entry).
    pub reconvergences: u64,
    /// Deepest divergence-stack depth observed.
    pub max_stack_depth: u32,
}

impl DivergenceStats {
    /// Fraction of branches that diverged (0 when no branches ran).
    pub fn divergence_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.divergent_branches as f64 / self.branches as f64
        }
    }

    /// Fold another warp's counters into this one.
    pub fn merge(&mut self, other: &DivergenceStats) {
        self.branches += other.branches;
        self.divergent_branches += other.divergent_branches;
        self.reconvergences += other.reconvergences;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
    }
}

/// Statistics from one kernel launch on the SIMT engine.
#[derive(Clone, Default, PartialEq, Debug, Serialize, Deserialize)]
pub struct KernelStats {
    /// Lanes in the launch.
    pub lanes: u32,
    /// Warps in the launch.
    pub warps: u32,
    /// Warp-level instruction issues (one per instruction per warp).
    pub warp_instructions: u64,
    /// Lane-level instructions (warp issues weighted by active lanes).
    pub lane_instructions: u64,
    /// Global-memory warp accesses.
    pub mem_accesses: u64,
    /// Global-memory transactions after coalescing.
    pub mem_transactions: u64,
    /// DRAM traffic implied by the transactions, in bytes.
    pub dram_bytes: u64,
    /// Constant-memory replays (serialized divergent constant reads).
    pub const_replays: u64,
    /// Extra cycles spent serializing same-address atomics.
    pub atomic_serializations: u64,
    /// Total issue cycles summed over all warps.
    pub warp_cycles: u64,
    /// Issue cycles of the slowest warp (kernel critical path when the
    /// device is underfilled).
    pub max_warp_cycles: u64,
    /// Divergence counters aggregated over warps.
    pub divergence: DivergenceStats,
}

impl KernelStats {
    /// SIMD efficiency: active-lane instructions over the theoretical peak
    /// if every issue had all `warp_size` lanes active. 1.0 = perfectly
    /// converged cohort.
    pub fn simd_efficiency(&self, warp_size: u32) -> f64 {
        if self.warp_instructions == 0 {
            return 0.0;
        }
        self.lane_instructions as f64 / (self.warp_instructions as f64 * warp_size as f64)
    }

    /// Coalescing quality: 1.0 means every warp global access needed a
    /// single transaction; higher values mean replayed (scattered) access.
    pub fn transactions_per_access(&self) -> f64 {
        if self.mem_accesses == 0 {
            return 0.0;
        }
        self.mem_transactions as f64 / self.mem_accesses as f64
    }

    /// Fold another launch (e.g. another warp or stage) into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.lanes += other.lanes;
        self.warps += other.warps;
        self.warp_instructions += other.warp_instructions;
        self.lane_instructions += other.lane_instructions;
        self.mem_accesses += other.mem_accesses;
        self.mem_transactions += other.mem_transactions;
        self.dram_bytes += other.dram_bytes;
        self.const_replays += other.const_replays;
        self.atomic_serializations += other.atomic_serializations;
        self.warp_cycles += other.warp_cycles;
        self.max_warp_cycles = self.max_warp_cycles.max(other.max_warp_cycles);
        self.divergence.merge(&other.divergence);
    }
}

/// Number of `gran`-byte aligned segments (transactions or sectors)
/// touched by the contiguous byte range `[addr, addr + len)`.
///
/// `gran` must be a power of two. This is the closed form of the
/// coalescing model's distinct-segment count for a dense ascending
/// address run — the executor's wide-copy fast path uses it to charge
/// a block store in O(1) with exactly the counts the per-byte
/// interpreted path would produce.
pub fn contiguous_segments(addr: u32, len: u32, gran: u32) -> u64 {
    debug_assert!(gran.is_power_of_two(), "granularity must be a power of two");
    if len == 0 {
        return 0;
    }
    let shift = gran.trailing_zeros();
    let first = (addr as u64) >> shift;
    let last = (addr as u64 + len as u64 - 1) >> shift;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_segments_closed_form_matches_naive() {
        // Closed form must equal the number of distinct addr>>shift values
        // over every byte of the range, for assorted ranges/granularities.
        for &gran in &[32u32, 128] {
            let shift = gran.trailing_zeros();
            for &(addr, len) in &[
                (0u32, 1u32),
                (0, 32),
                (31, 2),
                (127, 1),
                (127, 2),
                (100, 300),
                (4096, 128),
                (u32::MAX - 7, 8),
            ] {
                let naive = {
                    let mut segs: Vec<u64> = (0..len as u64)
                        .map(|i| (addr as u64 + i) >> shift)
                        .collect();
                    segs.dedup();
                    segs.len() as u64
                };
                assert_eq!(
                    contiguous_segments(addr, len, gran),
                    naive,
                    "addr={addr} len={len} gran={gran}"
                );
            }
        }
        assert_eq!(contiguous_segments(17, 0, 32), 0);
    }

    #[test]
    fn scalar_merge() {
        let mut a = ScalarStats {
            instructions: 10,
            loads: 2,
            stores: 3,
            blocks: 4,
        };
        a.merge(&ScalarStats {
            instructions: 1,
            loads: 1,
            stores: 1,
            blocks: 1,
        });
        assert_eq!(a.instructions, 11);
        assert_eq!(a.blocks, 5);
    }

    #[test]
    fn divergence_rate() {
        let d = DivergenceStats {
            branches: 8,
            divergent_branches: 2,
            ..Default::default()
        };
        assert!((d.divergence_rate() - 0.25).abs() < 1e-12);
        assert_eq!(DivergenceStats::default().divergence_rate(), 0.0);
    }

    #[test]
    fn simd_efficiency_bounds() {
        let k = KernelStats {
            warp_instructions: 10,
            lane_instructions: 320,
            ..Default::default()
        };
        assert!((k.simd_efficiency(32) - 1.0).abs() < 1e-12);
        assert_eq!(KernelStats::default().simd_efficiency(32), 0.0);
    }

    #[test]
    fn transactions_per_access() {
        let k = KernelStats {
            mem_accesses: 4,
            mem_transactions: 8,
            ..Default::default()
        };
        assert!((k.transactions_per_access() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_merge_takes_max_of_max() {
        let mut a = KernelStats {
            max_warp_cycles: 5,
            warp_cycles: 5,
            ..Default::default()
        };
        a.merge(&KernelStats {
            max_warp_cycles: 9,
            warp_cycles: 9,
            ..Default::default()
        });
        assert_eq!(a.max_warp_cycles, 9);
        assert_eq!(a.warp_cycles, 14);
    }
}
