//! Device memory: global DRAM image and the read-only constant pool.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::ir::MemSpace;

/// Error raised by a kernel memory access.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field names are self-describing
pub enum MemError {
    /// Access outside the allocated space.
    OutOfBounds {
        space: MemSpace,
        addr: u32,
        len: u32,
        size: usize,
    },
    /// Write (or atomic) to read-only constant memory.
    ReadOnly { space: MemSpace },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds {
                space,
                addr,
                len,
                size,
            } => write!(
                f,
                "out-of-bounds {space:?} access at {addr:#x}+{len} (size {size})"
            ),
            MemError::ReadOnly { space } => write!(f, "write to read-only {space:?} memory"),
        }
    }
}

impl std::error::Error for MemError {}

/// The device's global (DRAM) address space: a flat, byte-addressable image.
///
/// # Example
///
/// ```
/// use rhythm_simt::mem::DeviceMemory;
///
/// let mut mem = DeviceMemory::new(64);
/// mem.write_word(0, 0xDEAD_BEEF).unwrap();
/// assert_eq!(mem.read_word(0).unwrap(), 0xDEAD_BEEF);
/// assert_eq!(mem.read_byte(0).unwrap(), 0xEF); // little endian
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DeviceMemory {
    bytes: Vec<u8>,
}

impl DeviceMemory {
    /// Allocate `size` zeroed bytes of global memory.
    pub fn new(size: usize) -> Self {
        DeviceMemory {
            bytes: vec![0; size],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the space has zero bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        let a = addr as usize;
        let end = a.checked_add(len as usize).ok_or(MemError::OutOfBounds {
            space: MemSpace::Global,
            addr,
            len,
            size: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(MemError::OutOfBounds {
                space: MemSpace::Global,
                addr,
                len,
                size: self.bytes.len(),
            });
        }
        Ok(a)
    }

    /// Read one byte (zero-extended).
    pub fn read_byte(&self, addr: u32) -> Result<u32, MemError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a] as u32)
    }

    /// Read a little-endian word.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ]))
    }

    /// Write one byte (low 8 bits of `value`).
    pub fn write_byte(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = value as u8;
        Ok(())
    }

    /// Write a little-endian word.
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Borrow a byte range.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the allocation.
    pub fn slice(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        let a = self.check(addr, len)?;
        Ok(&self.bytes[a..a + len as usize])
    }

    /// Mutably borrow a byte range.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the allocation.
    pub fn slice_mut(&mut self, addr: u32, len: u32) -> Result<&mut [u8], MemError> {
        let a = self.check(addr, len)?;
        Ok(&mut self.bytes[a..a + len as usize])
    }

    /// Copy a host byte slice into global memory at `addr`.
    pub fn load(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        let a = self.check(addr, data.len() as u32)?;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// The full backing image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A lock-free shared view over this image for concurrent warp
    /// execution. While the view lives, all access goes through it; the
    /// exclusive borrow guarantees no plain reads or writes race with the
    /// view's atomic ones.
    pub fn shared(&mut self) -> SharedMem<'_> {
        SharedMem::new(&mut self.bytes)
    }
}

/// Number of address stripes used to serialize read-modify-write
/// (atomic-add) operations in a [`SharedMem`].
const ATOMIC_STRIPES: usize = 64;

/// Interior-mutability view of a [`DeviceMemory`] image that multiple warp
/// workers can read and write concurrently without locks.
///
/// Plain loads and stores are `Relaxed` atomic byte operations: warps that
/// touch disjoint lanes (the cohort layout guarantee) proceed completely
/// lock-free, and racy programs yield unspecified *values* rather than
/// undefined behavior. Read-modify-write operations
/// ([`SharedMem::atomic_add_word`]) serialize through a striped lock table
/// so cross-warp atomics never lose updates.
///
/// # Example
///
/// ```
/// use rhythm_simt::mem::DeviceMemory;
///
/// let mut mem = DeviceMemory::new(8);
/// {
///     let view = mem.shared();
///     view.write_word(0, 41).unwrap();
///     assert_eq!(view.atomic_add_word(0, 1).unwrap(), 41);
/// }
/// assert_eq!(mem.read_word(0).unwrap(), 42);
/// ```
pub struct SharedMem<'a> {
    bytes: &'a [AtomicU8],
    stripes: Vec<Mutex<()>>,
}

impl fmt::Debug for SharedMem<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedMem")
            .field("len", &self.bytes.len())
            .finish()
    }
}

impl<'a> SharedMem<'a> {
    fn new(bytes: &'a mut [u8]) -> Self {
        // SAFETY: `AtomicU8` has the same size and alignment as `u8`
        // (guaranteed by its documentation), and the exclusive `&mut`
        // borrow means no other plain reference can observe these bytes
        // for the view's lifetime, so every access is atomic.
        let bytes = unsafe { &*(bytes as *mut [u8] as *const [AtomicU8]) };
        SharedMem {
            bytes,
            stripes: (0..ATOMIC_STRIPES).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the space has zero bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        let a = addr as usize;
        let end = a.checked_add(len as usize).ok_or(MemError::OutOfBounds {
            space: MemSpace::Global,
            addr,
            len,
            size: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(MemError::OutOfBounds {
                space: MemSpace::Global,
                addr,
                len,
                size: self.bytes.len(),
            });
        }
        Ok(a)
    }

    /// Read one byte (zero-extended).
    pub fn read_byte(&self, addr: u32) -> Result<u32, MemError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a].load(Ordering::Relaxed) as u32)
    }

    /// Read a little-endian word.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[a].load(Ordering::Relaxed),
            self.bytes[a + 1].load(Ordering::Relaxed),
            self.bytes[a + 2].load(Ordering::Relaxed),
            self.bytes[a + 3].load(Ordering::Relaxed),
        ]))
    }

    /// Write one byte (low 8 bits of `value`).
    pub fn write_byte(&self, addr: u32, value: u32) -> Result<(), MemError> {
        let a = self.check(addr, 1)?;
        self.bytes[a].store(value as u8, Ordering::Relaxed);
        Ok(())
    }

    /// Write a little-endian word.
    pub fn write_word(&self, addr: u32, value: u32) -> Result<(), MemError> {
        let a = self.check(addr, 4)?;
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.bytes[a + i].store(b, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Atomically add `value` to the word at `addr`, returning the old
    /// value. Lost-update-free across warp workers: the read-modify-write
    /// holds the stripe lock covering `addr`.
    pub fn atomic_add_word(&self, addr: u32, value: u32) -> Result<u32, MemError> {
        self.check(addr, 4)?;
        let stripe = (addr as usize / 4) % ATOMIC_STRIPES;
        let _guard = self.stripes[stripe].lock().expect("stripe lock poisoned");
        let old = self.read_word(addr)?;
        self.write_word(addr, old.wrapping_add(value))?;
        Ok(old)
    }

    /// Fill `len` bytes starting at `addr` with `value`. Bounds are
    /// checked once up front; the stores are the same `Relaxed` atomic
    /// byte stores as [`SharedMem::write_byte`], so a fill is equivalent
    /// to (and safe to interleave with) per-byte writes from other warps.
    /// Used by the executor's wide-copy fast path to splat template
    /// bytes across a contiguous run of lane buffers.
    pub fn fill(&self, addr: u32, len: u32, value: u8) -> Result<(), MemError> {
        let a = self.check(addr, len)?;
        for b in &self.bytes[a..a + len as usize] {
            b.store(value, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Read-only constant memory holding interned template strings.
///
/// Kernels reference constant data by `(offset, len)` immediates; the pool
/// interns identical strings so shared HTML fragments are stored once,
/// mirroring CUDA `__constant__` usage in the paper's prototype.
///
/// # Example
///
/// ```
/// use rhythm_simt::mem::ConstPool;
///
/// let mut pool = ConstPool::new();
/// let (off, len) = pool.intern_str("<html>");
/// assert_eq!(len, 6);
/// let again = pool.intern_str("<html>");
/// assert_eq!((off, len), again, "identical strings are interned once");
/// ```
#[derive(Clone, Default, Debug)]
pub struct ConstPool {
    data: Vec<u8>,
    interned: HashMap<Vec<u8>, u32>,
}

impl ConstPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a byte string, returning `(offset, len)`.
    pub fn intern(&mut self, bytes: &[u8]) -> (u32, u32) {
        if let Some(&off) = self.interned.get(bytes) {
            return (off, bytes.len() as u32);
        }
        let off = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.interned.insert(bytes.to_vec(), off);
        (off, bytes.len() as u32)
    }

    /// Intern a UTF-8 string, returning `(offset, len)`.
    pub fn intern_str(&mut self, s: &str) -> (u32, u32) {
        self.intern(s.as_bytes())
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is outside the pool.
    pub fn read_byte(&self, addr: u32) -> Result<u32, MemError> {
        self.data
            .get(addr as usize)
            .map(|&b| b as u32)
            .ok_or(MemError::OutOfBounds {
                space: MemSpace::Const,
                addr,
                len: 1,
                size: self.data.len(),
            })
    }

    /// Read a little-endian word.
    ///
    /// # Errors
    ///
    /// Fails if the word exceeds the pool.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        let a = addr as usize;
        if a + 4 > self.data.len() {
            return Err(MemError::OutOfBounds {
                space: MemSpace::Const,
                addr,
                len: 4,
                size: self.data.len(),
            });
        }
        Ok(u32::from_le_bytes([
            self.data[a],
            self.data[a + 1],
            self.data[a + 2],
            self.data[a + 3],
        ]))
    }

    /// Total pool size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw pool image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let mut m = DeviceMemory::new(8);
        m.write_byte(3, 0x1FF).unwrap();
        assert_eq!(m.read_byte(3).unwrap(), 0xFF, "stores low 8 bits");
    }

    #[test]
    fn word_little_endian() {
        let mut m = DeviceMemory::new(8);
        m.write_word(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_byte(0).unwrap(), 4);
        assert_eq!(m.read_byte(3).unwrap(), 1);
    }

    #[test]
    fn out_of_bounds_read() {
        let m = DeviceMemory::new(4);
        assert!(m.read_word(1).is_err());
        assert!(m.read_byte(4).is_err());
        assert!(m.read_byte(3).is_ok());
    }

    #[test]
    fn overflow_address_rejected() {
        let m = DeviceMemory::new(4);
        assert!(m.read_word(u32::MAX).is_err());
    }

    #[test]
    fn load_and_slice() {
        let mut m = DeviceMemory::new(16);
        m.load(4, b"abcd").unwrap();
        assert_eq!(m.slice(4, 4).unwrap(), b"abcd");
        assert!(m.load(14, b"xyz").is_err());
    }

    #[test]
    fn const_pool_interning() {
        let mut p = ConstPool::new();
        let (o1, l1) = p.intern_str("hello");
        let (o2, _) = p.intern_str("world");
        let (o3, l3) = p.intern_str("hello");
        assert_eq!(o1, o3);
        assert_eq!(l1, l3);
        assert_ne!(o1, o2);
        assert_eq!(p.len(), 10);
        assert_eq!(p.read_byte(o2).unwrap(), b'w' as u32);
    }

    #[test]
    fn const_pool_word_read() {
        let mut p = ConstPool::new();
        let (off, _) = p.intern(&[1, 0, 0, 0]);
        assert_eq!(p.read_word(off).unwrap(), 1);
        assert!(p.read_word(1).is_err());
    }

    #[test]
    fn shared_view_roundtrip_and_bounds() {
        let mut m = DeviceMemory::new(8);
        {
            let v = m.shared();
            v.write_word(0, 0x0102_0304).unwrap();
            assert_eq!(v.read_word(0).unwrap(), 0x0102_0304);
            assert_eq!(v.read_byte(3).unwrap(), 1);
            assert!(v.read_word(5).is_err());
            assert!(v.write_byte(8, 1).is_err());
            assert_eq!(v.len(), 8);
            assert!(!v.is_empty());
        }
        assert_eq!(
            m.read_word(0).unwrap(),
            0x0102_0304,
            "writes land in the image"
        );
    }

    #[test]
    fn shared_atomic_add_no_lost_updates() {
        let mut m = DeviceMemory::new(4);
        let v = m.shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        v.atomic_add_word(0, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(v.read_word(0).unwrap(), 4000);
    }

    #[test]
    fn error_display() {
        let e = MemError::ReadOnly {
            space: MemSpace::Const,
        };
        assert!(e.to_string().contains("read-only"));
    }
}
