//! Buffer transpose: the data-layout transformation at the heart of
//! Rhythm's memory-coalescing strategy (paper §4.3.2).
//!
//! Cohort buffers are logically 2-D: `rows` request streams of `cols`
//! bytes. Row-major layout keeps each request contiguous (what the NIC
//! wants); column-major ("transposed") layout interleaves lanes so warp
//! accesses coalesce (what the GPU wants). This module provides
//!
//! * host-side layout conversions ([`transpose_row_to_col`] /
//!   [`transpose_col_to_row`]) used by the pipeline and by tests, and
//! * [`build_transpose_kernel`], a tiled shared-memory IR kernel
//!   (32×32-byte tiles, coalesced reads *and* writes) whose measured cost
//!   models the on-device response transpose of the paper's Titan B.

use crate::ir::{BinOp, MemSpace, Program, ProgramBuilder, Width};

/// Tile edge for the kernel transpose; one warp owns one tile.
pub const TILE: u32 = 32;

/// Convert a `rows × cols` row-major byte matrix into column-major.
///
/// `src.len()` and `dst.len()` must both be `rows * cols`.
///
/// # Panics
///
/// Panics if the slice lengths do not match `rows * cols`.
pub fn transpose_row_to_col(src: &[u8], dst: &mut [u8], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "src size");
    assert_eq!(dst.len(), rows * cols, "dst size");
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Convert a `rows × cols` column-major byte matrix back to row-major.
///
/// # Panics
///
/// Panics if the slice lengths do not match `rows * cols`.
pub fn transpose_col_to_row(src: &[u8], dst: &mut [u8], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "src size");
    assert_eq!(dst.len(), rows * cols, "dst size");
    for r in 0..rows {
        for c in 0..cols {
            dst[r * cols + c] = src[c * rows + r];
        }
    }
}

/// Build the tiled transpose kernel.
///
/// Launch with `lanes = (rows / 32) * (cols / 32) * 32` (one warp per
/// 32×32 tile) and params `[src_base, dst_base, rows, cols]`. Requires
/// `rows` and `cols` to be multiples of [`TILE`] — cohort sizes and padded
/// response sizes in Rhythm are powers of two, which is exactly why the
/// paper rounds response buffers up to powers of two.
///
/// Semantics: `dst` (a `cols × rows` row-major matrix, i.e. the transposed
/// view) receives `src` (a `rows × cols` row-major matrix):
/// `dst[c * rows + r] = src[r * cols + c]`.
///
/// Shared memory requirement: `TILE * TILE` bytes per warp.
pub fn build_transpose_kernel() -> Program {
    let mut b = ProgramBuilder::new("transpose32");
    let src = b.param(0);
    let dst = b.param(1);
    let rows = b.param(2);
    let cols = b.param(3);
    let lane = b.lane_id();
    let gid = b.global_id();
    let tile_c = b.imm(TILE);

    // warp id = gid / 32; tiles per row-strip = cols / 32
    let wid = b.bin(BinOp::DivU, gid, tile_c);
    let tiles_x = b.bin(BinOp::DivU, cols, tile_c);
    let tile_i = b.bin(BinOp::DivU, wid, tiles_x); // tile row index
    let tile_j = b.bin(BinOp::RemU, wid, tiles_x); // tile col index
    let i0 = b.bin(BinOp::Mul, tile_i, tile_c); // first row of tile
    let j0 = b.bin(BinOp::Mul, tile_j, tile_c); // first col of tile

    // Phase 1: shared[r][lane] = src[(i0+r)*cols + j0+lane] (coalesced
    // reads: fixed row, consecutive columns across lanes).
    let col = b.bin(BinOp::Add, j0, lane);
    b.for_loop(tile_c, |b, r| {
        let row = b.bin(BinOp::Add, i0, r);
        let row_off = b.bin(BinOp::Mul, row, cols);
        let a = b.bin(BinOp::Add, row_off, col);
        let sa = b.bin(BinOp::Add, src, a);
        let v = b.ld(Width::Byte, MemSpace::Global, sa, 0);
        // shared index r*32 + lane
        let sh_row = b.bin(BinOp::Mul, r, tile_c);
        let sh = b.bin(BinOp::Add, sh_row, lane);
        b.st(Width::Byte, MemSpace::Shared, sh, 0, v);
    });

    // Phase 2: dst[(j0+r)*rows + i0+lane] = shared[lane][r] (coalesced
    // writes: consecutive lanes hit consecutive addresses).
    let out_row_base = b.bin(BinOp::Add, i0, lane);
    b.for_loop(tile_c, |b, r| {
        let sh_row = b.bin(BinOp::Mul, lane, tile_c);
        let sh = b.bin(BinOp::Add, sh_row, r);
        let v = b.ld(Width::Byte, MemSpace::Shared, sh, 0);
        let c = b.bin(BinOp::Add, j0, r);
        let c_off = b.bin(BinOp::Mul, c, rows);
        let a = b.bin(BinOp::Add, c_off, out_row_base);
        let da = b.bin(BinOp::Add, dst, a);
        b.st(Width::Byte, MemSpace::Global, da, 0, v);
    });
    b.halt();
    b.build().expect("transpose kernel is structurally valid")
}

/// Lanes needed to launch [`build_transpose_kernel`] over a matrix.
///
/// # Panics
///
/// Panics unless `rows` and `cols` are nonzero multiples of [`TILE`].
pub fn transpose_launch_lanes(rows: u32, cols: u32) -> u32 {
    assert!(
        rows > 0 && cols > 0 && rows.is_multiple_of(TILE) && cols.is_multiple_of(TILE),
        "transpose dimensions must be nonzero multiples of {TILE} (got {rows}x{cols})"
    );
    (rows / TILE) * (cols / TILE) * TILE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::LaunchConfig;
    use crate::gpu::{Gpu, GpuConfig};
    use crate::mem::{ConstPool, DeviceMemory};

    #[test]
    fn host_transpose_roundtrip() {
        let rows = 4;
        let cols = 6;
        let src: Vec<u8> = (0..rows * cols).map(|i| i as u8).collect();
        let mut col = vec![0u8; rows * cols];
        let mut back = vec![0u8; rows * cols];
        transpose_row_to_col(&src, &mut col, rows, cols);
        transpose_col_to_row(&col, &mut back, rows, cols);
        assert_eq!(src, back);
        assert_eq!(col[0], src[0]);
        assert_eq!(col[1], src[cols]); // col-major adjacency = same column
    }

    #[test]
    #[should_panic(expected = "src size")]
    fn host_transpose_checks_sizes() {
        let mut dst = vec![0u8; 4];
        transpose_row_to_col(&[0u8; 3], &mut dst, 2, 2);
    }

    #[test]
    fn kernel_matches_host_transpose() {
        let rows = 64u32;
        let cols = 96u32;
        let n = (rows * cols) as usize;
        let src: Vec<u8> = (0..n).map(|i| (i * 7 + 3) as u8).collect();

        let mut mem = DeviceMemory::new(2 * n);
        mem.load(0, &src).unwrap();
        let kernel = build_transpose_kernel();
        let lanes = transpose_launch_lanes(rows, cols);
        let mut cfg = LaunchConfig::new(lanes, vec![0, n as u32, rows, cols]);
        cfg.shared_bytes = TILE * TILE;
        let gpu = Gpu::new(GpuConfig::gtx_titan());
        let pool = ConstPool::new();
        let res = gpu.launch(&kernel, &cfg, &mut mem, &pool).unwrap();

        let mut expect = vec![0u8; n];
        transpose_row_to_col(&src, &mut expect, rows as usize, cols as usize);
        assert_eq!(mem.slice(n as u32, n as u32).unwrap(), &expect[..]);

        // Tiled transpose must be well coalesced: on average well under 2
        // transactions per warp access.
        assert!(res.stats.transactions_per_access() < 2.0);
    }

    #[test]
    fn launch_lanes_arithmetic() {
        assert_eq!(transpose_launch_lanes(32, 32), 32);
        assert_eq!(transpose_launch_lanes(64, 64), 4 * 32);
        assert_eq!(transpose_launch_lanes(4096, 1024), 4096 * 32 * 4096 / 4096);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn launch_lanes_rejects_unaligned() {
        transpose_launch_lanes(33, 32);
    }
}
