//! End-to-end tests for the sharded multi-reactor front end and the
//! front-end bugfix sweep: response ordering under out-of-order cohort
//! retirement, the idle-backoff poll bound, and write backpressure
//! against stalled readers — all over real TCP sockets.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rhythm_http::{HttpRequest, ResponseBuilder};
use rhythm_net::{
    read_response, send_request, CohortHandler, NetConfig, NetServer, NetStats, ShardedRun,
    ShardedServer,
};

/// Echo handler whose batched entry point retires the cohorts of each
/// flush in REVERSE order — an adversarial stand-in for a device that
/// completes concurrently launched cohorts out of order. The returned
/// replies stay aligned to the input batch, which is all the contract
/// requires; the front end's sequence numbers must do the rest.
struct ReverseEchoHandler {
    /// Cohorts per `execute_many` flush, in flush order.
    batches: Vec<usize>,
}

impl ReverseEchoHandler {
    fn new() -> Self {
        ReverseEchoHandler {
            batches: Vec::new(),
        }
    }
}

fn echo_response(path: &str) -> Vec<u8> {
    let mut b = ResponseBuilder::new(200, "OK");
    b.header("Content-Type", "text/plain");
    b.reserve_content_length();
    b.finish_headers();
    b.write_str(&format!("echo {path}"));
    b.finish()
}

impl CohortHandler for ReverseEchoHandler {
    fn classify(&self, req: &HttpRequest) -> Option<u32> {
        // Key by first path segment character, as in `server_e2e`.
        Some(req.path.as_bytes().get(1).copied().unwrap_or(0) as u32)
    }

    fn execute(&mut self, _key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>> {
        requests.iter().map(|r| echo_response(&r.path)).collect()
    }

    fn execute_many(&mut self, cohorts: &[(u32, Vec<HttpRequest>)]) -> Vec<Vec<Vec<u8>>> {
        self.batches.push(cohorts.len());
        let mut out: Vec<Vec<Vec<u8>>> = (0..cohorts.len()).map(|_| Vec::new()).collect();
        for (i, (key, requests)) in cohorts.iter().enumerate().rev() {
            out[i] = self.execute(*key, requests);
        }
        out
    }
}

/// Harness around a running [`ShardedServer`].
struct Sharded {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<ShardedRun<ReverseEchoHandler>>>,
}

impl Sharded {
    fn start(config: NetConfig, shards: usize) -> Self {
        let handlers: Vec<_> = (0..shards).map(|_| ReverseEchoHandler::new()).collect();
        let server = ShardedServer::bind("127.0.0.1:0", config, handlers).expect("bind");
        let addr = server.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || server.run(&flag));
        Sharded {
            addr,
            stop,
            join: Some(join),
        }
    }

    fn finish(mut self) -> ShardedRun<ReverseEchoHandler> {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("sharded server threads")
    }
}

impl Drop for Sharded {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes()
}

/// Two full same-size cohorts sent in one burst flush together as one
/// `execute_many` batch; the handler retires them in reverse order, yet
/// the connection still sees its responses in request order.
#[test]
fn reversed_batch_retirement_preserves_connection_order() {
    let server = Sharded::start(
        NetConfig {
            cohort_size: 4,
            fill_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        },
        1,
    );
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    // 4×key 'a' then 4×key 'b', all in one write: one read slurps the
    // burst, both cohorts fill in the same poll, and the flush hands the
    // handler a two-cohort batch (which it executes b-first).
    let mut burst = Vec::new();
    let paths: Vec<String> = (0..8)
        .map(|i| format!("/{}{i}", if i < 4 { 'a' } else { 'b' }))
        .collect();
    for p in &paths {
        burst.extend_from_slice(&get(p));
    }
    send_request(&mut conn, &burst).unwrap();
    for p in &paths {
        let resp = read_response(&mut conn, &mut carry).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body(),
            format!("echo {p}").as_bytes(),
            "responses must keep request order under reversed retirement"
        );
    }

    let run = server.finish();
    let total = run.total();
    assert_eq!(total.requests, 8);
    assert_eq!(total.full_launches, 2, "both cohorts launch full");
    assert_eq!(total.responses_dropped, 0);
    let (_, handler) = &run.shards[0];
    assert!(
        handler.batches.iter().any(|&b| b >= 2),
        "the burst must flush as one multi-cohort batch, got {:?}",
        handler.batches
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Affinity routing invariant: whatever the shard count and whatever
    /// mix of cohort keys each connection pipelines, every connection
    /// receives its responses in request order even though the handler
    /// retires each batch's cohorts in reverse.
    #[test]
    fn sharded_pipelining_preserves_per_connection_order(
        shards in 1usize..4,
        seqs in prop::collection::vec(prop::collection::vec(0u32..3, 1..10), 1..4),
    ) {
        let server = Sharded::start(
            NetConfig {
                cohort_size: 4,
                fill_timeout: Duration::from_millis(1),
                ..NetConfig::default()
            },
            shards,
        );
        // One connection per key sequence; each pipelines its whole
        // burst, then reads everything back.
        let mut conns: Vec<(TcpStream, Vec<String>)> = Vec::new();
        for (ci, keys) in seqs.iter().enumerate() {
            let mut conn = connect(server.addr);
            let paths: Vec<String> = keys
                .iter()
                .enumerate()
                .map(|(ri, k)| format!("/{k}c{ci}r{ri}"))
                .collect();
            let mut burst = Vec::new();
            for p in &paths {
                burst.extend_from_slice(&get(p));
            }
            send_request(&mut conn, &burst).unwrap();
            conns.push((conn, paths));
        }
        let total_sent: u64 = conns.iter().map(|(_, p)| p.len() as u64).sum();
        for (conn, paths) in &mut conns {
            let mut carry = Vec::new();
            for p in paths.iter() {
                let resp = read_response(conn, &mut carry).unwrap();
                prop_assert_eq!(resp.status, 200);
                prop_assert_eq!(
                    resp.body(),
                    format!("echo {p}").as_bytes(),
                    "per-connection order must survive sharding + reversal"
                );
            }
        }
        drop(conns);

        let total = server.finish().total();
        prop_assert_eq!(total.requests, total_sent);
        prop_assert_eq!(total.responses, total_sent);
        prop_assert_eq!(total.responses_dropped, 0);
        prop_assert_eq!(total.shed_503, 0);
    }
}

/// The idle loop must back off exponentially, not spin at the initial
/// sleep. 150 ms of idle at a fixed 200 µs sleep would be ~750 polls;
/// with the 200 µs → 5 ms doubling backoff it is ~35.
#[test]
fn idle_backoff_bounds_idle_polls() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig::default(),
        ReverseEchoHandler::new(),
    )
    .expect("bind");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let (stats, _): (NetStats, _) = join.join().expect("server thread");

    assert!(
        stats.idle_polls > 0,
        "an idle server must record idle polls"
    );
    assert!(
        stats.idle_polls < 100,
        "idle backoff must engage: {} polls in ~150ms means the loop \
         is spinning at the initial sleep",
        stats.idle_polls
    );
}

/// Handler returning a 256 KiB body per request, so a modest pipeline of
/// queued responses dwarfs `max_queued_bytes` and decisively exceeds what
/// kernel socket buffers (sndbuf autotunes to ~4 MiB here) can absorb.
struct BulkHandler;

impl CohortHandler for BulkHandler {
    fn classify(&self, _req: &HttpRequest) -> Option<u32> {
        Some(1)
    }

    fn execute(&mut self, _key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>> {
        requests
            .iter()
            .map(|r| {
                let mut b = ResponseBuilder::new(200, "OK");
                b.header("Content-Type", "text/plain");
                b.reserve_content_length();
                b.finish_headers();
                b.write_str(&format!("{}|", r.path));
                b.write_str(&"x".repeat(256 * 1024));
                b.finish()
            })
            .collect()
    }
}

/// A client that trickles requests but reads nothing until the end: the
/// per-connection queued-bytes cap must pause reads (bounding server
/// memory) instead of letting the backlog track the request stream, and
/// every response must still arrive intact and in order once the client
/// finally drains.
#[test]
fn write_backpressure_pauses_reads_and_stays_bounded() {
    const REQUESTS: usize = 48;
    const RESPONSE_BYTES: u64 = 256 * 1024;
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            cohort_size: 4,
            fill_timeout: Duration::from_millis(1),
            max_queued_bytes: 4096,
            max_parse_per_poll: 8,
            ..NetConfig::default()
        },
        BulkHandler,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    let mut conn = connect(addr);
    // Trickle the pipeline in small waves without reading: after the
    // first wave's responses blow past the 4 KiB cap, the reactor must
    // stop reading this socket, so later waves wait in the kernel
    // buffer instead of inflating the server-side backlog.
    for wave in 0..REQUESTS / 4 {
        let mut burst = Vec::new();
        for i in 0..4 {
            burst.extend_from_slice(&get(&format!("/p{:03}", wave * 4 + i)));
        }
        conn.write_all(&burst).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    // Now drain: all responses, in order, bodies intact.
    let mut carry = Vec::new();
    for n in 0..REQUESTS {
        let resp = read_response(&mut conn, &mut carry).unwrap();
        assert_eq!(resp.status, 200);
        let body = resp.body();
        let prefix = format!("/p{n:03}|");
        assert!(
            body.starts_with(prefix.as_bytes()),
            "response {n} out of order or corrupt under backpressure"
        );
        assert_eq!(body.len(), prefix.len() + 256 * 1024);
    }
    drop(conn);

    stop.store(true, Ordering::Relaxed);
    let (stats, _) = join.join().expect("server thread");
    assert_eq!(stats.requests, REQUESTS as u64);
    assert_eq!(stats.responses, REQUESTS as u64);
    assert_eq!(stats.responses_dropped, 0);
    assert!(
        stats.reads_paused > 0,
        "the queued-bytes cap must pause reads at least once"
    );
    assert!(
        stats.peak_queued_bytes >= 4096,
        "a single 256 KiB response exceeds the cap, so the peak must too"
    );
    // Boundedness: without the pause + parse quantum the reactor would
    // slurp the whole pipeline and queue ~all of the 48×256 KiB of
    // responses at once. With them, one poll can add at most
    // `max_parse_per_poll` responses to a sub-cap backlog.
    let total_volume = REQUESTS as u64 * RESPONSE_BYTES;
    assert!(
        stats.peak_queued_bytes < total_volume / 3,
        "peak backlog {} of {} total bytes: backpressure did not bound \
         the queue",
        stats.peak_queued_bytes,
        total_volume
    );
}

/// A peer that pipelines a large response volume and then never reads
/// must not hold its slot forever: once its queued output makes no
/// progress for a full read deadline, the reactor reaps it as a stalled
/// reader, and the server keeps serving other connections.
#[test]
fn stalled_reader_is_reaped_and_server_stays_healthy() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            cohort_size: 4,
            fill_timeout: Duration::from_millis(1),
            max_queued_bytes: 4096,
            read_deadline: Duration::from_millis(150),
            ..NetConfig::default()
        },
        BulkHandler,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    // ~12 MiB of responses against a reader that never reads: far more
    // than loopback socket buffers absorb, so the write side stalls.
    let mut stalled = connect(addr);
    let mut burst = Vec::new();
    for i in 0..48 {
        burst.extend_from_slice(&get(&format!("/s{i:03}")));
    }
    stalled.write_all(&burst).unwrap();
    std::thread::sleep(Duration::from_millis(600));

    // The stalled peer must not have wedged the reactor: a well-behaved
    // connection still gets served.
    let mut healthy = connect(addr);
    let mut carry = Vec::new();
    send_request(&mut healthy, &get("/ok")).unwrap();
    let resp = read_response(&mut healthy, &mut carry).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body().starts_with(b"/ok|"));
    drop(healthy);
    drop(stalled);

    stop.store(true, Ordering::Relaxed);
    let (stats, _) = join.join().expect("server thread");
    assert!(
        stats.reaped_stalled >= 1,
        "a never-reading peer with queued output must be reaped \
         (reaped_stalled={}, reaped_idle={})",
        stats.reaped_stalled,
        stats.reaped_idle
    );
    assert!(
        stats.reads_paused > 0,
        "backpressure must have paused reads before the reap"
    );
}
