//! End-to-end socket tests for `NetServer` with a workload-agnostic echo
//! handler: cohort batching, pipelining, formation timeouts, overload
//! shedding (503), size caps (413), malformed input (400), and idle
//! reaping — all over real TCP connections.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_http::{HttpRequest, ResponseBuilder};
use rhythm_net::{read_response, send_request, CohortHandler, NetConfig, NetServer, NetStats};

/// Echoes each request's path back, recording every cohort's size.
struct EchoHandler {
    cohort_sizes: Vec<usize>,
}

impl CohortHandler for EchoHandler {
    fn classify(&self, req: &HttpRequest) -> Option<u32> {
        // Key by first path segment character so distinct "types" form
        // distinct cohorts; `/none*` is unclassifiable (404 path).
        if req.path.starts_with("/none") {
            None
        } else {
            Some(req.path.as_bytes().get(1).copied().unwrap_or(0) as u32)
        }
    }

    fn execute(&mut self, _key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>> {
        self.cohort_sizes.push(requests.len());
        requests
            .iter()
            .map(|r| {
                let mut b = ResponseBuilder::new(200, "OK");
                b.header("Content-Type", "text/plain");
                b.reserve_content_length();
                b.finish_headers();
                b.write_str(&format!("echo {}", r.path));
                b.finish()
            })
            .collect()
    }
}

struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<(NetStats, EchoHandler)>>,
}

impl Server {
    fn start(config: NetConfig) -> Self {
        let server = NetServer::bind(
            "127.0.0.1:0",
            config,
            EchoHandler {
                cohort_sizes: Vec::new(),
            },
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || server.run(&flag));
        Server {
            addr,
            stop,
            join: Some(join),
        }
    }

    fn finish(mut self) -> (NetStats, EchoHandler) {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes()
}

#[test]
fn single_request_round_trip() {
    let server = Server::start(NetConfig {
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        ..NetConfig::default()
    });
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    send_request(&mut conn, &get("/alpha")).unwrap();
    let resp = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body(), b"echo /alpha");

    let (stats, _) = server.finish();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.responses, 1);
    assert_eq!(
        stats.timeout_launches, 1,
        "lone request launches by timeout"
    );
}

#[test]
fn pipelined_same_type_requests_form_one_cohort() {
    let server = Server::start(NetConfig {
        cohort_size: 4,
        fill_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    // Four same-key requests back-to-back fill one cohort exactly.
    let mut burst = Vec::new();
    for i in 0..4 {
        burst.extend_from_slice(&get(&format!("/same{i}")));
    }
    send_request(&mut conn, &burst).unwrap();
    for i in 0..4 {
        let resp = read_response(&mut conn, &mut carry).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body(),
            format!("echo /same{i}").as_bytes(),
            "responses keep request order"
        );
    }

    let (stats, handler) = server.finish();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.full_launches, 1, "the burst fills one full cohort");
    assert_eq!(handler.cohort_sizes, vec![4]);
    assert!((stats.mean_fill() - 1.0).abs() < 1e-9);
}

#[test]
fn mixed_types_split_into_per_key_cohorts() {
    let server = Server::start(NetConfig {
        cohort_size: 8,
        fill_timeout: Duration::from_millis(1),
        ..NetConfig::default()
    });
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    let mut burst = Vec::new();
    burst.extend_from_slice(&get("/aa"));
    burst.extend_from_slice(&get("/bb"));
    burst.extend_from_slice(&get("/ab"));
    send_request(&mut conn, &burst).unwrap();
    let mut bodies = Vec::new();
    for _ in 0..3 {
        let resp = read_response(&mut conn, &mut carry).unwrap();
        assert_eq!(resp.status, 200);
        bodies.push(String::from_utf8(resp.body().to_vec()).unwrap());
    }
    // Responses come back in request order even though the two cohorts
    // (key 'a': /aa + /ab, key 'b': /bb) retire independently.
    assert_eq!(bodies, vec!["echo /aa", "echo /bb", "echo /ab"]);

    let (stats, handler) = server.finish();
    assert_eq!(stats.cohorts, 2, "one cohort per key");
    let mut sizes = handler.cohort_sizes.clone();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 2]);
}

#[test]
fn unclassified_request_gets_404_without_a_cohort() {
    let server = Server::start(NetConfig::default());
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    send_request(&mut conn, &get("/none/such")).unwrap();
    let resp = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(resp.status, 404);

    let (stats, handler) = server.finish();
    assert_eq!(stats.unclassified, 1);
    assert_eq!(stats.cohorts, 0);
    assert!(handler.cohort_sizes.is_empty());
}

#[test]
fn oversized_request_gets_413_and_close() {
    let server = Server::start(NetConfig {
        max_request_bytes: 128,
        ..NetConfig::default()
    });
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    let huge = format!(
        "GET /x HTTP/1.1\r\nHost: t\r\nX-Pad: {}\r\n\r\n",
        "p".repeat(200)
    );
    send_request(&mut conn, huge.as_bytes()).unwrap();
    let resp = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(resp.status, 413);

    let (stats, _) = server.finish();
    assert_eq!(stats.too_large_413, 1);
}

#[test]
fn lying_content_length_gets_413_not_a_hang() {
    let server = Server::start(NetConfig {
        max_request_bytes: 256,
        ..NetConfig::default()
    });
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    // Declares far more body than the cap; only headers are sent.
    send_request(
        &mut conn,
        b"POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: 1000000\r\n\r\n",
    )
    .unwrap();
    let resp = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(resp.status, 413);

    let (stats, _) = server.finish();
    assert_eq!(stats.too_large_413, 1);
}

#[test]
fn malformed_request_gets_400() {
    let server = Server::start(NetConfig::default());
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    send_request(&mut conn, b"BREW /pot HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let resp = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(resp.status, 400);

    let (stats, _) = server.finish();
    assert_eq!(stats.bad_request_400, 1);
}

#[test]
fn over_cap_connections_are_shed_with_503() {
    let server = Server::start(NetConfig {
        max_connections: 2,
        ..NetConfig::default()
    });
    // Two admitted connections hold their slots (keep-alive, no close).
    let mut held = Vec::new();
    let mut carry = Vec::new();
    for _ in 0..2 {
        let mut c = connect(server.addr);
        send_request(&mut c, &get("/held")).unwrap();
        let resp = read_response(&mut c, &mut carry).unwrap();
        assert_eq!(resp.status, 200);
        carry.clear();
        held.push(c);
    }
    // Further connections are over the cap: shed with 503 + Retry-After.
    let mut sheds = 0;
    for _ in 0..3 {
        let mut c = connect(server.addr);
        let mut carry = Vec::new();
        send_request(&mut c, &get("/extra")).unwrap();
        let resp = read_response(&mut c, &mut carry).unwrap();
        if resp.status == 503 {
            assert!(
                resp.header("Retry-After").is_some(),
                "503 carries Retry-After"
            );
            sheds += 1;
        }
    }
    assert!(sheds > 0, "over-cap connections must see 503");

    drop(held);
    let (stats, _) = server.finish();
    assert_eq!(stats.rejected_over_cap, sheds as u64);
    assert!(stats.peak_connections <= 2);
}

#[test]
fn half_open_connection_is_reaped_by_deadline() {
    let server = Server::start(NetConfig {
        read_deadline: Duration::from_millis(50),
        ..NetConfig::default()
    });
    // Connect and go silent — a half-open client holding a slot.
    let _silent = connect(server.addr);
    std::thread::sleep(Duration::from_millis(300));

    let (stats, _) = server.finish();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.reaped_idle, 1, "silent connection reaped by deadline");
}

#[test]
fn two_connections_interleave_into_shared_cohorts() {
    let server = Server::start(NetConfig {
        cohort_size: 2,
        fill_timeout: Duration::from_millis(100),
        ..NetConfig::default()
    });
    let mut a = connect(server.addr);
    let mut b = connect(server.addr);
    let (mut ca, mut cb) = (Vec::new(), Vec::new());
    // One same-key request from each connection: together they fill a
    // 2-wide cohort, and each response is transposed back to its own
    // connection.
    send_request(&mut a, &get("/shared/a")).unwrap();
    send_request(&mut b, &get("/shared/b")).unwrap();
    let ra = read_response(&mut a, &mut ca).unwrap();
    let rb = read_response(&mut b, &mut cb).unwrap();
    assert_eq!(ra.body(), b"echo /shared/a");
    assert_eq!(rb.body(), b"echo /shared/b");

    let (stats, handler) = server.finish();
    assert_eq!(stats.full_launches, 1, "cross-connection cohort filled");
    assert_eq!(handler.cohort_sizes, vec![2]);
}

/// Regression: a grown idle backoff must not overshoot an open cohort's
/// fill deadline. The request is queued in the socket *before* the run
/// loop starts, so the very first poll accepts and reads it and the
/// cohort's fill wait is the only latency left to measure. With
/// `idle_sleep == idle_sleep_max == 120ms` and a 25ms fill timeout, the
/// clamped loop launches at ~25ms; an unclamped loop would sleep the
/// full 120ms past the deadline.
#[test]
fn idle_backoff_clamps_to_fill_deadline() {
    let config = NetConfig {
        cohort_size: 32,
        fill_timeout: Duration::from_millis(25),
        idle_sleep: Duration::from_millis(120),
        idle_sleep_max: Duration::from_millis(120),
        ..NetConfig::default()
    };
    let server = NetServer::bind(
        "127.0.0.1:0",
        config,
        EchoHandler {
            cohort_sizes: Vec::new(),
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");

    let mut conn = connect(addr);
    send_request(&mut conn, &get("/clamp")).expect("send");
    // Let the bytes land in the accept queue before the loop starts.
    std::thread::sleep(Duration::from_millis(20));

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let start = std::time::Instant::now();
    let join = std::thread::spawn(move || server.run(&flag));

    let mut carry = Vec::new();
    let resp = read_response(&mut conn, &mut carry).expect("response");
    let elapsed = start.elapsed();
    assert_eq!(resp.body(), b"echo /clamp");

    stop.store(true, Ordering::Relaxed);
    let (stats, _) = join.join().expect("server thread");
    assert_eq!(stats.timeout_launches, 1, "cohort must launch on deadline");
    assert!(
        elapsed < Duration::from_millis(80),
        "idle sleep overshot the fill deadline: response took {elapsed:?} \
         (clamped launch should land at ~25ms, an unclamped idle sleep \
         at ~120ms)"
    );
}
