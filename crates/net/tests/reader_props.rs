//! Property tests for the resumable reader (satellite 4): any well-formed
//! request, split at any byte boundary — or concatenated into keep-alive
//! pairs and split anywhere — must parse identically to a one-shot parse,
//! with `consumed` resumption leaving the buffer exactly at the next
//! request.

use proptest::prelude::*;
use rhythm_http::HttpRequest;
use rhythm_net::RequestAccumulator;

/// A generated well-formed request: either a bodyless GET with a query
/// string, or a POST carrying an exact-Content-Length body.
fn render(get: bool, page: &str, query: &str, body: &str) -> Vec<u8> {
    if get {
        let sep = if query.is_empty() { "" } else { "?" };
        format!("GET /bank/{page}.php{sep}{query} HTTP/1.1\r\nHost: bank\r\n\r\n").into_bytes()
    } else {
        format!(
            "POST /bank/{page}.php HTTP/1.1\r\nHost: bank\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }
}

/// Feed `raw` split at `split` (clamped) and pull every complete request.
fn parse_via_accumulator(raw: &[u8], split: usize) -> Vec<HttpRequest> {
    let mut acc = RequestAccumulator::new(1 << 20);
    let split = split.min(raw.len());
    let mut out = Vec::new();
    acc.feed(&raw[..split]);
    while let Some(req) = acc.next_request().expect("well-formed input") {
        out.push(req);
    }
    acc.feed(&raw[split..]);
    while let Some(req) = acc.next_request().expect("well-formed input") {
        out.push(req);
    }
    assert!(acc.is_empty(), "no residue after the final request");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn any_split_parses_identically(
        get in any::<bool>(),
        page in "[a-z_]{1,16}",
        query in "[a-z0-9=&]{0,24}",
        // Bodies are form-decoded by the parser, so stay inside the
        // escape-free form alphabet (a raw `%` is a BadEscape).
        body in "[a-z0-9=&]{0,48}",
        split in 0usize..220,
    ) {
        let raw = render(get, &page, &query, &body);
        let reference = HttpRequest::parse(&raw).expect("generator emits valid HTTP");
        prop_assert_eq!(reference.consumed, raw.len());

        let parsed = parse_via_accumulator(&raw, split);
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &reference, "split at byte {}", split.min(raw.len()));
    }

    #[test]
    fn keep_alive_pair_resumes_at_consumed(
        get1 in any::<bool>(),
        page1 in "[a-z_]{1,12}",
        body1 in "[a-z0-9=&]{0,32}",
        get2 in any::<bool>(),
        page2 in "[a-z_]{1,12}",
        body2 in "[a-z0-9=&]{0,32}",
        split in 0usize..300,
    ) {
        let first = render(get1, &page1, "", &body1);
        let second = render(get2, &page2, "", &body2);
        let ref1 = HttpRequest::parse(&first).expect("valid");
        let ref2 = HttpRequest::parse(&second).expect("valid");

        let mut raw = first.clone();
        raw.extend_from_slice(&second);
        // The one-shot parse of the pair consumes exactly the first
        // request, leaving the second intact at `consumed`.
        let pair_first = HttpRequest::parse(&raw).expect("valid pair");
        prop_assert_eq!(pair_first.consumed, first.len());

        let parsed = parse_via_accumulator(&raw, split);
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(&parsed[0], &ref1);
        prop_assert_eq!(&parsed[1], &ref2);
    }
}
