//! Live telemetry plane under load: the accounting invariant on every
//! concurrent scrape, counter monotonicity, in-band admin endpoints, and
//! the bare (`telemetry: false`) baseline.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rhythm_http::{HttpRequest, ResponseBuilder};
use rhythm_net::{
    read_response, send_request, CohortHandler, NetConfig, NetServer, ShardedRun, ShardedServer,
};

/// Echoes the request path; classifies every path by its first character.
struct EchoHandler;

impl CohortHandler for EchoHandler {
    fn classify(&self, req: &HttpRequest) -> Option<u32> {
        Some(req.path.as_bytes().get(1).copied().unwrap_or(0) as u32)
    }

    fn execute(&mut self, _key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>> {
        requests
            .iter()
            .map(|r| {
                let mut b = ResponseBuilder::new(200, "OK");
                b.header("Content-Type", "text/plain");
                b.reserve_content_length();
                b.finish_headers();
                b.write_str(&format!("echo {}", r.path));
                b.finish()
            })
            .collect()
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes()
}

fn config() -> NetConfig {
    NetConfig {
        cohort_size: 4,
        fill_timeout: Duration::from_millis(1),
        pool_contexts: 16,
        ..NetConfig::default()
    }
}

/// Drive a sharded server with concurrent closed-loop clients while a
/// scraper thread reads every shard's live snapshot as fast as it can:
/// the accounting invariant must hold on every single read, and
/// per-shard `requests` must be monotone.
#[test]
fn accounting_invariant_holds_on_every_concurrent_scrape() {
    let shards = 2;
    let clients = 4;
    let per_client = 50u64;
    let handlers: Vec<_> = (0..shards).map(|_| EchoHandler).collect();
    let server = ShardedServer::bind("127.0.0.1:0", config(), handlers).expect("bind");
    let telemetry = Arc::clone(server.telemetry());
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));

    let scraper = {
        let telemetry = Arc::clone(&telemetry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = vec![0u64; telemetry.shards()];
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for (i, seen) in last.iter_mut().enumerate() {
                    let snap = telemetry.shard(i).live();
                    assert!(
                        snap.accounting_balanced(),
                        "shard {i}: requests {} != responses {} + shed {} + in_cohort {}",
                        snap.stats.requests,
                        snap.stats.responses,
                        snap.shed_total(),
                        snap.in_cohort
                    );
                    assert!(
                        snap.stats.requests >= *seen,
                        "shard {i}: requests went backwards"
                    );
                    *seen = snap.stats.requests;
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    let run: ShardedRun<EchoHandler> = std::thread::scope(|scope| {
        let flag = Arc::clone(&stop);
        let join = scope.spawn(move || server.run(&flag));
        let mut client_joins = Vec::new();
        for c in 0..clients {
            client_joins.push(scope.spawn(move || {
                let mut conn = connect(addr);
                let mut carry = Vec::new();
                for i in 0..per_client {
                    send_request(&mut conn, &get(&format!("/k{c}_{i}"))).unwrap();
                    let resp = read_response(&mut conn, &mut carry).unwrap();
                    assert_eq!(resp.status, 200);
                }
            }));
        }
        for j in client_joins {
            j.join().expect("client");
        }
        stop.store(true, Ordering::Relaxed);
        join.join().expect("server")
    });
    let scrapes = scraper.join().expect("scraper");
    assert!(scrapes > 0, "scraper never ran");

    // At quiescence the plane's totals equal the run's final counters and
    // every request is accounted as a delivered response.
    let sent = clients as u64 * per_client;
    let total = telemetry.total();
    assert_eq!(total.stats.requests, sent);
    assert_eq!(total.stats.responses, sent);
    assert_eq!(total.in_cohort, 0);
    assert!(total.accounting_balanced());
    assert_eq!(run.total().requests, sent);
    assert_eq!(run.total(), total.stats, "published == final counters");
}

/// The in-band admin endpoints answer on a workload connection, render
/// valid documents, and are counted apart from workload requests.
#[test]
fn admin_endpoints_serve_valid_documents_in_band() {
    let server = NetServer::bind("127.0.0.1:0", config(), EchoHandler).expect("bind");
    let telemetry = Arc::clone(server.telemetry());
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    let mut conn = connect(addr);
    let mut carry = Vec::new();
    for i in 0..4 {
        send_request(&mut conn, &get(&format!("/w{i}"))).unwrap();
        assert_eq!(read_response(&mut conn, &mut carry).unwrap().status, 200);
    }

    send_request(&mut conn, &get("/metrics")).unwrap();
    let metrics = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(metrics.status, 200);
    let body = String::from_utf8(metrics.body().to_vec()).unwrap();
    rhythm_obs::validate_prometheus_text(&body).expect("metrics body validates");
    assert!(body.contains("rhythm_requests_total{shard=\"0\"} 4"));
    assert!(body.contains("rhythm_request_latency_seconds_count"));
    assert!(body.contains("rhythm_cohort_fill_count"));

    send_request(&mut conn, &get("/healthz")).unwrap();
    let health = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(health.status, 200);
    let health_body = String::from_utf8(health.body().to_vec()).unwrap();
    rhythm_obs::parse_json(&health_body).expect("healthz is JSON");
    assert!(health_body.contains("\"status\":\"ok\""));
    assert!(health_body.contains("\"balanced\":true"));

    send_request(&mut conn, &get("/trace")).unwrap();
    let trace = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(trace.status, 200);
    let trace_body = String::from_utf8(trace.body().to_vec()).unwrap();
    let check = rhythm_obs::validate_chrome_trace(&trace_body).expect("trace validates");
    assert!(check.events > 0, "flight recorder captured events");

    // A second scrape must be monotone against the first.
    send_request(&mut conn, &get("/metrics")).unwrap();
    let metrics2 = read_response(&mut conn, &mut carry).unwrap();
    let body2 = String::from_utf8(metrics2.body().to_vec()).unwrap();
    let requests_of = |b: &str| {
        b.lines()
            .find(|l| l.starts_with("rhythm_requests_total{shard=\"0\"}"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse::<u64>().ok())
            .expect("requests sample")
    };
    assert!(requests_of(&body2) >= requests_of(&body));

    stop.store(true, Ordering::Relaxed);
    let (stats, _) = join.join().expect("server");
    // Admin hits never leak into workload accounting.
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.responses, 4);
    assert_eq!(stats.admin_requests, 4, "three endpoints + second scrape");
    assert_eq!(telemetry.total().stats.admin_requests, 4);
}

/// With `telemetry: false` the reactor runs bare: admin paths flow into
/// normal cohort dispatch (the echo handler answers them) and nothing is
/// ever published into the plane.
#[test]
fn telemetry_off_disables_admin_and_publication() {
    let config = NetConfig {
        telemetry: false,
        ..config()
    };
    let server = NetServer::bind("127.0.0.1:0", config, EchoHandler).expect("bind");
    let telemetry = Arc::clone(server.telemetry());
    let addr = server.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || server.run(&flag));

    let mut conn = connect(addr);
    let mut carry = Vec::new();
    send_request(&mut conn, &get("/metrics")).unwrap();
    let resp = read_response(&mut conn, &mut carry).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body(),
        b"echo /metrics",
        "bare mode: /metrics is just another workload path"
    );

    stop.store(true, Ordering::Relaxed);
    let (stats, _) = join.join().expect("server");
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.admin_requests, 0);
    let snap = telemetry.shard(0).live();
    assert_eq!(snap.stats.requests, 0, "bare mode publishes nothing");
    assert_eq!(telemetry.shard(0).flight().recorded(), 0);
}
