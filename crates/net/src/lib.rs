//! # rhythm-net
//!
//! The networked front end of the Rhythm pipeline: the paper's
//! Reader → Parser → Dispatch path (§3–4) over **real sockets** instead of
//! the virtual-clock event loop in `rhythm-core`.
//!
//! * [`conn::RequestAccumulator`] is the resumable reader: it buffers
//!   socket bytes, retries [`rhythm_http::HttpRequest::parse`] on
//!   `Truncated`/`BodyTooShort`, uses `consumed` to resume at the next
//!   pipelined request, and enforces a per-connection size cap so an
//!   oversized or lying `Content-Length` gets 413 instead of unbounded
//!   buffering.
//! * [`server::Reactor`] is the poll-style connection/cohort state
//!   machine over nonblocking `std::net` sockets. Parsed requests are
//!   dispatched into per-type cohort contexts from `rhythm-core`'s
//!   [`rhythm_core::CohortPool`] (the Free → PartiallyFull → Full → Busy
//!   FSM); cohorts launch on fill or on the formation timeout, all
//!   launches marked in one poll go to the pluggable
//!   [`server::CohortHandler`] as a single batch (so device handlers can
//!   run them as concurrent streams), and responses are transposed back
//!   onto the originating connections in request order.
//! * [`server::NetServer`] runs one reactor behind one listener;
//!   [`shard::ShardedServer`] runs N reactor threads behind a dedicated
//!   acceptor with round-robin connection handoff — each shard owns its
//!   connections, cohort pool, stats, and handler (device), and
//!   connection pinning doubles as session-affinity routing.
//! * Robustness under load: a connection cap (excess connections are shed
//!   with `503` + `Retry-After`), pool-exhaustion shedding (`503`),
//!   request size caps (`413`), malformed-input rejection (`400`), and a
//!   read deadline that reaps half-open connections. All FSM transitions
//!   use the fallible cohort API, so one bad dispatch can never panic the
//!   event loop.
//! * Everything is instrumented through `rhythm-obs`: per-cohort execute
//!   spans, FSM transition instants, `cohort_fill` /
//!   `net_request_latency_s` histograms, and shed/stall counters.
//! * A live telemetry plane ([`metrics::Telemetry`]) aggregates one
//!   lock-free registry per shard (seqlock counter snapshots, per-type
//!   latency and cohort-fill histograms, an always-on flight recorder)
//!   and serves it through in-band admin endpoints ([`admin`]):
//!   `GET /metrics` (Prometheus text), `GET /healthz`, and `GET /trace`
//!   (Chrome trace of recent events). Admin requests are answered before
//!   cohort formation and counted separately, so workload accounting
//!   stays exact under scraping; `NetConfig::telemetry = false` runs the
//!   reactor bare for overhead baselines.
//!
//! The crate is std-only like the rest of the workspace and knows nothing
//! about the banking workload; `rhythm-banking` provides
//! [`server::CohortHandler`] implementations for the native and SIMT
//! device paths.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod client;
pub mod conn;
pub mod controller;
pub mod metrics;
pub mod responses;
pub mod server;
pub mod shard;

pub use admin::{admin_route, AdminRoute};
pub use client::{read_response, scan_response, send_request, RawResponse};
pub use conn::RequestAccumulator;
pub use controller::{decide, Controller, ControllerConfig, Decision};
pub use metrics::{LaunchView, LiveSnapshot, ShardMetrics, StatsCell, Telemetry};
pub use server::{CohortHandler, NetConfig, NetServer, NetStats, Reactor};
pub use shard::{ShardedRun, ShardedServer};
