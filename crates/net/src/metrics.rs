//! The live telemetry plane: per-shard metric registries and the
//! cross-shard [`Telemetry`] aggregate behind `GET /metrics`.
//!
//! Design rule: **zero cross-shard sharing on the hot path**. Each
//! reactor owns one [`ShardMetrics`] and is its only writer; the only
//! cross-thread traffic is a scraper *reading* another shard's atomics at
//! `/metrics` time. Counter publication goes through a seqlock
//! ([`StatsCell`]) written once per poll at a consistent point, so a
//! reader can never observe a torn snapshot — the accounting invariant
//!
//! ```text
//! requests == responses + shed_503 + unclassified + in_cohort
//! ```
//!
//! holds on *every* [`LiveSnapshot`], not just at quiescence. (In the
//! issue's phrasing `requests = delivered + responses_dropped +
//! shed_total`: [`NetStats::responses`] already counts delivered and
//! dropped handler responses together, `shed_total = shed_503 +
//! unclassified`, and `in_cohort` is the in-flight term that reaches zero
//! once the pool drains.) Latency/fill distributions use
//! [`AtomicHistogram`] — the shared-atomic-bucket variant — so they are
//! readable mid-poll with per-bucket monotonicity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rhythm_obs::{
    flight_chrome_json, AtomicHistogram, FlightRecorder, MetricKind, MetricRegistry, MetricValue,
    PromText, StreamingHistogram,
};

use crate::server::NetStats;

/// Events each shard's flight recorder retains.
const FLIGHT_CAPACITY: usize = 4096;
/// Distinct cohort keys with their own latency histogram and launch
/// counters; higher keys share the last slot. Sized for the banking
/// workload's composite similarity keys (14 types × 8 sub-keys) with
/// headroom.
const KEY_SLOTS: usize = 128;

/// A consistent, torn-read-proof snapshot of one shard's live counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveSnapshot {
    /// The shard's counters as of its last completed poll.
    pub stats: NetStats,
    /// Requests currently held in open (PartiallyFull/Full) cohort
    /// contexts — the in-flight term of the accounting invariant.
    pub in_cohort: u64,
    /// Currently admitted connections.
    pub connections: u64,
}

impl LiveSnapshot {
    /// Requests answered without reaching a cohort: `503` sheds plus
    /// unclassified (`404`) requests.
    pub fn shed_total(&self) -> u64 {
        self.stats.shed_503 + self.stats.unclassified
    }

    /// `requests − responses − shed_total − in_cohort`; zero on every
    /// consistent snapshot.
    pub fn accounting_residual(&self) -> i64 {
        self.stats.requests as i64
            - self.stats.responses as i64
            - self.shed_total() as i64
            - self.in_cohort as i64
    }

    /// Whether the accounting invariant holds (it must, on any snapshot
    /// read through [`StatsCell`]).
    pub fn accounting_balanced(&self) -> bool {
        self.accounting_residual() == 0
    }

    /// Fold another shard's snapshot into this one.
    pub fn merge(&mut self, other: &LiveSnapshot) {
        self.stats.merge(&other.stats);
        self.in_cohort += other.in_cohort;
        self.connections += other.connections;
    }
}

/// Seqlock-published [`NetStats`] mirror: the owning reactor stores every
/// counter between two sequence bumps at the end of each poll; readers
/// retry until they see a stable, even sequence. Single writer, any
/// number of readers.
#[derive(Debug, Default)]
pub struct StatsCell {
    seq: AtomicU64,
    accepted: AtomicU64,
    rejected_over_cap: AtomicU64,
    peak_connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    responses_dropped: AtomicU64,
    cohorts: AtomicU64,
    full_launches: AtomicU64,
    timeout_launches: AtomicU64,
    fill_sum_bits: AtomicU64,
    launched_requests: AtomicU64,
    shed_503: AtomicU64,
    too_large_413: AtomicU64,
    bad_request_400: AtomicU64,
    unclassified: AtomicU64,
    fsm_rejections: AtomicU64,
    reaped_idle: AtomicU64,
    reaped_stalled: AtomicU64,
    idle_polls: AtomicU64,
    reads_paused: AtomicU64,
    peak_queued_bytes: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    admin_requests: AtomicU64,
    in_cohort: AtomicU64,
    connections: AtomicU64,
}

impl StatsCell {
    /// Publish a consistent snapshot (single writer: the owning reactor,
    /// at the end of a poll).
    pub fn publish(&self, stats: &NetStats, in_cohort: u64, connections: u64) {
        self.seq.fetch_add(1, Ordering::Release); // odd: update in progress
        self.accepted.store(stats.accepted, Ordering::Relaxed);
        self.rejected_over_cap
            .store(stats.rejected_over_cap, Ordering::Relaxed);
        self.peak_connections
            .store(stats.peak_connections as u64, Ordering::Relaxed);
        self.requests.store(stats.requests, Ordering::Relaxed);
        self.responses.store(stats.responses, Ordering::Relaxed);
        self.responses_dropped
            .store(stats.responses_dropped, Ordering::Relaxed);
        self.cohorts.store(stats.cohorts, Ordering::Relaxed);
        self.full_launches
            .store(stats.full_launches, Ordering::Relaxed);
        self.timeout_launches
            .store(stats.timeout_launches, Ordering::Relaxed);
        self.fill_sum_bits
            .store(stats.fill_sum.to_bits(), Ordering::Relaxed);
        self.launched_requests
            .store(stats.launched_requests, Ordering::Relaxed);
        self.shed_503.store(stats.shed_503, Ordering::Relaxed);
        self.too_large_413
            .store(stats.too_large_413, Ordering::Relaxed);
        self.bad_request_400
            .store(stats.bad_request_400, Ordering::Relaxed);
        self.unclassified
            .store(stats.unclassified, Ordering::Relaxed);
        self.fsm_rejections
            .store(stats.fsm_rejections, Ordering::Relaxed);
        self.reaped_idle.store(stats.reaped_idle, Ordering::Relaxed);
        self.reaped_stalled
            .store(stats.reaped_stalled, Ordering::Relaxed);
        self.idle_polls.store(stats.idle_polls, Ordering::Relaxed);
        self.reads_paused
            .store(stats.reads_paused, Ordering::Relaxed);
        self.peak_queued_bytes
            .store(stats.peak_queued_bytes, Ordering::Relaxed);
        self.bytes_in.store(stats.bytes_in, Ordering::Relaxed);
        self.bytes_out.store(stats.bytes_out, Ordering::Relaxed);
        self.admin_requests
            .store(stats.admin_requests, Ordering::Relaxed);
        self.in_cohort.store(in_cohort, Ordering::Relaxed);
        self.connections.store(connections, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release); // even: stable
    }

    /// Read a consistent snapshot (spins while a publish is in flight —
    /// publishes are a few dozen relaxed stores, so the wait is
    /// nanoseconds).
    pub fn read(&self) -> LiveSnapshot {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let snap = LiveSnapshot {
                stats: NetStats {
                    accepted: self.accepted.load(Ordering::Relaxed),
                    rejected_over_cap: self.rejected_over_cap.load(Ordering::Relaxed),
                    peak_connections: self.peak_connections.load(Ordering::Relaxed) as usize,
                    requests: self.requests.load(Ordering::Relaxed),
                    responses: self.responses.load(Ordering::Relaxed),
                    responses_dropped: self.responses_dropped.load(Ordering::Relaxed),
                    cohorts: self.cohorts.load(Ordering::Relaxed),
                    full_launches: self.full_launches.load(Ordering::Relaxed),
                    timeout_launches: self.timeout_launches.load(Ordering::Relaxed),
                    fill_sum: f64::from_bits(self.fill_sum_bits.load(Ordering::Relaxed)),
                    launched_requests: self.launched_requests.load(Ordering::Relaxed),
                    shed_503: self.shed_503.load(Ordering::Relaxed),
                    too_large_413: self.too_large_413.load(Ordering::Relaxed),
                    bad_request_400: self.bad_request_400.load(Ordering::Relaxed),
                    unclassified: self.unclassified.load(Ordering::Relaxed),
                    fsm_rejections: self.fsm_rejections.load(Ordering::Relaxed),
                    reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
                    reaped_stalled: self.reaped_stalled.load(Ordering::Relaxed),
                    idle_polls: self.idle_polls.load(Ordering::Relaxed),
                    reads_paused: self.reads_paused.load(Ordering::Relaxed),
                    peak_queued_bytes: self.peak_queued_bytes.load(Ordering::Relaxed),
                    bytes_in: self.bytes_in.load(Ordering::Relaxed),
                    bytes_out: self.bytes_out.load(Ordering::Relaxed),
                    admin_requests: self.admin_requests.load(Ordering::Relaxed),
                },
                in_cohort: self.in_cohort.load(Ordering::Relaxed),
                connections: self.connections.load(Ordering::Relaxed),
            };
            if self.seq.load(Ordering::Acquire) == s1 {
                return snap;
            }
        }
    }
}

/// Per-cohort-key latency histograms with lazily named slots. Keys at or
/// beyond [`KEY_SLOTS`] share the overflow slot.
#[derive(Debug)]
struct KeyedLatency {
    slots: Vec<(OnceLock<String>, AtomicHistogram)>,
}

impl KeyedLatency {
    fn new() -> Self {
        KeyedLatency {
            slots: (0..KEY_SLOTS)
                .map(|_| (OnceLock::new(), AtomicHistogram::for_latency_seconds()))
                .collect(),
        }
    }

    fn slot(&self, key: u32) -> &(OnceLock<String>, AtomicHistogram) {
        &self.slots[(key as usize).min(KEY_SLOTS - 1)]
    }

    fn record(&self, key: u32, name: impl FnOnce() -> String, latency_s: f64) {
        let (slot_name, hist) = self.slot(key);
        slot_name.get_or_init(name);
        hist.record(latency_s);
    }

    /// Non-empty per-type snapshots as `(type_name, histogram)`.
    fn views(&self) -> Vec<(String, StreamingHistogram)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, (_, h))| h.count() > 0)
            .map(|(i, (name, h))| {
                (
                    name.get().cloned().unwrap_or_else(|| format!("key_{i}")),
                    h.snapshot(),
                )
            })
            .collect()
    }
}

/// One cohort key's launch counters, as reported by
/// [`ShardMetrics::launch_views`].
#[derive(Clone, Debug, PartialEq)]
pub struct LaunchView {
    /// The cohort key's label (the handler's `key_name`).
    pub name: String,
    /// Cohorts of this key launched at target depth ("full").
    pub full: u64,
    /// Cohorts of this key launched by the fill deadline.
    pub timeout: u64,
    /// Requests across this key's launches.
    pub requests: u64,
    /// Sum of launch fill ratios (mean fill = this / (full + timeout)).
    pub fill_sum: f64,
}

/// Per-cohort-key launch counters (full vs timeout launch reason, fill
/// sums) with lazily named slots, sharing the [`KEY_SLOTS`] overflow
/// convention with [`KeyedLatency`]. These make the adaptive controller's
/// behavior observable per key from `/metrics`.
#[derive(Debug)]
struct KeyedLaunches {
    /// Per slot: label, full launches, timeout launches, launched
    /// requests, fill sum (f64 bits; single writer, so load/add/store is
    /// race-free).
    slots: Vec<(OnceLock<String>, [AtomicU64; 4])>,
}

impl KeyedLaunches {
    fn new() -> Self {
        KeyedLaunches {
            slots: (0..KEY_SLOTS)
                .map(|_| (OnceLock::new(), std::array::from_fn(|_| AtomicU64::new(0))))
                .collect(),
        }
    }

    fn record(
        &self,
        key: u32,
        name: impl FnOnce() -> String,
        by_timeout: bool,
        requests: u64,
        fill: f64,
    ) {
        let (slot_name, [full, timeout, reqs, fill_bits]) =
            &self.slots[(key as usize).min(KEY_SLOTS - 1)];
        slot_name.get_or_init(name);
        if by_timeout {
            timeout.fetch_add(1, Ordering::Relaxed);
        } else {
            full.fetch_add(1, Ordering::Relaxed);
        }
        reqs.fetch_add(requests, Ordering::Relaxed);
        let sum = f64::from_bits(fill_bits.load(Ordering::Relaxed)) + fill;
        fill_bits.store(sum.to_bits(), Ordering::Relaxed);
    }

    /// Non-empty per-key views (keys that launched at least one cohort).
    fn views(&self) -> Vec<LaunchView> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, (_, [f, t, _, _]))| {
                f.load(Ordering::Relaxed) + t.load(Ordering::Relaxed) > 0
            })
            .map(|(i, (name, [f, t, r, fill]))| LaunchView {
                name: name.get().cloned().unwrap_or_else(|| format!("key_{i}")),
                full: f.load(Ordering::Relaxed),
                timeout: t.load(Ordering::Relaxed),
                requests: r.load(Ordering::Relaxed),
                fill_sum: f64::from_bits(fill.load(Ordering::Relaxed)),
            })
            .collect()
    }
}

/// One reactor shard's metric registry: the seqlock counter cell, the
/// per-type latency histograms, per-key launch counters, the cohort-fill
/// histogram, and the shard's flight recorder. Written only by the
/// owning reactor; read by anyone.
#[derive(Debug)]
pub struct ShardMetrics {
    cell: StatsCell,
    latency: KeyedLatency,
    launches: KeyedLaunches,
    fill: AtomicHistogram,
    flight: FlightRecorder,
}

impl Default for ShardMetrics {
    fn default() -> Self {
        ShardMetrics::new()
    }
}

impl ShardMetrics {
    /// A fresh, zeroed registry.
    pub fn new() -> Self {
        ShardMetrics {
            cell: StatsCell::default(),
            latency: KeyedLatency::new(),
            launches: KeyedLaunches::new(),
            // Fill is in (0, 1]: 1/256 floor, 4 sub-buckets per octave,
            // 9 octaves reach just past 1.0.
            fill: AtomicHistogram::new(1.0 / 256.0, 4, 9),
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
        }
    }

    /// Publish the owning reactor's counters (end of poll).
    pub fn publish(&self, stats: &NetStats, in_cohort: u64, connections: u64) {
        self.cell.publish(stats, in_cohort, connections);
    }

    /// The last published consistent snapshot.
    pub fn live(&self) -> LiveSnapshot {
        self.cell.read()
    }

    /// Record one request's end-to-end latency under its cohort type
    /// (`name` is only invoked the first time `key` is seen).
    pub fn record_latency(&self, key: u32, name: impl FnOnce() -> String, latency_s: f64) {
        self.latency.record(key, name, latency_s);
    }

    /// Record a cohort's fill ratio at launch.
    pub fn record_fill(&self, fill: f64) {
        self.fill.record(fill);
    }

    /// Record one cohort launch under its key: the launch reason (at
    /// target depth vs fill deadline), the member count, and the fill
    /// ratio (`name` is only invoked the first time `key` is seen).
    pub fn record_launch(
        &self,
        key: u32,
        name: impl FnOnce() -> String,
        by_timeout: bool,
        requests: u64,
        fill: f64,
    ) {
        self.launches.record(key, name, by_timeout, requests, fill);
    }

    /// Per-key launch counters for keys that launched at least once.
    pub fn launch_views(&self) -> Vec<LaunchView> {
        self.launches.views()
    }

    /// Per-type latency snapshots as `(type_name, histogram)`.
    pub fn latency_views(&self) -> Vec<(String, StreamingHistogram)> {
        self.latency.views()
    }

    /// Snapshot of the cohort-fill distribution.
    pub fn fill_snapshot(&self) -> StreamingHistogram {
        self.fill.snapshot()
    }

    /// The shard's flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }
}

/// Per-shard `u64` counter families exported to Prometheus: `(suffix,
/// help, extractor)`.
type CounterFamily = (&'static str, &'static str, fn(&LiveSnapshot) -> u64);

const COUNTER_FAMILIES: &[CounterFamily] = &[
    ("accepted_total", "Connections admitted", |s| {
        s.stats.accepted
    }),
    (
        "rejected_over_cap_total",
        "Connections shed at admission (over the per-reactor cap)",
        |s| s.stats.rejected_over_cap,
    ),
    (
        "requests_total",
        "Complete requests parsed off sockets (excludes admin endpoints)",
        |s| s.stats.requests,
    ),
    (
        "responses_total",
        "Responses produced by the cohort handler (delivered or dropped)",
        |s| s.stats.responses,
    ),
    (
        "responses_dropped_total",
        "Responses whose connection vanished before delivery",
        |s| s.stats.responses_dropped,
    ),
    ("cohorts_total", "Cohorts launched", |s| s.stats.cohorts),
    ("full_launches_total", "Cohorts launched full", |s| {
        s.stats.full_launches
    }),
    (
        "timeout_launches_total",
        "Cohorts launched by the formation timeout",
        |s| s.stats.timeout_launches,
    ),
    (
        "launched_requests_total",
        "Requests across all cohort launches",
        |s| s.stats.launched_requests,
    ),
    (
        "shed_503_total",
        "Requests shed with 503 (pool exhausted or FSM refusal)",
        |s| s.stats.shed_503,
    ),
    ("too_large_413_total", "Requests rejected with 413", |s| {
        s.stats.too_large_413
    }),
    ("bad_request_400_total", "Requests rejected with 400", |s| {
        s.stats.bad_request_400
    }),
    (
        "unclassified_total",
        "Requests the handler refused to classify (404)",
        |s| s.stats.unclassified,
    ),
    (
        "fsm_rejections_total",
        "Fallible-FSM refusals survived without panicking",
        |s| s.stats.fsm_rejections,
    ),
    (
        "reaped_idle_total",
        "Idle/half-open connections reaped by the read deadline",
        |s| s.stats.reaped_idle,
    ),
    (
        "reaped_stalled_total",
        "Stalled readers reaped with queued output",
        |s| s.stats.reaped_stalled,
    ),
    (
        "idle_polls_total",
        "No-progress poll iterations that slept",
        |s| s.stats.idle_polls,
    ),
    (
        "reads_paused_total",
        "Socket reads skipped under write backpressure",
        |s| s.stats.reads_paused,
    ),
    ("bytes_in_total", "Bytes read off sockets", |s| {
        s.stats.bytes_in
    }),
    ("bytes_out_total", "Bytes written to sockets", |s| {
        s.stats.bytes_out
    }),
    (
        "admin_requests_total",
        "Admin-surface requests (/metrics, /healthz, /trace)",
        |s| s.stats.admin_requests,
    ),
];

type GaugeFamily = (&'static str, &'static str, fn(&LiveSnapshot) -> f64);

const GAUGE_FAMILIES: &[GaugeFamily] = &[
    ("connections", "Currently admitted connections", |s| {
        s.connections as f64
    }),
    (
        "in_cohort",
        "Requests held in open cohort contexts (in-flight accounting term)",
        |s| s.in_cohort as f64,
    ),
    (
        "peak_connections",
        "Peak simultaneous admitted connections",
        |s| s.stats.peak_connections as f64,
    ),
    (
        "peak_queued_bytes",
        "Largest per-connection queued-output backlog observed",
        |s| s.stats.peak_queued_bytes as f64,
    ),
];

/// The cross-shard telemetry plane: every shard's [`ShardMetrics`] plus
/// one generic [`MetricRegistry`] per device, aggregated **on demand** at
/// scrape time (shards never read each other on the hot path).
///
/// Create one with [`Telemetry::new`] before building handlers (device
/// handlers take their registry handles from [`Telemetry::device`]), then
/// hand it to the server; the admin endpoints render from it.
#[derive(Debug)]
pub struct Telemetry {
    shards: Vec<Arc<ShardMetrics>>,
    devices: Vec<Arc<MetricRegistry>>,
    started: Instant,
}

impl Telemetry {
    /// A telemetry plane for `shards` reactor shards (and as many
    /// devices).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Arc<Telemetry> {
        assert!(shards > 0, "need at least one shard");
        Arc::new(Telemetry {
            shards: (0..shards).map(|_| Arc::new(ShardMetrics::new())).collect(),
            devices: (0..shards)
                .map(|_| Arc::new(MetricRegistry::new()))
                .collect(),
            started: Instant::now(),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s metric registry.
    pub fn shard(&self, i: usize) -> &Arc<ShardMetrics> {
        &self.shards[i]
    }

    /// Device `i`'s metric registry (device handlers register their
    /// counters here at construction).
    pub fn device(&self, i: usize) -> &Arc<MetricRegistry> {
        &self.devices[i]
    }

    /// Seconds since the plane was created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Cross-shard aggregate of the latest per-shard snapshots. Each
    /// shard's contribution is individually consistent; the aggregate
    /// mixes polls that completed within microseconds of each other.
    pub fn total(&self) -> LiveSnapshot {
        let mut total = LiveSnapshot::default();
        for s in &self.shards {
            total.merge(&s.live());
        }
        total
    }

    /// Per-type latency histograms merged across shards.
    pub fn latency_merged(&self) -> Vec<(String, StreamingHistogram)> {
        let mut by_type: Vec<(String, StreamingHistogram)> = Vec::new();
        for shard in &self.shards {
            for (name, hist) in shard.latency_views() {
                match by_type.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, acc)) => acc.merge(&hist),
                    None => by_type.push((name, hist)),
                }
            }
        }
        by_type.sort_by(|a, b| a.0.cmp(&b.0));
        by_type
    }

    /// Render the whole plane as Prometheus text exposition: process
    /// gauges, per-shard counter/gauge families (`shard` label), merged
    /// latency and fill histograms, and every device registry's metrics.
    pub fn render_metrics(&self) -> String {
        let snaps: Vec<LiveSnapshot> = self.shards.iter().map(|s| s.live()).collect();
        let mut t = PromText::new();
        t.header(
            "rhythm_uptime_seconds",
            "Seconds since the telemetry plane was created",
            MetricKind::Gauge,
        );
        t.sample("rhythm_uptime_seconds", &[], self.uptime_s());
        t.header("rhythm_shards", "Reactor shard count", MetricKind::Gauge);
        t.sample("rhythm_shards", &[], self.shards.len() as f64);
        for (suffix, help, get) in COUNTER_FAMILIES {
            let name = format!("rhythm_{suffix}");
            t.header(&name, help, MetricKind::Counter);
            for (i, snap) in snaps.iter().enumerate() {
                t.sample_u64(&name, &[("shard", &i.to_string())], get(snap));
            }
        }
        for (suffix, help, get) in GAUGE_FAMILIES {
            let name = format!("rhythm_{suffix}");
            t.header(&name, help, MetricKind::Gauge);
            for (i, snap) in snaps.iter().enumerate() {
                t.sample(&name, &[("shard", &i.to_string())], get(snap));
            }
        }
        t.header(
            "rhythm_cohort_fill_sum_total",
            "Sum of cohort fills at launch (mean fill = this / rhythm_cohorts_total)",
            MetricKind::Counter,
        );
        for (i, snap) in snaps.iter().enumerate() {
            t.sample(
                "rhythm_cohort_fill_sum_total",
                &[("shard", &i.to_string())],
                snap.stats.fill_sum,
            );
        }
        // Per-cohort-key launch counters: how each key's cohorts
        // launched (target depth vs fill deadline) and how full they
        // were — the observable trace of the adaptive controller.
        t.header(
            "rhythm_key_cohorts_total",
            "Cohorts launched by cohort key and reason (full = target depth, timeout = fill deadline)",
            MetricKind::Counter,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            let si = i.to_string();
            for v in shard.launch_views() {
                t.sample_u64(
                    "rhythm_key_cohorts_total",
                    &[("shard", &si), ("type", &v.name), ("reason", "full")],
                    v.full,
                );
                t.sample_u64(
                    "rhythm_key_cohorts_total",
                    &[("shard", &si), ("type", &v.name), ("reason", "timeout")],
                    v.timeout,
                );
            }
        }
        t.header(
            "rhythm_key_launched_requests_total",
            "Requests across cohort launches, by cohort key",
            MetricKind::Counter,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            let si = i.to_string();
            for v in shard.launch_views() {
                t.sample_u64(
                    "rhythm_key_launched_requests_total",
                    &[("shard", &si), ("type", &v.name)],
                    v.requests,
                );
            }
        }
        t.header(
            "rhythm_key_fill_sum_total",
            "Sum of launch fill ratios by cohort key (mean = this / rhythm_key_cohorts_total)",
            MetricKind::Counter,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            let si = i.to_string();
            for v in shard.launch_views() {
                t.sample(
                    "rhythm_key_fill_sum_total",
                    &[("shard", &si), ("type", &v.name)],
                    v.fill_sum,
                );
            }
        }
        // Distributions are merged across shards at scrape time — this is
        // exactly StreamingHistogram::merge over AtomicHistogram
        // snapshots.
        let mut fill = StreamingHistogram::new(1.0 / 256.0, 4);
        for shard in &self.shards {
            fill.merge(&shard.fill_snapshot());
        }
        t.header(
            "rhythm_cohort_fill",
            "Cohort fill ratio at launch (1.0 = full), merged across shards",
            MetricKind::Histogram,
        );
        t.histogram("rhythm_cohort_fill", &[], &fill);
        t.header(
            "rhythm_request_latency_seconds",
            "End-to-end request latency by request type, merged across shards",
            MetricKind::Histogram,
        );
        for (ty, hist) in self.latency_merged() {
            t.histogram("rhythm_request_latency_seconds", &[("type", &ty)], &hist);
        }
        self.render_devices(&mut t);
        t.finish()
    }

    /// Device registries: counters/gauges per shard (labelled), histogram
    /// families merged across shards.
    fn render_devices(&self, t: &mut PromText) {
        use std::collections::BTreeMap;
        // name -> (help, kind, per-shard values)
        type Family = (String, MetricKind, Vec<(usize, MetricValue)>);
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        for (i, device) in self.devices.iter().enumerate() {
            for e in device.export() {
                let kind = e.value.kind();
                families
                    .entry(e.name)
                    .or_insert_with(|| (e.help, kind, Vec::new()))
                    .2
                    .push((i, e.value));
            }
        }
        for (name, (help, kind, values)) in families {
            t.header(&name, &help, kind);
            match kind {
                MetricKind::Histogram => {
                    let mut merged: Option<StreamingHistogram> = None;
                    for (_, v) in values {
                        if let MetricValue::Histogram(h) = v {
                            match &mut merged {
                                Some(m) => m.merge(&h),
                                None => merged = Some(h),
                            }
                        }
                    }
                    if let Some(m) = merged {
                        t.histogram(&name, &[], &m);
                    }
                }
                _ => {
                    for (i, v) in values {
                        match v {
                            MetricValue::Counter(c) => {
                                t.sample_u64(&name, &[("shard", &i.to_string())], c);
                            }
                            MetricValue::Gauge(g) => {
                                t.sample(&name, &[("shard", &i.to_string())], g);
                            }
                            MetricValue::Histogram(_) => {}
                        }
                    }
                }
            }
        }
    }

    /// Render the `/healthz` body: a small JSON status document.
    pub fn render_healthz(&self) -> String {
        let total = self.total();
        format!(
            "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"shards\":{},\"connections\":{},\
             \"requests\":{},\"responses\":{},\"shed\":{},\"in_cohort\":{},\"balanced\":{}}}\n",
            self.uptime_s(),
            self.shards.len(),
            total.connections,
            total.stats.requests,
            total.stats.responses,
            total.shed_total(),
            total.in_cohort,
            total.accounting_balanced(),
        )
    }

    /// Render the `/trace` body: every shard's flight-recorder ring as
    /// one Chrome trace JSON document (one process per shard).
    pub fn render_trace(&self) -> String {
        let shards: Vec<(String, &FlightRecorder)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("reactor shard {i}"), s.flight()))
            .collect();
        flight_chrome_json(&shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consistent_stats(step: u64) -> (NetStats, u64) {
        // Build counters that satisfy the invariant for any step:
        // requests = responses + shed_503 + unclassified + in_cohort.
        let in_cohort = step % 7;
        let stats = NetStats {
            requests: 10 * step + in_cohort,
            responses: 8 * step,
            shed_503: step,
            unclassified: step,
            responses_dropped: step / 2,
            ..NetStats::default()
        };
        (stats, in_cohort)
    }

    #[test]
    fn statscell_snapshot_is_never_torn() {
        let cell = Arc::new(StatsCell::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut step = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    step += 1;
                    let (stats, in_cohort) = consistent_stats(step);
                    cell.publish(&stats, in_cohort, step % 3);
                }
                step
            })
        };
        let mut last_requests = 0u64;
        for _ in 0..100_000 {
            let snap = cell.read();
            assert!(
                snap.accounting_balanced(),
                "torn snapshot: residual {} at requests {}",
                snap.accounting_residual(),
                snap.stats.requests
            );
            assert!(
                snap.stats.requests >= last_requests,
                "monotonicity violated"
            );
            last_requests = snap.stats.requests;
        }
        stop.store(true, Ordering::Relaxed);
        let steps = writer.join().unwrap();
        assert!(steps > 0);
    }

    #[test]
    fn telemetry_total_merges_shards() {
        let t = Telemetry::new(2);
        let (s0, ic0) = consistent_stats(5);
        let (s1, ic1) = consistent_stats(9);
        t.shard(0).publish(&s0, ic0, 1);
        t.shard(1).publish(&s1, ic1, 2);
        let total = t.total();
        assert_eq!(total.stats.requests, s0.requests + s1.requests);
        assert_eq!(total.connections, 3);
        assert!(total.accounting_balanced());
    }

    #[test]
    fn rendered_metrics_validate_and_carry_per_shard_labels() {
        let t = Telemetry::new(2);
        let (s0, ic0) = consistent_stats(3);
        t.shard(0).publish(&s0, ic0, 1);
        t.shard(0)
            .record_latency(1, || "login.php".to_string(), 2e-3);
        t.shard(1)
            .record_latency(1, || "login.php".to_string(), 4e-3);
        t.shard(0).record_fill(0.5);
        t.shard(0)
            .record_launch(1, || "login.php".to_string(), true, 16, 0.5);
        t.shard(0)
            .record_launch(1, || "login.php".to_string(), false, 32, 1.0);
        let hits = t.device(0).counter("rhythm_plan_cache_hits_total", "hits");
        hits.add(7);
        let kern =
            t.device(1)
                .histogram("rhythm_device_kernel_seconds", "kernel time", 1e-9, 8, 64);
        kern.record(3e-4);
        let text = t.render_metrics();
        let check = rhythm_obs::validate_prometheus_text(&text).expect("valid exposition");
        assert!(check.families > 20, "families: {}", check.families);
        assert!(text.contains("rhythm_requests_total{shard=\"0\"}"));
        assert!(text.contains("rhythm_requests_total{shard=\"1\"} 0"));
        assert!(text.contains("type=\"login.php\""));
        assert!(text.contains("rhythm_request_latency_seconds_count{type=\"login.php\"} 2"));
        assert!(text.contains(
            "rhythm_key_cohorts_total{shard=\"0\",type=\"login.php\",reason=\"full\"} 1"
        ));
        assert!(text.contains(
            "rhythm_key_cohorts_total{shard=\"0\",type=\"login.php\",reason=\"timeout\"} 1"
        ));
        assert!(
            text.contains("rhythm_key_launched_requests_total{shard=\"0\",type=\"login.php\"} 48")
        );
        assert!(text.contains("rhythm_key_fill_sum_total{shard=\"0\",type=\"login.php\"} 1.5"));
        let views = t.shard(0).launch_views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].full, 1);
        assert_eq!(views[0].timeout, 1);
        assert_eq!(views[0].requests, 48);
        assert!(text.contains("rhythm_plan_cache_hits_total{shard=\"0\"} 7"));
        assert!(text.contains("rhythm_device_kernel_seconds_count 1"));

        let health = t.render_healthz();
        assert!(rhythm_obs::parse_json(&health).is_ok(), "{health}");
        assert!(health.contains("\"status\":\"ok\""));

        let trace = t.render_trace();
        rhythm_obs::validate_chrome_trace(&trace).expect("valid chrome trace");
    }
}
