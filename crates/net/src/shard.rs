//! The sharded multi-reactor front end: one acceptor thread feeding N
//! [`Reactor`] threads over channels.
//!
//! Each reactor owns its accepted connections, its own `CohortPool`,
//! [`NetStats`], and — through its own [`CohortHandler`] instance — its
//! own device. A connection is pinned to one reactor for its whole life
//! (round-robin at accept time), which is also the session-affinity
//! policy: Banking sessions are created by a login on some connection and
//! used by later requests on that same connection, so pinning the
//! connection pins the session's device-resident state to its shard. No
//! cross-shard state, no cross-shard locks — the only shared structure is
//! the handoff channel.
//!
//! ```text
//!             accept()            mpsc (round-robin)
//! listener ─────────▶ acceptor ──┬─────▶ reactor 0 ── handler 0 / device 0
//!                                ├─────▶ reactor 1 ── handler 1 / device 1
//!                                └─────▶ reactor N ── handler N / device N
//! ```

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use rhythm_obs::{NoopRecorder, Recorder};

use crate::metrics::Telemetry;
use crate::server::{CohortHandler, NetConfig, NetStats, Reactor};

/// Result of a sharded run: each shard's counters and handler, in shard
/// order.
#[derive(Debug)]
pub struct ShardedRun<H> {
    /// Per-shard `(stats, handler)` pairs, indexed by shard.
    pub shards: Vec<(NetStats, H)>,
}

impl<H> ShardedRun<H> {
    /// Cross-shard aggregate counters (sums, with peak fields maxed).
    pub fn total(&self) -> NetStats {
        let mut total = NetStats::default();
        for (stats, _) in &self.shards {
            total.merge(stats);
        }
        total
    }
}

/// The multi-reactor server: a listener plus N per-shard configurations
/// and handlers. Built with [`ShardedServer::bind`], driven to completion
/// by [`ShardedServer::run`].
#[derive(Debug)]
pub struct ShardedServer<H> {
    listener: TcpListener,
    config: NetConfig,
    handlers: Vec<H>,
    telemetry: Arc<Telemetry>,
}

impl<H: CohortHandler + Send> ShardedServer<H> {
    /// Bind a listener for a reactor per handler (`handlers.len()` is the
    /// shard count). Every shard uses the same `config`; note
    /// `max_connections` is per reactor, so the server-wide cap is
    /// `shards × max_connections`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    ///
    /// # Panics
    ///
    /// Panics if `handlers` is empty, or on a zero cohort size, context
    /// count, or connection cap.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: NetConfig,
        handlers: Vec<H>,
    ) -> std::io::Result<Self> {
        assert!(!handlers.is_empty(), "need at least one shard handler");
        assert!(config.cohort_size > 0, "cohort size must be nonzero");
        assert!(config.pool_contexts > 0, "need at least one context");
        assert!(config.max_connections > 0, "need at least one connection");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let telemetry = Telemetry::new(handlers.len());
        Ok(ShardedServer {
            listener,
            config,
            handlers,
            telemetry,
        })
    }

    /// Publish into a caller-created telemetry plane instead of the one
    /// [`ShardedServer::bind`] makes — lets the caller build per-shard
    /// device handlers against [`Telemetry::device`] before binding, and
    /// scrape the plane from outside while the server runs.
    ///
    /// # Panics
    ///
    /// Panics unless the plane's shard count matches the handler count.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Arc<Telemetry>) -> Self {
        assert_eq!(
            telemetry.shards(),
            self.handlers.len(),
            "telemetry shard count must match the handler count"
        );
        self.telemetry = Arc::clone(telemetry);
        self
    }

    /// The telemetry plane every shard publishes into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Number of reactor shards.
    pub fn shards(&self) -> usize {
        self.handlers.len()
    }

    /// The bound address (use with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until `stop` is raised, then drain every shard and return
    /// the per-shard counters and handlers.
    pub fn run(self, stop: &AtomicBool) -> ShardedRun<H> {
        self.run_traced(stop, &NoopRecorder)
    }

    /// [`ShardedServer::run`] with a recorder attached. Shard `i`'s
    /// events land on `net:s<i>`-prefixed tracks, so per-shard timelines
    /// stay distinguishable in one trace.
    pub fn run_traced<R: Recorder + Sync + ?Sized>(
        self,
        stop: &AtomicBool,
        rec: &R,
    ) -> ShardedRun<H> {
        let ShardedServer {
            listener,
            config,
            handlers,
            telemetry,
        } = self;
        let shards = handlers.len();
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(shards);
        let mut receivers: Vec<Receiver<TcpStream>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }

        let mut results: Vec<Option<(NetStats, H)>> = std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(shards);
            for (shard, (handler, rx)) in handlers.into_iter().zip(receivers).enumerate() {
                let mut reactor = Reactor::new(config.clone(), handler, Some(shard));
                reactor.attach_telemetry(&telemetry, shard);
                joins.push(scope.spawn(move || reactor_loop(reactor, rx, stop, rec)));
            }

            // The calling thread is the acceptor: round-robin accepted
            // streams over the shard channels. Admission control (the
            // connection cap, 503 shed) happens in the owning reactor.
            let mut next = 0usize;
            let mut idle = config.idle_sleep;
            while !stop.load(Ordering::Relaxed) {
                let mut progress = false;
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            progress = true;
                            // A send only fails if the reactor died; the
                            // stream drops (peer sees a reset).
                            let _ = senders[next].send(stream);
                            next = (next + 1) % shards;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
                if progress {
                    idle = config.idle_sleep;
                } else {
                    std::thread::sleep(idle);
                    idle = (idle * 2).min(config.idle_sleep_max);
                }
            }
            drop(senders);

            joins.into_iter().map(|j| j.join().ok()).collect()
        });

        ShardedRun {
            shards: results
                .drain(..)
                .map(|r| r.expect("shard thread"))
                .collect(),
        }
    }
}

/// One shard's service loop: drain the handoff channel into the reactor,
/// poll, and back off exponentially while idle.
fn reactor_loop<H: CohortHandler, R: Recorder + ?Sized>(
    mut reactor: Reactor<H>,
    rx: Receiver<TcpStream>,
    stop: &AtomicBool,
    rec: &R,
) -> (NetStats, H) {
    let idle_start = reactor.config().idle_sleep;
    let idle_max = reactor.config().idle_sleep_max;
    let mut idle = idle_start;
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        while let Ok(stream) = rx.try_recv() {
            reactor.admit(stream);
            progress = true;
        }
        progress |= reactor.poll_traced(rec);
        if progress {
            idle = idle_start;
        } else {
            reactor.note_idle();
            // Clamp the backoff to the earliest pending cohort fill
            // deadline (see `NetServer::run_traced`).
            let sleep = match reactor.next_fill_deadline() {
                Some(d) => idle.min(d),
                None => idle,
            };
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
            idle = (idle * 2).min(idle_max);
        }
    }
    // Streams still in flight on the channel at stop are admitted so
    // their sockets close through the normal drain path.
    while let Ok(stream) = rx.try_recv() {
        reactor.admit(stream);
    }
    reactor.drain(rec);
    reactor.into_parts()
}
