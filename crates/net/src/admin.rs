//! The in-band admin surface: `GET /metrics`, `GET /healthz`, and
//! `GET /trace`.
//!
//! Admin requests are intercepted in the reactor's read path **before
//! cohort formation** — they are answered from the shard's own thread via
//! the normal ordered-response queue, never classified, never batched,
//! and never sent to a device. They are counted in
//! [`NetStats::admin_requests`](crate::server::NetStats::admin_requests),
//! not in `requests`, so workload accounting (loadgen totals vs server
//! counters) stays exact even while a scraper polls `/metrics`.

use rhythm_http::ResponseBuilder;
use rhythm_http::{HttpRequest, Method};

use crate::metrics::Telemetry;

/// An admin endpoint matched by [`admin_route`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminRoute {
    /// `GET /metrics` — Prometheus text exposition, aggregated across
    /// shards at scrape time.
    Metrics,
    /// `GET /healthz` — a small JSON status document.
    Healthz,
    /// `GET /trace` — the flight recorders' recent events as a Chrome
    /// trace JSON document.
    Trace,
}

/// Match a parsed request against the admin surface. Only `GET` on the
/// exact paths counts; anything else flows into normal cohort dispatch.
pub fn admin_route(req: &HttpRequest) -> Option<AdminRoute> {
    if req.method != Method::Get {
        return None;
    }
    match req.path.as_str() {
        "/metrics" => Some(AdminRoute::Metrics),
        "/healthz" => Some(AdminRoute::Healthz),
        "/trace" => Some(AdminRoute::Trace),
        _ => None,
    }
}

fn ok_body(content_type: &str, body: &str) -> Vec<u8> {
    let mut r = ResponseBuilder::new(200, "OK");
    r.header("Content-Type", content_type);
    r.header("Server", "Rhythm/0.1");
    r.reserve_content_length();
    r.finish_headers();
    r.write_str(body);
    r.finish()
}

impl AdminRoute {
    /// Render the full HTTP response for this route from the live plane.
    pub fn respond(self, telemetry: &Telemetry) -> Vec<u8> {
        match self {
            AdminRoute::Metrics => ok_body(
                "text/plain; version=0.0.4; charset=utf-8",
                &telemetry.render_metrics(),
            ),
            AdminRoute::Healthz => ok_body("application/json", &telemetry.render_healthz()),
            AdminRoute::Trace => ok_body("application/json", &telemetry.render_trace()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> HttpRequest {
        HttpRequest::parse(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap()
    }

    #[test]
    fn routes_match_exact_get_paths_only() {
        assert_eq!(admin_route(&get("/metrics")), Some(AdminRoute::Metrics));
        assert_eq!(admin_route(&get("/healthz")), Some(AdminRoute::Healthz));
        assert_eq!(admin_route(&get("/trace")), Some(AdminRoute::Trace));
        // Query strings are stripped by the parser, so /metrics?x=1 still
        // routes.
        assert_eq!(admin_route(&get("/metrics?x=1")), Some(AdminRoute::Metrics));
        assert_eq!(admin_route(&get("/metricsx")), None);
        assert_eq!(admin_route(&get("/bank/login.php")), None);
        let post =
            HttpRequest::parse(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(admin_route(&post), None);
    }

    #[test]
    fn responses_are_well_formed_http() {
        let t = Telemetry::new(1);
        for (route, ct) in [
            (AdminRoute::Metrics, "text/plain; version=0.0.4"),
            (AdminRoute::Healthz, "application/json"),
            (AdminRoute::Trace, "application/json"),
        ] {
            let raw = route.respond(&t);
            let text = String::from_utf8(raw).unwrap();
            assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{route:?}");
            assert!(text.contains(ct), "{route:?}");
            assert!(text.contains("Content-Length: "), "{route:?}");
        }
        let metrics = AdminRoute::Metrics.respond(&t);
        let text = String::from_utf8(metrics).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        rhythm_obs::validate_prometheus_text(body).expect("metrics body validates");
    }
}
