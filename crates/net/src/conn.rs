//! The resumable per-connection reader: accumulate socket bytes, parse as
//! many complete requests as have arrived, and keep the remainder for the
//! next read (HTTP keep-alive and pipelining via `HttpRequest::consumed`).

use rhythm_http::{HttpRequest, ParseError};

/// Accumulates bytes from one connection and yields complete requests.
///
/// The paper's Reader stage gathers socket bytes until a full request is
/// present; this is that stage for one connection, made resumable:
///
/// * [`RequestAccumulator::feed`] appends freshly read bytes;
/// * [`RequestAccumulator::next_request`] drains one complete request if
///   the buffer holds one, keeps retryable partial input
///   (`Truncated`/`BodyTooShort`) for the next read, and converts
///   over-cap input into the fatal [`ParseError::TooLarge`].
///
/// Consumed bytes are removed from the buffer using the parser's
/// `consumed` count, so pipelined requests and keep-alive reuse resume at
/// exactly the right byte.
///
/// # Example
///
/// ```
/// use rhythm_net::RequestAccumulator;
///
/// let mut acc = RequestAccumulator::new(8192);
/// let raw = b"GET /bank/login.php?userid=7 HTTP/1.1\r\n\r\n";
/// // Bytes arrive in two arbitrary chunks.
/// acc.feed(&raw[..10]);
/// assert!(acc.next_request().unwrap().is_none(), "not complete yet");
/// acc.feed(&raw[10..]);
/// let req = acc.next_request().unwrap().expect("complete request");
/// assert_eq!(req.path, "/bank/login.php");
/// assert!(acc.is_empty(), "consumed bytes are drained");
/// ```
#[derive(Clone, Debug)]
pub struct RequestAccumulator {
    buf: Vec<u8>,
    max_request_bytes: usize,
}

impl RequestAccumulator {
    /// A reader capped at `max_request_bytes` per request (headers +
    /// declared body).
    ///
    /// # Panics
    ///
    /// Panics if the cap is zero.
    pub fn new(max_request_bytes: usize) -> Self {
        assert!(max_request_bytes > 0, "request cap must be nonzero");
        RequestAccumulator {
            buf: Vec::new(),
            max_request_bytes,
        }
    }

    /// Append freshly read socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (partial request input).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when no partial input is pending.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Try to parse the next complete request from the buffer.
    ///
    /// * `Ok(Some(req))` — a complete request; its bytes (headers + body,
    ///   per `req.consumed`) have been drained from the buffer. Call
    ///   again: pipelined requests may still be buffered.
    /// * `Ok(None)` — the buffered input is an incomplete prefix; feed
    ///   more bytes and retry.
    ///
    /// # Errors
    ///
    /// Fatal, non-retryable errors: [`ParseError::TooLarge`] when the
    /// request cannot fit the cap (answer 413), or any malformed-request
    /// variant (answer 400). The connection should be closed after the
    /// error response; the buffer is left untouched.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, ParseError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        match HttpRequest::parse_limited(&self.buf, self.max_request_bytes) {
            Ok(req) => {
                self.buf.drain(..req.consumed);
                Ok(Some(req))
            }
            Err(ParseError::Truncated) | Err(ParseError::BodyTooShort { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GET: &[u8] =
        b"GET /bank/account_summary.php?userid=3 HTTP/1.1\r\nHost: h\r\nCookie: SID=9\r\n\r\n";
    const POST: &[u8] =
        b"POST /bank/login.php HTTP/1.1\r\nHost: h\r\nContent-Length: 8\r\n\r\nuserid=7";

    #[test]
    fn whole_request_in_one_feed() {
        let mut acc = RequestAccumulator::new(4096);
        acc.feed(GET);
        let req = acc.next_request().unwrap().expect("complete");
        assert_eq!(req.file_name(), "account_summary.php");
        assert!(acc.is_empty());
        assert!(acc.next_request().unwrap().is_none());
    }

    #[test]
    fn split_at_every_byte_boundary_parses_identically() {
        let reference = HttpRequest::parse(POST).unwrap();
        for split in 0..=POST.len() {
            let mut acc = RequestAccumulator::new(4096);
            acc.feed(&POST[..split]);
            if split < POST.len() {
                assert!(
                    acc.next_request().unwrap().is_none(),
                    "prefix of {split} bytes must be incomplete"
                );
                acc.feed(&POST[split..]);
            }
            let req = acc.next_request().unwrap().expect("complete after join");
            assert_eq!(req, reference, "split at byte {split}");
            assert!(acc.is_empty());
        }
    }

    #[test]
    fn pipelined_requests_resume_at_consumed() {
        let mut raw = POST.to_vec();
        raw.extend_from_slice(GET);
        let mut acc = RequestAccumulator::new(4096);
        acc.feed(&raw);
        let first = acc.next_request().unwrap().expect("first");
        assert_eq!(first.file_name(), "login.php");
        assert_eq!(acc.buffered(), GET.len(), "second request still buffered");
        let second = acc.next_request().unwrap().expect("second");
        assert_eq!(second.file_name(), "account_summary.php");
        assert!(acc.is_empty());
    }

    #[test]
    fn oversized_header_is_fatal_too_large() {
        let mut acc = RequestAccumulator::new(64);
        acc.feed(b"GET / HTTP/1.1\r\n");
        assert!(acc.next_request().unwrap().is_none(), "below cap: retry");
        acc.feed(&[b'a'; 64]);
        assert!(matches!(
            acc.next_request().unwrap_err(),
            ParseError::TooLarge { .. }
        ));
    }

    #[test]
    fn lying_content_length_is_fatal_not_buffering_forever() {
        let mut acc = RequestAccumulator::new(1024);
        acc.feed(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        assert!(matches!(
            acc.next_request().unwrap_err(),
            ParseError::TooLarge { .. }
        ));
    }

    #[test]
    fn malformed_request_is_fatal() {
        let mut acc = RequestAccumulator::new(1024);
        acc.feed(b"BREW /pot HTTP/1.1\r\n\r\n");
        assert_eq!(acc.next_request().unwrap_err(), ParseError::BadMethod);
    }
}
