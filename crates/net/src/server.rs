//! The poll-style cohort reactor: non-blocking accept/read over
//! `std::net`, cohort formation via `rhythm-core`'s context pool, and
//! overload shedding.
//!
//! The connection/cohort state machine lives in [`Reactor`], which owns
//! admitted connections but no listener: streams are handed to it via
//! [`Reactor::admit`]. [`NetServer`] is the single-reactor server (one
//! listener feeding one reactor); [`crate::shard::ShardedServer`] runs N
//! reactors behind one acceptor for the multi-reactor front end.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rhythm_core::{CohortPool, CohortState, ContextId};
use rhythm_http::{HttpRequest, ParseError};
use rhythm_obs::{ArgValue, Clock, NoopRecorder, Recorder};

use crate::admin;
use crate::conn::RequestAccumulator;
use crate::controller::{Controller, ControllerConfig};
use crate::metrics::{ShardMetrics, Telemetry};
use crate::responses;

/// Executes one uniform-key cohort of parsed requests.
///
/// `rhythm-net` forms cohorts; what a cohort *does* is the workload's
/// business. `rhythm-banking` implements this for the native (scalar) and
/// SIMT device paths.
pub trait CohortHandler {
    /// Map a request to its cohort key (the paper groups by request
    /// type). `None` means the request has no kernel — it is answered
    /// immediately with [`CohortHandler::reject`] and never batched.
    fn classify(&self, req: &HttpRequest) -> Option<u32>;

    /// Execute one cohort of same-key requests, returning one raw HTTP
    /// response per request, in order. Must not panic on odd inputs: a
    /// short return is padded with `500`s by the server.
    fn execute(&mut self, key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>>;

    /// Execute a batch of cohorts that became launchable in the same poll
    /// iteration, in launch order, returning one response vector per
    /// cohort (aligned with `cohorts`).
    ///
    /// The default runs each cohort through [`CohortHandler::execute`]
    /// sequentially. Device-backed handlers may override it to keep the
    /// device saturated with concurrent per-type launches (the HyperQ
    /// path), as long as results stay identical to sequential execution
    /// in launch order.
    fn execute_many(&mut self, cohorts: &[(u32, Vec<HttpRequest>)]) -> Vec<Vec<Vec<u8>>> {
        cohorts
            .iter()
            .map(|(key, reqs)| self.execute(*key, reqs))
            .collect()
    }

    /// Response for a request [`CohortHandler::classify`] refused.
    fn reject(&self, _req: &HttpRequest) -> Vec<u8> {
        responses::not_found_404()
    }

    /// Human-readable name for a cohort key, used as the `type` label on
    /// live latency histograms. Called at most once per key per shard.
    fn key_name(&self, key: u32) -> String {
        format!("key_{key}")
    }
}

/// Front-end configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Admitted-connection cap **per reactor**; connections beyond it are
    /// shed with `503` + `Retry-After` at admission time.
    pub max_connections: usize,
    /// Per-request size cap (headers + declared body); larger gets `413`.
    pub max_request_bytes: usize,
    /// Idle connections (no bytes, no responses in flight) older than
    /// this are reaped — a stalled or half-open client cannot hold a slot
    /// forever. Connections with queued output that accept no bytes for
    /// this long (stalled readers) are reaped too.
    pub read_deadline: Duration,
    /// Target cohort size (requests per kernel launch).
    pub cohort_size: usize,
    /// Formation timeout: a PartiallyFull cohort launches at this age
    /// even if not full (paper: bounded extra delay).
    pub fill_timeout: Duration,
    /// Preallocated cohort contexts; running out sheds with `503`.
    pub pool_contexts: u32,
    /// Initial sleep between polls when nothing progressed. Grows
    /// exponentially up to [`NetConfig::idle_sleep_max`] while the loop
    /// stays idle and resets on any progress, so an idle reactor does not
    /// burn its core (with N reactors, N cores).
    pub idle_sleep: Duration,
    /// Cap for the idle-sleep exponential backoff.
    pub idle_sleep_max: Duration,
    /// Per-connection queued-output cap in bytes (write buffer plus
    /// out-of-order responses waiting for earlier sequences). A
    /// connection at or over the cap stops being **read** until the
    /// backlog drains, so a pipelining client that stops reading cannot
    /// grow server memory without bound.
    pub max_queued_bytes: usize,
    /// Max complete requests parsed per connection per poll. Responses
    /// are only produced for parsed requests, so together with
    /// [`NetConfig::max_queued_bytes`] this bounds how far a deep
    /// pipeline released from a backpressure pause can spike the queued
    /// backlog in a single poll; leftover bytes stay buffered and parse
    /// on later polls. Sized generously by default — it only binds on
    /// pipelines deeper than several cohorts per poll.
    pub max_parse_per_poll: usize,
    /// `Retry-After` seconds advertised on `503` sheds.
    pub retry_after_s: u32,
    /// Enable the live telemetry plane: seqlock counter publication, live
    /// latency/fill histograms, the flight recorder, and the in-band
    /// admin endpoints (`/metrics`, `/healthz`, `/trace`). With `false`
    /// the reactor runs bare — no publication, no admin interception —
    /// which is the baseline for the metering-overhead gate. Responses on
    /// the workload path are byte-identical either way.
    pub telemetry: bool,
    /// Declared end-to-end p99 latency SLO the adaptive controller
    /// steers against. Ignored unless [`NetConfig::adaptive`] is set.
    pub slo_p99: Duration,
    /// Enable SLO-aware adaptive batching: a per-shard
    /// [`crate::controller::Controller`] observes the live latency/fill
    /// histograms and drives target cohort depth and fill deadline in
    /// place of the fixed `cohort_size`/`fill_timeout` pair
    /// (`cohort_size` stays the capacity ceiling, `fill_timeout` the
    /// pre-first-tick deadline). Purely observational with respect to
    /// results: responses are byte-identical at any setting. Requires
    /// [`NetConfig::telemetry`].
    pub adaptive: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 256,
            max_request_bytes: 16 * 1024,
            read_deadline: Duration::from_secs(10),
            cohort_size: 32,
            fill_timeout: Duration::from_millis(2),
            pool_contexts: 8,
            idle_sleep: Duration::from_micros(200),
            idle_sleep_max: Duration::from_millis(5),
            max_queued_bytes: 256 * 1024,
            max_parse_per_poll: 256,
            retry_after_s: 1,
            telemetry: true,
            slo_p99: Duration::from_millis(20),
            adaptive: false,
        }
    }
}

/// Counters accumulated over one reactor run.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct NetStats {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections shed at admission time (over the connection cap).
    pub rejected_over_cap: u64,
    /// Peak simultaneous admitted connections.
    pub peak_connections: usize,
    /// Complete requests parsed off sockets.
    pub requests: u64,
    /// Responses produced by the cohort handler.
    pub responses: u64,
    /// Responses whose connection vanished before delivery.
    pub responses_dropped: u64,
    /// Cohorts launched.
    pub cohorts: u64,
    /// Cohorts launched full.
    pub full_launches: u64,
    /// Cohorts launched by the formation timeout.
    pub timeout_launches: u64,
    /// Sum of launch fills (see [`NetStats::mean_fill`]).
    pub fill_sum: f64,
    /// Sum of cohort sizes at launch (requests per launch).
    pub launched_requests: u64,
    /// Requests shed with `503` (pool exhausted or FSM refusal).
    pub shed_503: u64,
    /// Requests rejected with `413` (size cap).
    pub too_large_413: u64,
    /// Requests rejected with `400` (malformed).
    pub bad_request_400: u64,
    /// Requests the handler refused to classify (`404` by default).
    pub unclassified: u64,
    /// Fallible-FSM refusals survived without panicking.
    pub fsm_rejections: u64,
    /// Idle/half-open connections reaped by the read deadline.
    pub reaped_idle: u64,
    /// Connections with queued output reaped because the peer stopped
    /// reading for a full read-deadline.
    pub reaped_stalled: u64,
    /// No-progress poll iterations that slept (idle backoff engaged).
    pub idle_polls: u64,
    /// Socket reads skipped because the connection's queued output was at
    /// or over [`NetConfig::max_queued_bytes`] (write backpressure).
    pub reads_paused: u64,
    /// Largest per-connection queued-output backlog observed, in bytes.
    pub peak_queued_bytes: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Admin-surface requests (`/metrics`, `/healthz`, `/trace`) answered
    /// in-band. Counted separately from [`NetStats::requests`] so
    /// workload accounting stays exact while a scraper polls.
    pub admin_requests: u64,
}

impl NetStats {
    /// Mean cohort fill at launch (1.0 = always full).
    pub fn mean_fill(&self) -> f64 {
        if self.cohorts == 0 {
            0.0
        } else {
            self.fill_sum / self.cohorts as f64
        }
    }

    /// Mean requests per cohort launch.
    pub fn mean_requests_per_launch(&self) -> f64 {
        if self.cohorts == 0 {
            0.0
        } else {
            self.launched_requests as f64 / self.cohorts as f64
        }
    }

    /// Fold another reactor's counters into this one (sums counters,
    /// maxes peaks) — the cross-shard aggregate of a sharded run.
    pub fn merge(&mut self, other: &NetStats) {
        self.accepted += other.accepted;
        self.rejected_over_cap += other.rejected_over_cap;
        self.peak_connections = self.peak_connections.max(other.peak_connections);
        self.requests += other.requests;
        self.responses += other.responses;
        self.responses_dropped += other.responses_dropped;
        self.cohorts += other.cohorts;
        self.full_launches += other.full_launches;
        self.timeout_launches += other.timeout_launches;
        self.fill_sum += other.fill_sum;
        self.launched_requests += other.launched_requests;
        self.shed_503 += other.shed_503;
        self.too_large_413 += other.too_large_413;
        self.bad_request_400 += other.bad_request_400;
        self.unclassified += other.unclassified;
        self.fsm_rejections += other.fsm_rejections;
        self.reaped_idle += other.reaped_idle;
        self.reaped_stalled += other.reaped_stalled;
        self.idle_polls += other.idle_polls;
        self.reads_paused += other.reads_paused;
        self.peak_queued_bytes = self.peak_queued_bytes.max(other.peak_queued_bytes);
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.admin_requests += other.admin_requests;
    }
}

/// One admitted connection's state.
#[derive(Debug)]
struct Connection {
    stream: TcpStream,
    acc: RequestAccumulator,
    /// Bytes queued for writing; `out_pos` marks how far we've written.
    out: Vec<u8>,
    out_pos: usize,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Next sequence number whose response goes on the wire (responses
    /// must leave in request order even when cohorts retire out of
    /// order).
    next_to_send: u64,
    /// Completed responses waiting for earlier sequences.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Bytes held in `ready` (backpressure accounting).
    ready_bytes: usize,
    last_activity: Instant,
    /// Stop reading; close once drained (fatal parse error sent).
    closing: bool,
    /// Peer closed its write side.
    eof: bool,
    /// I/O error; drop without draining.
    dead: bool,
}

impl Connection {
    fn new(stream: TcpStream, max_request_bytes: usize) -> Self {
        Connection {
            stream,
            acc: RequestAccumulator::new(max_request_bytes),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_to_send: 0,
            ready: BTreeMap::new(),
            ready_bytes: 0,
            last_activity: Instant::now(),
            closing: false,
            eof: false,
            dead: false,
        }
    }

    /// Responses assigned but not yet appended to the write buffer.
    fn outstanding(&self) -> u64 {
        self.next_seq - self.next_to_send
    }

    fn out_drained(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    /// Bytes queued toward this connection: unwritten output plus
    /// responses parked out of order. This is what the backpressure cap
    /// bounds.
    fn queued_bytes(&self) -> usize {
        (self.out.len() - self.out_pos) + self.ready_bytes
    }

    /// Record the response for `seq` and move every now-in-order response
    /// into the write buffer.
    fn complete(&mut self, seq: u64, bytes: Vec<u8>) {
        self.ready_bytes += bytes.len();
        self.ready.insert(seq, bytes);
        while let Some(b) = self.ready.remove(&self.next_to_send) {
            self.ready_bytes -= b.len();
            self.out.extend_from_slice(&b);
            self.next_to_send += 1;
        }
    }

    /// Assign a sequence number and complete it immediately (canned
    /// responses that never reach a cohort).
    fn respond_now(&mut self, bytes: Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.complete(seq, bytes);
    }
}

/// A parsed request waiting in a cohort context, remembering where its
/// response must go.
#[derive(Clone, Debug)]
struct Pending {
    conn: u64,
    seq: u64,
    req: HttpRequest,
    arrived: Instant,
}

/// The connection/cohort state machine of one reactor thread: admitted
/// connections, per-type cohort contexts, and the run's counters.
///
/// A reactor owns no listener — streams are pushed in through
/// [`Reactor::admit`] (by [`NetServer`]'s accept loop or by the sharded
/// acceptor). Each [`Reactor::poll_traced`] reads every readable socket,
/// parses complete requests, dispatches them into cohort contexts, marks
/// full or timed-out cohorts, launches the marked batch through the
/// [`CohortHandler`] (one `execute_many` call, so device handlers can
/// keep concurrent per-type launches in flight), and flushes responses.
#[derive(Debug)]
pub struct Reactor<H> {
    config: NetConfig,
    handler: H,
    pool: CohortPool<Pending>,
    conns: HashMap<u64, Connection>,
    next_conn_id: u64,
    stats: NetStats,
    epoch: Instant,
    /// Shard index for obs track names; `None` keeps the single-reactor
    /// names (`net`, `net:device`, `net:ctx<N>`).
    shard: Option<usize>,
    /// Contexts marked launchable this poll: `(context, by_timeout)`.
    launchable: Vec<(ContextId, bool)>,
    /// The cross-shard telemetry plane this reactor publishes into (a
    /// standalone single-shard plane until
    /// [`Reactor::attach_telemetry`] rebinds it).
    telemetry: Arc<Telemetry>,
    /// This reactor's own shard registry within [`Reactor::telemetry`]
    /// (cached so the hot path never indexes through the plane).
    metrics: Arc<ShardMetrics>,
    /// Interned flight-recorder name ids (see [`FlightNames`]).
    flight_names: FlightNames,
    /// The adaptive batching controller (`None` runs the fixed
    /// `cohort_size`/`fill_timeout` policy).
    controller: Option<Controller>,
    /// Cohorts launch without waiting for the deadline once they hold
    /// this many requests. Fixed mode: `cohort_size` (so only the FSM's
    /// own Full transition triggers early launch).
    target_depth: usize,
    /// Current fill deadline, seconds. Fixed mode: `fill_timeout`.
    deadline_s: f64,
}

/// Interned flight-recorder event-name ids, re-interned whenever the
/// telemetry plane is rebound.
#[derive(Clone, Copy, Debug)]
struct FlightNames {
    /// "cohort batch" span (track 1; arg = requests in the batch).
    cohorts: u32,
    /// "shed 503" instant (track 0).
    shed: u32,
    /// "admin" instant (track 0).
    admin: u32,
    /// Sampled "poll" instant (track 0; arg = 1 when the poll progressed).
    poll: u32,
}

impl FlightNames {
    fn intern(metrics: &ShardMetrics) -> Self {
        let f = metrics.flight();
        FlightNames {
            cohorts: f.intern("cohort batch"),
            shed: f.intern("shed 503"),
            admin: f.intern("admin"),
            poll: f.intern("poll"),
        }
    }
}

impl<H: CohortHandler> Reactor<H> {
    /// A reactor over `handler`. `shard` selects the obs track namespace:
    /// `Some(i)` prefixes tracks with `s<i>:` so per-shard timelines stay
    /// distinguishable in one trace.
    ///
    /// # Panics
    ///
    /// Panics on a zero cohort size, context count, or connection cap.
    pub fn new(config: NetConfig, handler: H, shard: Option<usize>) -> Self {
        assert!(config.cohort_size > 0, "cohort size must be nonzero");
        assert!(config.pool_contexts > 0, "need at least one context");
        assert!(config.max_connections > 0, "need at least one connection");
        assert!(
            !config.adaptive || config.telemetry,
            "adaptive batching observes the live histograms; enable telemetry"
        );
        let pool = CohortPool::new(config.pool_contexts, config.cohort_size);
        let telemetry = Telemetry::new(1);
        let metrics = Arc::clone(telemetry.shard(0));
        let flight_names = FlightNames::intern(&metrics);
        let controller = config
            .adaptive
            .then(|| Controller::new(ControllerConfig::from_net(&config), config.fill_timeout));
        let target_depth = config.cohort_size;
        let deadline_s = config.fill_timeout.as_secs_f64();
        Reactor {
            config,
            handler,
            pool,
            conns: HashMap::new(),
            next_conn_id: 0,
            stats: NetStats::default(),
            epoch: Instant::now(),
            shard,
            launchable: Vec::new(),
            telemetry,
            metrics,
            flight_names,
            controller,
            target_depth,
            deadline_s,
        }
    }

    /// Rebind this reactor to shard `shard` of a shared telemetry plane
    /// (the sharded server attaches every reactor to one plane so
    /// `/metrics` on any connection sees all shards).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for the plane.
    pub fn attach_telemetry(&mut self, telemetry: &Arc<Telemetry>, shard: usize) {
        assert!(shard < telemetry.shards(), "shard out of range");
        self.telemetry = Arc::clone(telemetry);
        self.metrics = Arc::clone(telemetry.shard(shard));
        self.flight_names = FlightNames::intern(&self.metrics);
    }

    /// The telemetry plane this reactor publishes into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The reactor's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Borrow the workload handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Consume the reactor, yielding the run's counters and the handler.
    pub fn into_parts(self) -> (NetStats, H) {
        (self.stats, self.handler)
    }

    /// Record one no-progress poll that slept (idle backoff accounting;
    /// run loops call this before sleeping).
    pub fn note_idle(&mut self) {
        self.stats.idle_polls += 1;
    }

    fn net_track(&self) -> String {
        match self.shard {
            None => "net".to_string(),
            Some(s) => format!("net:s{s}"),
        }
    }

    fn device_track(&self) -> String {
        match self.shard {
            None => "net:device".to_string(),
            Some(s) => format!("net:s{s}:device"),
        }
    }

    fn ctx_track(&self, id: ContextId) -> String {
        match self.shard {
            None => format!("net:ctx{id}"),
            Some(s) => format!("net:s{s}:ctx{id}"),
        }
    }

    /// Take ownership of an accepted stream: admit it (non-blocking, slot
    /// accounting) or shed it with `503` when this reactor is at its
    /// connection cap.
    pub fn admit(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.config.max_connections {
            // Over the cap: shed at the door with an explicit retry hint
            // rather than queueing unboundedly.
            self.stats.rejected_over_cap += 1;
            let mut s = stream;
            let _ = s.set_nonblocking(false);
            let _ = s.write_all(&responses::shed_503(self.config.retry_after_s));
            let _ = s.shutdown(Shutdown::Both);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        self.stats.accepted += 1;
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.conns
            .insert(id, Connection::new(stream, self.config.max_request_bytes));
        self.stats.peak_connections = self.stats.peak_connections.max(self.conns.len());
    }

    /// One non-blocking service iteration; returns whether anything
    /// progressed (callers should back off briefly when it did not).
    pub fn poll(&mut self) -> bool {
        self.poll_traced(&NoopRecorder)
    }

    /// [`Reactor::poll`] with a recorder attached.
    pub fn poll_traced<R: Recorder + ?Sized>(&mut self, rec: &R) -> bool {
        let mut progress = false;
        let parsed = self.read_sockets(&mut progress);
        for p in parsed {
            self.dispatch(p, rec);
            progress = true;
        }
        self.tick_controller();
        self.mark_launchable();
        progress |= self.flush_launches(rec);
        progress |= self.write_sockets();
        self.reap();
        self.publish_metrics();
        if self.config.telemetry {
            // Sampled heartbeat on the flight recorder's shard track, so
            // a /trace dump shows the poll cadence without flooding the
            // ring at megahertz poll rates.
            let flight = self.metrics.flight();
            if flight.tick(256) {
                flight.instant(self.flight_names.poll, 0, flight.now_us(), progress as u64);
            }
        }
        progress
    }

    /// How many requests currently sit in open (PartiallyFull/Full)
    /// cohort contexts — the in-flight term of the accounting invariant.
    /// (No context is Busy at the call sites: launches complete within
    /// `flush_launches`.)
    fn in_cohort(&self) -> u64 {
        (0..self.pool.len() as ContextId)
            .filter(|&id| {
                matches!(
                    self.pool.get(id).state(),
                    CohortState::PartiallyFull | CohortState::Full
                )
            })
            .map(|id| self.pool.get(id).members().len() as u64)
            .sum()
    }

    /// Publish a consistent counter snapshot into the shard's seqlock
    /// cell (end of every poll, and after drain). This is the point at
    /// which `requests == responses + shed_503 + unclassified +
    /// in_cohort` must balance.
    fn publish_metrics(&self) {
        if !self.config.telemetry {
            return;
        }
        let in_cohort = self.in_cohort();
        debug_assert_eq!(
            self.stats.requests,
            self.stats.responses + self.stats.shed_503 + self.stats.unclassified + in_cohort,
            "accounting invariant broken at publish"
        );
        self.metrics
            .publish(&self.stats, in_cohort, self.conns.len() as u64);
    }

    /// After the stop flag: launch whatever is still partially formed and
    /// push out pending bytes (bounded, best effort).
    pub fn drain<R: Recorder + ?Sized>(&mut self, rec: &R) {
        for id in 0..self.pool.len() as ContextId {
            if self.pool.get(id).state() == CohortState::PartiallyFull {
                self.launchable.push((id, true));
            }
        }
        self.flush_launches(rec);
        for _ in 0..64 {
            if !self.write_sockets() {
                break;
            }
        }
        self.publish_metrics();
    }

    /// Read every readable socket and parse complete requests. Requests
    /// are returned (rather than dispatched inline) so the borrow of the
    /// connection map ends before cohort dispatch begins.
    fn read_sockets(&mut self, progress: &mut bool) -> Vec<Pending> {
        let mut parsed = Vec::new();
        let mut chunk = [0u8; 4096];
        for (&id, conn) in self.conns.iter_mut() {
            if conn.closing || conn.dead || conn.eof {
                continue;
            }
            if conn.queued_bytes() >= self.config.max_queued_bytes {
                // Write backpressure: the peer is not draining its
                // responses, so stop reading (and thus stop creating
                // work) for this socket until the backlog clears.
                self.stats.reads_paused += 1;
                continue;
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.acc.feed(&chunk[..n]);
                        self.stats.bytes_in += n as u64;
                        conn.last_activity = Instant::now();
                        *progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            // Bounded parse quantum: the backpressure check above only
            // sees the backlog between polls, so without this cap a deep
            // pipeline released from a pause would be parsed (and
            // answered) all at once, spiking the queue to the whole
            // pipeline's response volume.
            let budget = self.config.max_parse_per_poll;
            let mut taken = 0usize;
            while taken < budget {
                match conn.acc.next_request() {
                    Ok(Some(req)) => {
                        taken += 1;
                        if self.config.telemetry {
                            if let Some(route) = admin::admin_route(&req) {
                                // Admin endpoints are answered here,
                                // before cohort formation: they never
                                // reach classify/dispatch and are counted
                                // apart from workload requests.
                                self.stats.admin_requests += 1;
                                let flight = self.metrics.flight();
                                flight.instant(self.flight_names.admin, 0, flight.now_us(), 0);
                                conn.respond_now(route.respond(&self.telemetry));
                                *progress = true;
                                continue;
                            }
                        }
                        self.stats.requests += 1;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        parsed.push(Pending {
                            conn: id,
                            seq,
                            req,
                            arrived: Instant::now(),
                        });
                    }
                    Ok(None) => break,
                    Err(ParseError::TooLarge { .. }) => {
                        self.stats.too_large_413 += 1;
                        conn.respond_now(responses::too_large_413());
                        conn.closing = true;
                        break;
                    }
                    Err(e) => {
                        self.stats.bad_request_400 += 1;
                        conn.respond_now(responses::bad_request_400(&e.to_string()));
                        conn.closing = true;
                        break;
                    }
                }
            }
        }
        parsed
    }

    /// Dispatch one parsed request into a cohort context, shedding with
    /// `503` when no context can take it. Never panics: FSM refusals
    /// (which the guarded lookup makes unreachable) shed the request too.
    fn dispatch<R: Recorder + ?Sized>(&mut self, p: Pending, rec: &R) {
        let Some(key) = self.handler.classify(&p.req) else {
            self.stats.unclassified += 1;
            let resp = self.handler.reject(&p.req);
            self.route(p.conn, p.seq, resp, None, rec);
            return;
        };
        let now_s = self.epoch.elapsed().as_secs_f64();
        let mut ctx = self.pool.open_for(key).or_else(|| self.pool.acquire());
        if ctx.is_none() {
            // Every context is occupied but some may only be waiting for
            // this poll's batched launch (already marked Full, past the
            // deadline, or at the adaptive target depth): flush the
            // batch to free them instead of shedding a request the old
            // immediate-launch server would have taken.
            self.mark_launchable();
            if !self.launchable.is_empty() {
                self.flush_launches(rec);
                ctx = self.pool.open_for(key).or_else(|| self.pool.acquire());
            }
        }
        let Some(id) = ctx else {
            self.shed(p, rec);
            return;
        };
        let fresh = self.pool.get(id).state() == CohortState::Free;
        match self.pool.get_mut(id).add(p, key, now_s) {
            Ok(()) => {
                if rec.enabled() {
                    let full = self.pool.get(id).state() == CohortState::Full;
                    let name = match (fresh, full) {
                        (true, true) => "Free→Full",
                        (true, false) => "Free→PartiallyFull",
                        (false, true) => "PartiallyFull→Full",
                        (false, false) => "",
                    };
                    if !name.is_empty() {
                        let fill = self.pool.get(id).fill();
                        rec.instant(
                            Clock::Wall,
                            &self.ctx_track(id),
                            name,
                            rec.wall_now_us(),
                            &[("fill", ArgValue::F64(fill))],
                        );
                    }
                }
                if self.pool.get(id).state() == CohortState::Full {
                    self.launchable.push((id, false));
                }
            }
            Err(rej) => {
                // One bad dispatch must never take down the loop: the
                // refused request is shed like a pool-exhaustion stall.
                self.stats.fsm_rejections += 1;
                self.shed(rej.request, rec);
            }
        }
    }

    /// Answer `503` + `Retry-After` for a request no context can hold.
    fn shed<R: Recorder + ?Sized>(&mut self, p: Pending, rec: &R) {
        self.stats.shed_503 += 1;
        if self.config.telemetry {
            let flight = self.metrics.flight();
            flight.instant(self.flight_names.shed, 0, flight.now_us(), 1);
        }
        if rec.enabled() {
            rec.counter(
                Clock::Wall,
                &self.net_track(),
                "shed_503",
                rec.wall_now_us(),
                self.stats.shed_503 as f64,
            );
        }
        let resp = responses::shed_503(self.config.retry_after_s);
        self.route(p.conn, p.seq, resp, None, rec);
    }

    /// Re-evaluate the adaptive controller (no-op between ticks and in
    /// fixed mode), updating the target depth and fill deadline the mark
    /// pass below launches against.
    fn tick_controller(&mut self) {
        let Some(ctl) = &mut self.controller else {
            return;
        };
        let now_s = self.epoch.elapsed().as_secs_f64();
        let d = ctl.observe(now_s, self.stats.requests, &self.metrics);
        self.target_depth = d.depth.min(self.config.cohort_size).max(1);
        self.deadline_s = d.deadline_s;
    }

    /// Mark PartiallyFull cohorts for this poll's launch batch: cohorts
    /// at or past the controller's target depth launch as "full" (in
    /// fixed mode depth equals capacity, so only the FSM's own Full
    /// transition in [`Reactor::dispatch`] fires that reason); cohorts
    /// older than the fill deadline launch as "timeout".
    fn mark_launchable(&mut self) {
        let now_s = self.epoch.elapsed().as_secs_f64();
        for id in 0..self.pool.len() as ContextId {
            if self.pool.get(id).state() != CohortState::PartiallyFull {
                continue;
            }
            if self.pool.get(id).members().len() >= self.target_depth {
                self.launchable.push((id, false));
            } else if now_s - self.pool.get(id).opened_at() >= self.deadline_s {
                self.launchable.push((id, true));
            }
        }
    }

    /// Time until the earliest PartiallyFull cohort's fill deadline, or
    /// `None` when no cohort is forming. Idle run loops clamp their
    /// backoff sleep to this so an exponentially grown idle sleep cannot
    /// overshoot a pending deadline and silently add queue latency.
    pub fn next_fill_deadline(&self) -> Option<Duration> {
        let now_s = self.epoch.elapsed().as_secs_f64();
        (0..self.pool.len() as ContextId)
            .filter(|&id| self.pool.get(id).state() == CohortState::PartiallyFull)
            .map(|id| self.deadline_s - (now_s - self.pool.get(id).opened_at()))
            .min_by(f64::total_cmp)
            .map(|s| Duration::from_secs_f64(s.max(0.0)))
    }

    /// The batching policy currently in force as `(target_depth,
    /// fill_deadline)` — the fixed config pair, or the adaptive
    /// controller's latest decision.
    pub fn batching(&self) -> (usize, Duration) {
        (self.target_depth, Duration::from_secs_f64(self.deadline_s))
    }

    /// Launch every context marked this poll through one
    /// [`CohortHandler::execute_many`] call and route the responses back
    /// onto their connections. Returns whether anything launched.
    fn flush_launches<R: Recorder + ?Sized>(&mut self, rec: &R) -> bool {
        if self.launchable.is_empty() {
            return false;
        }
        let marked = std::mem::take(&mut self.launchable);
        let mut batch: Vec<(u32, Vec<HttpRequest>)> = Vec::with_capacity(marked.len());
        // Per launched cohort: context id, member count, fill at launch,
        // cohort key.
        let mut meta: Vec<(ContextId, usize, f64, u32)> = Vec::with_capacity(marked.len());
        for (id, by_timeout) in marked {
            let fill = self.pool.get(id).fill();
            let n = self.pool.get(id).members().len();
            let key = self.pool.get(id).key();
            if self.pool.get_mut(id).launch().is_err() {
                // Unreachable (mark sites guard the state), but a refusal
                // only costs this launch attempt, not the server.
                self.stats.fsm_rejections += 1;
                continue;
            }
            self.stats.cohorts += 1;
            self.stats.launched_requests += n as u64;
            self.stats.fill_sum += fill;
            if by_timeout {
                self.stats.timeout_launches += 1;
            } else {
                self.stats.full_launches += 1;
            }
            if self.config.telemetry {
                self.metrics.record_fill(fill);
                let handler = &self.handler;
                self.metrics.record_launch(
                    key,
                    || handler.key_name(key),
                    by_timeout,
                    n as u64,
                    fill,
                );
            }
            if rec.enabled() {
                let name = if by_timeout {
                    "PartiallyFull→Busy (timeout)"
                } else {
                    "Full→Busy"
                };
                rec.instant(
                    Clock::Wall,
                    &self.ctx_track(id),
                    name,
                    rec.wall_now_us(),
                    &[("fill", ArgValue::F64(fill))],
                );
                rec.sample("cohort_fill", fill);
            }
            let reqs: Vec<HttpRequest> = self
                .pool
                .get(id)
                .members()
                .iter()
                .map(|m| m.req.clone())
                .collect();
            batch.push((key, reqs));
            meta.push((id, n, fill, key));
        }
        if batch.is_empty() {
            return false;
        }

        // The contexts stay Busy for the duration of the batched handler
        // call — the wall-clock analogue of the pipeline's execute phase.
        let total: usize = meta.iter().map(|&(_, n, _, _)| n).sum();
        let t0 = rec.wall_now_us();
        let ft0 = if self.config.telemetry {
            self.metrics.flight().now_us()
        } else {
            0
        };
        let mut replies = self.handler.execute_many(&batch);
        if self.config.telemetry {
            let flight = self.metrics.flight();
            let ft1 = flight.now_us();
            flight.span(self.flight_names.cohorts, 1, ft0, ft1 - ft0, total as u64);
        }
        if rec.enabled() {
            let t1 = rec.wall_now_us();
            rec.span(
                Clock::Wall,
                &self.device_track(),
                &format!("cohorts x{}", batch.len()),
                t0,
                t1 - t0,
                &[
                    ("cohorts", ArgValue::U64(batch.len() as u64)),
                    ("requests", ArgValue::U64(total as u64)),
                ],
            );
            for &(id, _, _, _) in &meta {
                rec.instant(Clock::Wall, &self.ctx_track(id), "Busy→Free", t1, &[]);
            }
        }
        if replies.len() < batch.len() {
            // A handler that answered fewer cohorts than launched is a
            // bug it survives: the missing cohorts get padded 500s below.
            replies.resize_with(batch.len(), Vec::new);
        }

        for ((id, n, _, key), mut cohort_replies) in meta.into_iter().zip(replies) {
            if cohort_replies.len() < n {
                cohort_replies.resize_with(n, responses::internal_500);
            }
            let members = self.pool.get_mut(id).release().unwrap_or_default();
            for (m, resp) in members.into_iter().zip(cohort_replies) {
                self.stats.responses += 1;
                if self.config.telemetry {
                    let handler = &self.handler;
                    self.metrics.record_latency(
                        key,
                        || handler.key_name(key),
                        m.arrived.elapsed().as_secs_f64(),
                    );
                }
                self.route(m.conn, m.seq, resp, Some(m.arrived), rec);
            }
        }
        true
    }

    /// Deliver a response to its connection's ordered output queue.
    fn route<R: Recorder + ?Sized>(
        &mut self,
        conn: u64,
        seq: u64,
        bytes: Vec<u8>,
        arrived: Option<Instant>,
        rec: &R,
    ) {
        if let (Some(at), true) = (arrived, rec.enabled()) {
            rec.sample("net_request_latency_s", at.elapsed().as_secs_f64());
        }
        match self.conns.get_mut(&conn) {
            Some(c) => {
                c.complete(seq, bytes);
                self.stats.peak_queued_bytes =
                    self.stats.peak_queued_bytes.max(c.queued_bytes() as u64);
            }
            None => self.stats.responses_dropped += 1,
        }
    }

    fn write_sockets(&mut self) -> bool {
        let mut progress = false;
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            while !conn.out_drained() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        self.stats.bytes_out += n as u64;
                        conn.last_activity = Instant::now();
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.out_drained() && !conn.out.is_empty() {
                conn.out.clear();
                conn.out_pos = 0;
            } else if conn.out_pos >= 16 * 1024 {
                // Partial drain: reclaim the written prefix so a slowly
                // reading peer does not keep already-sent bytes resident.
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
        }
        progress
    }

    /// Drop dead connections, finished `Connection: close` conversations,
    /// idle/half-open peers past the read deadline, and stalled readers
    /// that accepted no queued output for a full deadline.
    fn reap(&mut self) {
        let deadline = self.config.read_deadline;
        let stats = &mut self.stats;
        let now = Instant::now();
        self.conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            let drained = c.out_drained() && c.outstanding() == 0;
            if (c.closing || c.eof) && drained {
                return false;
            }
            let stale = now.duration_since(c.last_activity) >= deadline;
            if drained && stale {
                // No response owed and nothing arriving: a stalled or
                // half-open client. Reap so it cannot hold a slot.
                stats.reaped_idle += 1;
                return false;
            }
            if !drained && stale && c.queued_bytes() > 0 {
                // Output queued but the peer accepted nothing for a full
                // deadline: a stalled reader. Reaping bounds how long the
                // backpressured backlog can sit in memory.
                stats.reaped_stalled += 1;
                return false;
            }
            true
        });
    }
}

/// The single-reactor non-blocking cohort front end: one listener feeding
/// one [`Reactor`] on the calling thread, mirroring the paper's
/// event-loop server. For the sharded multi-reactor server, see
/// [`crate::shard::ShardedServer`].
#[derive(Debug)]
pub struct NetServer<H> {
    listener: TcpListener,
    reactor: Reactor<H>,
}

impl<H: CohortHandler> NetServer<H> {
    /// Bind a listener and prepare the cohort pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    ///
    /// # Panics
    ///
    /// Panics on a zero cohort size, context count, or connection cap.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: NetConfig, handler: H) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            reactor: Reactor::new(config, handler, None),
        })
    }

    /// Publish into a caller-created single-shard telemetry plane instead
    /// of the internal default — lets the caller build device handlers
    /// against [`Telemetry::device`] before binding, and scrape the plane
    /// from outside while the server runs.
    ///
    /// # Panics
    ///
    /// Panics unless the plane has exactly one shard.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Arc<Telemetry>) -> Self {
        assert_eq!(telemetry.shards(), 1, "single-reactor server, one shard");
        self.reactor.attach_telemetry(telemetry, 0);
        self
    }

    /// The telemetry plane this server publishes into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.reactor.telemetry()
    }

    /// The bound address (use with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetStats {
        self.reactor.stats()
    }

    /// Borrow the workload handler.
    pub fn handler(&self) -> &H {
        self.reactor.handler()
    }

    /// Serve until `stop` is raised, then drain and return the run's
    /// counters along with the handler.
    pub fn run(self, stop: &AtomicBool) -> (NetStats, H) {
        self.run_traced(stop, &NoopRecorder)
    }

    /// [`NetServer::run`] with `rhythm-obs` instrumentation: wall-clock
    /// cohort execute spans on the `net:device` track, FSM transition
    /// instants on `net:ctx<N>` tracks, `cohort_fill` and
    /// `net_request_latency_s` histograms, and shed counters on the
    /// `net` track. The recorder is observational only.
    pub fn run_traced<R: Recorder + ?Sized>(mut self, stop: &AtomicBool, rec: &R) -> (NetStats, H) {
        let mut idle = self.reactor.config.idle_sleep;
        while !stop.load(Ordering::Relaxed) {
            if self.poll_traced(rec) {
                idle = self.reactor.config.idle_sleep;
            } else {
                self.reactor.note_idle();
                // Clamp the backoff to the earliest pending cohort fill
                // deadline: a grown idle sleep must not overshoot it and
                // add up to idle_sleep_max of queue latency.
                let sleep = match self.reactor.next_fill_deadline() {
                    Some(d) => idle.min(d),
                    None => idle,
                };
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
                idle = (idle * 2).min(self.reactor.config.idle_sleep_max);
            }
        }
        self.reactor.drain(rec);
        self.reactor.into_parts()
    }

    /// One non-blocking service iteration; returns whether anything
    /// progressed (callers may back off briefly when it did not).
    pub fn poll(&mut self) -> bool {
        self.poll_traced(&NoopRecorder)
    }

    /// [`NetServer::poll`] with a recorder attached.
    pub fn poll_traced<R: Recorder + ?Sized>(&mut self, rec: &R) -> bool {
        let progress = self.accept_new();
        self.reactor.poll_traced(rec) || progress
    }

    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    self.reactor.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        progress
    }
}
