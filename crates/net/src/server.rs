//! The poll-style cohort server: non-blocking accept/read over
//! `std::net`, cohort formation via `rhythm-core`'s context pool, and
//! overload shedding.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rhythm_core::{CohortPool, CohortState, ContextId};
use rhythm_http::{HttpRequest, ParseError};
use rhythm_obs::{ArgValue, Clock, NoopRecorder, Recorder};

use crate::conn::RequestAccumulator;
use crate::responses;

/// Executes one uniform-key cohort of parsed requests.
///
/// `rhythm-net` forms cohorts; what a cohort *does* is the workload's
/// business. `rhythm-banking` implements this for the native (scalar) and
/// SIMT device paths.
pub trait CohortHandler {
    /// Map a request to its cohort key (the paper groups by request
    /// type). `None` means the request has no kernel — it is answered
    /// immediately with [`CohortHandler::reject`] and never batched.
    fn classify(&self, req: &HttpRequest) -> Option<u32>;

    /// Execute one cohort of same-key requests, returning one raw HTTP
    /// response per request, in order. Must not panic on odd inputs: a
    /// short return is padded with `500`s by the server.
    fn execute(&mut self, key: u32, requests: &[HttpRequest]) -> Vec<Vec<u8>>;

    /// Response for a request [`CohortHandler::classify`] refused.
    fn reject(&self, _req: &HttpRequest) -> Vec<u8> {
        responses::not_found_404()
    }
}

/// Front-end configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Admitted-connection cap; connections beyond it are shed with
    /// `503` + `Retry-After` at accept time.
    pub max_connections: usize,
    /// Per-request size cap (headers + declared body); larger gets `413`.
    pub max_request_bytes: usize,
    /// Idle connections (no bytes, no responses in flight) older than
    /// this are reaped — a stalled or half-open client cannot hold a slot
    /// forever.
    pub read_deadline: Duration,
    /// Target cohort size (requests per kernel launch).
    pub cohort_size: usize,
    /// Formation timeout: a PartiallyFull cohort launches at this age
    /// even if not full (paper: bounded extra delay).
    pub fill_timeout: Duration,
    /// Preallocated cohort contexts; running out sheds with `503`.
    pub pool_contexts: u32,
    /// Sleep between polls when nothing progressed (bounds idle spin).
    pub idle_sleep: Duration,
    /// `Retry-After` seconds advertised on `503` sheds.
    pub retry_after_s: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 256,
            max_request_bytes: 16 * 1024,
            read_deadline: Duration::from_secs(10),
            cohort_size: 32,
            fill_timeout: Duration::from_millis(2),
            pool_contexts: 8,
            idle_sleep: Duration::from_micros(200),
            retry_after_s: 1,
        }
    }
}

/// Counters accumulated over one server run.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct NetStats {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections shed at accept time (over the connection cap).
    pub rejected_over_cap: u64,
    /// Peak simultaneous admitted connections.
    pub peak_connections: usize,
    /// Complete requests parsed off sockets.
    pub requests: u64,
    /// Responses produced by the cohort handler.
    pub responses: u64,
    /// Responses whose connection vanished before delivery.
    pub responses_dropped: u64,
    /// Cohorts launched.
    pub cohorts: u64,
    /// Cohorts launched full.
    pub full_launches: u64,
    /// Cohorts launched by the formation timeout.
    pub timeout_launches: u64,
    /// Sum of launch fills (see [`NetStats::mean_fill`]).
    pub fill_sum: f64,
    /// Sum of cohort sizes at launch (requests per launch).
    pub launched_requests: u64,
    /// Requests shed with `503` (pool exhausted or FSM refusal).
    pub shed_503: u64,
    /// Requests rejected with `413` (size cap).
    pub too_large_413: u64,
    /// Requests rejected with `400` (malformed).
    pub bad_request_400: u64,
    /// Requests the handler refused to classify (`404` by default).
    pub unclassified: u64,
    /// Fallible-FSM refusals survived without panicking.
    pub fsm_rejections: u64,
    /// Idle/half-open connections reaped by the read deadline.
    pub reaped_idle: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

impl NetStats {
    /// Mean cohort fill at launch (1.0 = always full).
    pub fn mean_fill(&self) -> f64 {
        if self.cohorts == 0 {
            0.0
        } else {
            self.fill_sum / self.cohorts as f64
        }
    }

    /// Mean requests per cohort launch.
    pub fn mean_requests_per_launch(&self) -> f64 {
        if self.cohorts == 0 {
            0.0
        } else {
            self.launched_requests as f64 / self.cohorts as f64
        }
    }
}

/// One admitted connection's state.
#[derive(Debug)]
struct Connection {
    stream: TcpStream,
    acc: RequestAccumulator,
    /// Bytes queued for writing; `out_pos` marks how far we've written.
    out: Vec<u8>,
    out_pos: usize,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Next sequence number whose response goes on the wire (responses
    /// must leave in request order even when cohorts retire out of
    /// order).
    next_to_send: u64,
    /// Completed responses waiting for earlier sequences.
    ready: BTreeMap<u64, Vec<u8>>,
    last_activity: Instant,
    /// Stop reading; close once drained (fatal parse error sent).
    closing: bool,
    /// Peer closed its write side.
    eof: bool,
    /// I/O error; drop without draining.
    dead: bool,
}

impl Connection {
    fn new(stream: TcpStream, max_request_bytes: usize) -> Self {
        Connection {
            stream,
            acc: RequestAccumulator::new(max_request_bytes),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_to_send: 0,
            ready: BTreeMap::new(),
            last_activity: Instant::now(),
            closing: false,
            eof: false,
            dead: false,
        }
    }

    /// Responses assigned but not yet appended to the write buffer.
    fn outstanding(&self) -> u64 {
        self.next_seq - self.next_to_send
    }

    fn out_drained(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    /// Record the response for `seq` and move every now-in-order response
    /// into the write buffer.
    fn complete(&mut self, seq: u64, bytes: Vec<u8>) {
        self.ready.insert(seq, bytes);
        while let Some(b) = self.ready.remove(&self.next_to_send) {
            self.out.extend_from_slice(&b);
            self.next_to_send += 1;
        }
    }

    /// Assign a sequence number and complete it immediately (canned
    /// responses that never reach a cohort).
    fn respond_now(&mut self, bytes: Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.complete(seq, bytes);
    }
}

/// A parsed request waiting in a cohort context, remembering where its
/// response must go.
#[derive(Clone, Debug)]
struct Pending {
    conn: u64,
    seq: u64,
    req: HttpRequest,
    arrived: Instant,
}

/// The non-blocking cohort front end.
///
/// Single-threaded and poll-driven, mirroring the paper's event-loop
/// server: each [`NetServer::poll`] accepts new connections, reads every
/// readable socket, parses complete requests, dispatches them into
/// cohort contexts, launches full or timed-out cohorts through the
/// [`CohortHandler`], and flushes responses. [`NetServer::run`] loops
/// `poll` until a stop flag is raised.
#[derive(Debug)]
pub struct NetServer<H> {
    listener: TcpListener,
    config: NetConfig,
    handler: H,
    pool: CohortPool<Pending>,
    conns: HashMap<u64, Connection>,
    next_conn_id: u64,
    stats: NetStats,
    epoch: Instant,
}

impl<H: CohortHandler> NetServer<H> {
    /// Bind a listener and prepare the cohort pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    ///
    /// # Panics
    ///
    /// Panics on a zero cohort size, context count, or connection cap.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: NetConfig, handler: H) -> std::io::Result<Self> {
        assert!(config.cohort_size > 0, "cohort size must be nonzero");
        assert!(config.pool_contexts > 0, "need at least one context");
        assert!(config.max_connections > 0, "need at least one connection");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let pool = CohortPool::new(config.pool_contexts, config.cohort_size);
        Ok(NetServer {
            listener,
            config,
            handler,
            pool,
            conns: HashMap::new(),
            next_conn_id: 0,
            stats: NetStats::default(),
            epoch: Instant::now(),
        })
    }

    /// The bound address (use with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Borrow the workload handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Serve until `stop` is raised, then drain and return the run's
    /// counters along with the handler.
    pub fn run(self, stop: &AtomicBool) -> (NetStats, H) {
        self.run_traced(stop, &NoopRecorder)
    }

    /// [`NetServer::run`] with `rhythm-obs` instrumentation: wall-clock
    /// cohort execute spans on the `net:device` track, FSM transition
    /// instants on `net:ctx<N>` tracks, `cohort_fill` and
    /// `net_request_latency_s` histograms, and shed counters on the
    /// `net` track. The recorder is observational only.
    pub fn run_traced<R: Recorder + ?Sized>(mut self, stop: &AtomicBool, rec: &R) -> (NetStats, H) {
        while !stop.load(Ordering::Relaxed) {
            if !self.poll_traced(rec) {
                std::thread::sleep(self.config.idle_sleep);
            }
        }
        self.drain(rec);
        (self.stats, self.handler)
    }

    /// One non-blocking service iteration; returns whether anything
    /// progressed (callers may sleep briefly when it did not).
    pub fn poll(&mut self) -> bool {
        self.poll_traced(&NoopRecorder)
    }

    /// [`NetServer::poll`] with a recorder attached.
    pub fn poll_traced<R: Recorder + ?Sized>(&mut self, rec: &R) -> bool {
        let mut progress = false;
        progress |= self.accept_new();
        let parsed = self.read_sockets(&mut progress);
        for p in parsed {
            self.dispatch(p, rec);
            progress = true;
        }
        progress |= self.check_timeouts(rec);
        progress |= self.write_sockets();
        self.reap();
        progress
    }

    /// After the stop flag: launch whatever is still partially formed and
    /// push out pending bytes (bounded, best effort).
    fn drain<R: Recorder + ?Sized>(&mut self, rec: &R) {
        for id in 0..self.pool.len() as ContextId {
            if self.pool.get(id).state() == CohortState::PartiallyFull {
                self.launch(id, true, rec);
            }
        }
        for _ in 0..64 {
            if !self.write_sockets() {
                break;
            }
        }
    }

    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if self.conns.len() >= self.config.max_connections {
                        // Over the cap: shed at the door with an explicit
                        // retry hint rather than queueing unboundedly.
                        self.stats.rejected_over_cap += 1;
                        let mut s = stream;
                        let _ = s.set_nonblocking(false);
                        let _ = s.write_all(&responses::shed_503(self.config.retry_after_s));
                        let _ = s.shutdown(Shutdown::Both);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.stats.accepted += 1;
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.conns
                        .insert(id, Connection::new(stream, self.config.max_request_bytes));
                    self.stats.peak_connections = self.stats.peak_connections.max(self.conns.len());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        progress
    }

    /// Read every readable socket and parse complete requests. Requests
    /// are returned (rather than dispatched inline) so the borrow of the
    /// connection map ends before cohort dispatch begins.
    fn read_sockets(&mut self, progress: &mut bool) -> Vec<Pending> {
        let mut parsed = Vec::new();
        let mut chunk = [0u8; 4096];
        for (&id, conn) in self.conns.iter_mut() {
            if conn.closing || conn.dead || conn.eof {
                continue;
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.acc.feed(&chunk[..n]);
                        self.stats.bytes_in += n as u64;
                        conn.last_activity = Instant::now();
                        *progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            loop {
                match conn.acc.next_request() {
                    Ok(Some(req)) => {
                        self.stats.requests += 1;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        parsed.push(Pending {
                            conn: id,
                            seq,
                            req,
                            arrived: Instant::now(),
                        });
                    }
                    Ok(None) => break,
                    Err(ParseError::TooLarge { .. }) => {
                        self.stats.too_large_413 += 1;
                        conn.respond_now(responses::too_large_413());
                        conn.closing = true;
                        break;
                    }
                    Err(e) => {
                        self.stats.bad_request_400 += 1;
                        conn.respond_now(responses::bad_request_400(&e.to_string()));
                        conn.closing = true;
                        break;
                    }
                }
            }
        }
        parsed
    }

    /// Dispatch one parsed request into a cohort context, shedding with
    /// `503` when no context can take it. Never panics: FSM refusals
    /// (which the guarded lookup makes unreachable) shed the request too.
    fn dispatch<R: Recorder + ?Sized>(&mut self, p: Pending, rec: &R) {
        let Some(key) = self.handler.classify(&p.req) else {
            self.stats.unclassified += 1;
            let resp = self.handler.reject(&p.req);
            self.route(p.conn, p.seq, resp, None, rec);
            return;
        };
        let now_s = self.epoch.elapsed().as_secs_f64();
        let ctx = match self.pool.open_for(key) {
            Some(c) => Some(c),
            None => self.pool.acquire(),
        };
        let Some(id) = ctx else {
            self.shed(p, rec);
            return;
        };
        let fresh = self.pool.get(id).state() == CohortState::Free;
        match self.pool.get_mut(id).add(p, key, now_s) {
            Ok(()) => {
                if rec.enabled() {
                    let full = self.pool.get(id).state() == CohortState::Full;
                    let name = match (fresh, full) {
                        (true, true) => "Free→Full",
                        (true, false) => "Free→PartiallyFull",
                        (false, true) => "PartiallyFull→Full",
                        (false, false) => "",
                    };
                    if !name.is_empty() {
                        let fill = self.pool.get(id).fill();
                        rec.instant(
                            Clock::Wall,
                            &format!("net:ctx{id}"),
                            name,
                            rec.wall_now_us(),
                            &[("fill", ArgValue::F64(fill))],
                        );
                    }
                }
                if self.pool.get(id).state() == CohortState::Full {
                    self.launch(id, false, rec);
                }
            }
            Err(rej) => {
                // One bad dispatch must never take down the loop: the
                // refused request is shed like a pool-exhaustion stall.
                self.stats.fsm_rejections += 1;
                self.shed(rej.request, rec);
            }
        }
    }

    /// Answer `503` + `Retry-After` for a request no context can hold.
    fn shed<R: Recorder + ?Sized>(&mut self, p: Pending, rec: &R) {
        self.stats.shed_503 += 1;
        if rec.enabled() {
            rec.counter(
                Clock::Wall,
                "net",
                "shed_503",
                rec.wall_now_us(),
                self.stats.shed_503 as f64,
            );
        }
        let resp = responses::shed_503(self.config.retry_after_s);
        self.route(p.conn, p.seq, resp, None, rec);
    }

    /// Launch the cohort in context `id` through the handler and route
    /// the responses back onto their connections.
    fn launch<R: Recorder + ?Sized>(&mut self, id: ContextId, by_timeout: bool, rec: &R) {
        let key = self.pool.get(id).key();
        let n = self.pool.get(id).members().len();
        let fill = self.pool.get(id).fill();
        if self.pool.get_mut(id).launch().is_err() {
            // Unreachable (launch sites guard the state), but a refusal
            // only costs this launch attempt, not the server.
            self.stats.fsm_rejections += 1;
            return;
        }
        self.stats.cohorts += 1;
        self.stats.launched_requests += n as u64;
        self.stats.fill_sum += fill;
        if by_timeout {
            self.stats.timeout_launches += 1;
        } else {
            self.stats.full_launches += 1;
        }
        if rec.enabled() {
            let name = if by_timeout {
                "PartiallyFull→Busy (timeout)"
            } else {
                "Full→Busy"
            };
            rec.instant(
                Clock::Wall,
                &format!("net:ctx{id}"),
                name,
                rec.wall_now_us(),
                &[("fill", ArgValue::F64(fill))],
            );
            rec.sample("cohort_fill", fill);
        }

        // The context stays Busy for the duration of the handler call —
        // the wall-clock analogue of the pipeline's execute phase.
        let reqs: Vec<HttpRequest> = self
            .pool
            .get(id)
            .members()
            .iter()
            .map(|m| m.req.clone())
            .collect();
        let t0 = rec.wall_now_us();
        let mut replies = self.handler.execute(key, &reqs);
        if rec.enabled() {
            let t1 = rec.wall_now_us();
            rec.span(
                Clock::Wall,
                "net:device",
                &format!("cohort key={key}"),
                t0,
                t1 - t0,
                &[
                    ("requests", ArgValue::U64(n as u64)),
                    ("fill", ArgValue::F64(fill)),
                ],
            );
            rec.instant(Clock::Wall, &format!("net:ctx{id}"), "Busy→Free", t1, &[]);
        }
        if replies.len() < n {
            replies.resize_with(n, responses::internal_500);
        }

        let members = self.pool.get_mut(id).release().unwrap_or_default();
        for (m, resp) in members.into_iter().zip(replies) {
            self.stats.responses += 1;
            self.route(m.conn, m.seq, resp, Some(m.arrived), rec);
        }
    }

    /// Deliver a response to its connection's ordered output queue.
    fn route<R: Recorder + ?Sized>(
        &mut self,
        conn: u64,
        seq: u64,
        bytes: Vec<u8>,
        arrived: Option<Instant>,
        rec: &R,
    ) {
        if let (Some(at), true) = (arrived, rec.enabled()) {
            rec.sample("net_request_latency_s", at.elapsed().as_secs_f64());
        }
        match self.conns.get_mut(&conn) {
            Some(c) => c.complete(seq, bytes),
            None => self.stats.responses_dropped += 1,
        }
    }

    /// Launch PartiallyFull cohorts whose formation timeout has expired.
    fn check_timeouts<R: Recorder + ?Sized>(&mut self, rec: &R) -> bool {
        let now_s = self.epoch.elapsed().as_secs_f64();
        let deadline = self.config.fill_timeout.as_secs_f64();
        let mut launched = false;
        for id in 0..self.pool.len() as ContextId {
            if self.pool.get(id).state() == CohortState::PartiallyFull
                && now_s - self.pool.get(id).opened_at() >= deadline
            {
                self.launch(id, true, rec);
                launched = true;
            }
        }
        launched
    }

    fn write_sockets(&mut self) -> bool {
        let mut progress = false;
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            while !conn.out_drained() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        self.stats.bytes_out += n as u64;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.out_drained() && !conn.out.is_empty() {
                conn.out.clear();
                conn.out_pos = 0;
            }
        }
        progress
    }

    /// Drop dead connections, finished `Connection: close` conversations,
    /// and idle/half-open peers past the read deadline.
    fn reap(&mut self) {
        let deadline = self.config.read_deadline;
        let stats = &mut self.stats;
        let now = Instant::now();
        self.conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            let drained = c.out_drained() && c.outstanding() == 0;
            if (c.closing || c.eof) && drained {
                return false;
            }
            if drained && now.duration_since(c.last_activity) >= deadline {
                // No response owed and nothing arriving: a stalled or
                // half-open client. Reap so it cannot hold a slot.
                stats.reaped_idle += 1;
                return false;
            }
            true
        });
    }
}
